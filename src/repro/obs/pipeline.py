"""The obs -> store telemetry pipeline: self-recording operational health.

:class:`MetricsRecorder` periodically snapshots a live
:class:`~repro.obs.metrics.MetricsRegistry` and appends the deltas as
regular :mod:`repro.store` series under the reserved ``_obs`` building
namespace -- so the system's *own* health (epochs per second, checkpoint
latency, degradation counters, request latencies, RSS) becomes
queryable, compactable, rollup-able telemetry exactly like the strain
data it monitors.

Mapping (see ``docs/OBSERVABILITY.md`` for the full schema):

* building: ``_obs`` (reserved; leading underscore means self-telemetry)
* wall: the recorder's ``source`` (``"campaign"``, ``"serve"``, ...)
* node_id: 0 (structure-level)
* metric: the obs series name, sanitised into a store-safe component;
  histograms fan out into ``<name>.count`` / ``.sum`` / ``.mean`` /
  ``.p50`` / ``.p95`` sub-series.

Per tick the recorder writes **counter deltas** (not cumulative totals,
so rollup ``sum`` aggregates directly give per-window activity), gauge
values verbatim, and histogram deltas with bucket-interpolated
quantiles.  Every series present in the registry is written at least
once (a zero first sample), so "which series exist" never depends on
whether anything happened yet.

Determinism contract: recording never touches experiment RNG streams
and never writes anywhere except the attached store -- a campaign run
with a recorder attached produces a ``result.json`` byte-identical to
the same run without one (proved in ``tests/test_obs_pipeline.py``).

Overhead contract: ticks buffer in memory and flush every
``flush_every`` ticks through the store's non-durable write path (no
per-block fsyncs -- self-telemetry is loss-tolerant, and torn tails
heal on the next append).  At the campaign's heartbeat cadence this
keeps the recorder's wall-time overhead within the budget pinned by
``BENCH_obs.json``.
"""

from __future__ import annotations

import hashlib
import re
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from . import obs_registry
from .metrics import MetricsRegistry
from .profiling import peak_rss_kb
from ..errors import ObsError
from ..store.keys import OBS_BUILDING, STRUCTURE_NODE_ID, SeriesKey, validate_component
from ..store.store import TelemetryStore

#: Quantiles estimated per histogram tick (bucket-interpolated).
DEFAULT_QUANTILES = (0.5, 0.95)

#: Characters legal in a store metric component (after the first).
_STORE_OK = re.compile(r"[^A-Za-z0-9._-]")

#: Maximum length of a store key component.
_COMPONENT_MAX = 64


def sanitize_store_metric(series: str) -> str:
    """Map one obs series name onto a legal store metric component.

    Label syntax (``name{k=v,...}``) flattens into dotted segments;
    every remaining illegal character becomes ``-``.  Names longer than
    the 64-char component limit keep a readable prefix plus a stable
    8-hex digest, so distinct series can never silently collide.
    """
    flat = (
        series.replace("{", ".").replace("}", "").replace(",", ".")
        .replace("=", ".").replace('"', "")
    )
    flat = _STORE_OK.sub("-", flat).strip(".-")
    if not flat or not flat[0].isalnum():
        flat = "m" + flat
    if len(flat) > _COMPONENT_MAX:
        digest = hashlib.sha256(series.encode("utf-8")).hexdigest()[:8]
        flat = flat[: _COMPONENT_MAX - 9].rstrip(".-") + "." + digest
    return flat


def _bucket_quantile(
    buckets: List[List[Any]],
    previous: Optional[List[List[Any]]],
    q: float,
    fallback: Optional[float],
) -> Optional[float]:
    """Estimate one quantile from the *delta* between two cumulative
    bucket snapshots, linearly interpolated inside the winning bucket.

    Observations that landed in the ``+inf`` overflow slot fall back to
    the histogram's lifetime ``max`` (the best bound available).
    """
    prev_by_bound: Dict[Any, float] = {
        bound: cum for bound, cum in (previous or [])
    }
    deltas: List[Tuple[Any, float]] = []
    for bound, cum in buckets:
        deltas.append((bound, float(cum) - float(prev_by_bound.get(bound, 0.0))))
    if not deltas:
        return fallback
    total = deltas[-1][1]  # the +inf slot is cumulative over everything
    if total <= 0.0:
        return fallback
    target = q * total
    running = 0.0
    lower = 0.0
    for bound, cum_delta in deltas:
        if bound == "+inf":
            return fallback
        if cum_delta >= target:
            span_count = cum_delta - running
            fraction = (
                (target - running) / span_count if span_count > 0.0 else 1.0
            )
            return lower + fraction * (float(bound) - lower)
        running = cum_delta
        lower = float(bound)
    return fallback


class MetricsRecorder:
    """Stream one metrics registry into a telemetry store, tick by tick.

    Args:
        store: The destination :class:`~repro.store.TelemetryStore`.
        source: The ``wall`` component the samples land under
            (``_obs/<source>/n00000/<metric>``); names the subsystem
            being recorded (``"campaign"``, ``"serve"``, ...).
        registry: The registry to snapshot.  None snapshots whatever
            live registry :func:`repro.obs.obs_registry` returns at each
            tick (so a recorder built before ``activate_obs`` still
            works), and records nothing while observability is off.
        clock: Hours-valued time source for ticks whose caller passes
            no explicit timestamp.  Defaults to wall clock hours
            (``time.time() / 3600``); the campaign driver passes its
            deterministic epoch clock instead.
        interval_s: Default cadence for :meth:`start`.
        quantiles: Histogram quantiles estimated per tick.
        flush_every: Ticks buffered in memory before the batch is
            written to the store (one block per touched series, fsyncs
            skipped -- self-telemetry is loss-tolerant by contract).
            The default of 1 flushes every tick; high-frequency callers
            (the campaign's per-epoch heartbeat) raise it so the
            steady-state tick is a pure in-memory delta computation.
            :meth:`flush` and :meth:`stop` drain whatever is pending.
    """

    def __init__(
        self,
        store: TelemetryStore,
        source: str = "campaign",
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        interval_s: float = 15.0,
        quantiles: Tuple[float, ...] = DEFAULT_QUANTILES,
        flush_every: int = 1,
    ):
        validate_component(source, "recorder source")
        if interval_s <= 0.0:
            raise ObsError(f"interval_s must be positive, got {interval_s}")
        if flush_every < 1:
            raise ObsError(f"flush_every must be >= 1, got {flush_every}")
        self.store = store
        self.source = source
        self.interval_s = float(interval_s)
        self.quantiles = tuple(quantiles)
        self.flush_every = int(flush_every)
        self._explicit_registry = registry
        self._clock = clock if clock is not None else (
            lambda: time.time() / 3600.0
        )
        self._last_counters: Dict[str, float] = {}
        self._last_histograms: Dict[str, Dict[str, Any]] = {}
        self._seen: set = set()
        self._key_cache: Dict[str, SeriesKey] = {}
        # metric -> ([t, ...], [value, ...]); ticks arrive in time
        # order, so each per-series buffer is already sorted.
        self._pending: Dict[str, Tuple[List[float], List[float]]] = {}
        self._pending_ticks = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.ticks = 0
        self.samples_written = 0

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------

    def _registry(self) -> Optional[MetricsRegistry]:
        if self._explicit_registry is not None:
            return self._explicit_registry
        return obs_registry()

    def _key(self, metric: str) -> SeriesKey:
        key = self._key_cache.get(metric)
        if key is None:
            key = self._key_cache[metric] = SeriesKey(
                building=OBS_BUILDING,
                wall=self.source,
                node_id=STRUCTURE_NODE_ID,
                metric=sanitize_store_metric(metric),
            )
        return key

    def _tick_samples(
        self, snapshot: Mapping[str, Any]
    ) -> List[Tuple[str, float]]:
        """The (metric, value) samples one snapshot produces."""
        samples: List[Tuple[str, float]] = []
        for series, value in snapshot.get("counters", {}).items():
            previous = self._last_counters.get(series)
            delta = value if previous is None or value < previous else value - previous
            self._last_counters[series] = value
            if delta != 0.0 or series not in self._seen:
                samples.append((series, float(delta)))
        for series, value in snapshot.get("gauges", {}).items():
            samples.append((series, float(value)))
        for series, summary in snapshot.get("histograms", {}).items():
            previous = self._last_histograms.get(series)
            prev_count = float(previous.get("count", 0)) if previous else 0.0
            prev_sum = float(previous.get("sum", 0.0)) if previous else 0.0
            count_delta = float(summary.get("count", 0)) - prev_count
            sum_delta = float(summary.get("sum", 0.0)) - prev_sum
            if count_delta < 0.0:  # registry was replaced mid-flight
                count_delta = float(summary.get("count", 0))
                sum_delta = float(summary.get("sum", 0.0))
                previous = None
            if count_delta > 0.0 or series not in self._seen:
                samples.append((f"{series}.count", count_delta))
                samples.append((f"{series}.sum", sum_delta))
            if count_delta > 0.0:
                samples.append((f"{series}.mean", sum_delta / count_delta))
                for q in self.quantiles:
                    estimate = _bucket_quantile(
                        summary.get("buckets", []),
                        (previous or {}).get("buckets"),
                        q,
                        summary.get("max"),
                    )
                    if estimate is not None:
                        samples.append(
                            (f"{series}.p{int(round(q * 100))}", float(estimate))
                        )
            self._last_histograms[series] = {
                "count": summary.get("count", 0),
                "sum": summary.get("sum", 0.0),
                "buckets": [list(b) for b in summary.get("buckets", [])],
            }
        return samples

    def record(self, t: Optional[float] = None) -> int:
        """Snapshot the registry and append one tick's samples at hour
        ``t`` (defaults to the recorder's clock).  Returns samples
        written; zero when no live registry exists.
        """
        registry = self._registry()
        if registry is None:
            return 0
        started = time.perf_counter()
        with self._lock:
            if t is None:
                t = float(self._clock())
            rss = peak_rss_kb()
            if rss is not None:
                registry.gauge("process.max_rss_kb").set(float(rss))
            samples = self._tick_samples(registry.snapshot())
            for metric, value in samples:
                buffer = self._pending.get(metric)
                if buffer is None:
                    buffer = self._pending[metric] = ([], [])
                buffer[0].append(t)
                buffer[1].append(value)
            self._seen.update(metric for metric, _ in samples)
            self.ticks += 1
            self._pending_ticks += 1
            self.samples_written += len(samples)
            tick_elapsed = time.perf_counter() - started
            if self._pending_ticks >= self.flush_every:
                self._flush_locked(registry)
        # Self-metrics land in the registry *after* the tick, so the
        # pipeline's own cost shows up one tick later -- never recursing
        # into the tick that is being measured.  ``record_s`` is the
        # in-memory tick alone; flush cost is timed separately as
        # ``flush_s`` -- their sums together are the pipeline's total
        # accounted wall time (what BENCH_obs.json budgets).
        registry.counter("obs.pipeline.records").inc()
        registry.counter("obs.pipeline.samples").inc(len(samples))
        registry.histogram("obs.pipeline.record_s").observe(tick_elapsed)
        return len(samples)

    def _flush_locked(self, registry: Optional[MetricsRegistry]) -> None:
        """Drain the tick buffer: one non-durable block per series."""
        if not self._pending:
            self._pending_ticks = 0
            return
        started = time.perf_counter()
        with self.store.writer(durable=False) as writer:
            for metric, (times, values) in self._pending.items():
                writer.add(self._key(metric), times, values)
        self._pending.clear()
        self._pending_ticks = 0
        if registry is not None:
            registry.counter("obs.pipeline.flushes").inc()
            registry.histogram("obs.pipeline.flush_s").observe(
                time.perf_counter() - started
            )

    def flush(self) -> None:
        """Write any buffered ticks to the store now."""
        with self._lock:
            self._flush_locked(self._registry())

    # ------------------------------------------------------------------
    # Periodic mode (the serving tier's background cadence)
    # ------------------------------------------------------------------

    def start(self, interval_s: Optional[float] = None) -> "MetricsRecorder":
        """Record on a daemon thread every ``interval_s`` seconds."""
        if self._thread is not None:
            raise ObsError("recorder already started")
        if interval_s is not None:
            if interval_s <= 0.0:
                raise ObsError(f"interval_s must be positive, got {interval_s}")
            self.interval_s = float(interval_s)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"obs-recorder-{self.source}", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.record()

    def stop(self, final_record: bool = True) -> None:
        """Stop the periodic thread; optionally record one final tick.
        Buffered ticks are flushed either way."""
        if self._thread is None:
            self.flush()
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None
        if final_record:
            self.record()
        self.flush()
