"""Observability: metrics, tracing, profiling for the whole stack.

Every layer of the reproduction self-reports through this facade --
the runner, the result cache, the link simulators, the TDMA inventory
and the harvesting chain all call the module-level helpers::

    from ..obs import obs_counter, obs_enabled, obs_span

    obs_counter("tdma.slots").inc(len(slots))
    with obs_span("experiment.fig15", seed=seed):
        ...

Observability is **off by default**: the helpers return shared null
objects whose mutators are no-ops, so un-instrumented runs pay one
function call per site.  ``experiments run --obs`` (or
:func:`activate_obs` in code) installs a live :class:`MetricsRegistry`,
:class:`Tracer` and :class:`EventLog` for the duration of a run scope:

    scope = activate_obs()
    try:
        ...instrumented work...
        snapshot = scope.registry.snapshot()
        trace = scope.tracer.to_chrome_trace()
    finally:
        restore_obs(scope)

Scopes save and restore the previous state, so nested activations (a
test inside an observed runner) behave like a stack.  See
``docs/OBSERVABILITY.md`` for the metric catalog and file formats.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, Optional, Union

from .events import DEFAULT_EVENT_CAPACITY, EventLog, NULL_EVENT_LOG, NullEventLog
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    METRICS_SCHEMA,
    MetricsRegistry,
    NULL_METRIC,
    escape_label_value,
    parse_series,
    prometheus_name,
    render_prometheus_text,
    render_snapshot_text,
    series_name,
)
from .profiling import (
    PROFILE_SCHEMA,
    ProfileProbe,
    peak_rss_kb,
    validate_profile,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_SCHEMA,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_EVENT_CAPACITY",
    "EventLog",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NullTracer",
    "ObsScope",
    "PROFILE_SCHEMA",
    "ProfileProbe",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "activate_obs",
    "escape_label_value",
    "obs_counter",
    "obs_enabled",
    "obs_event",
    "obs_events",
    "obs_gauge",
    "obs_histogram",
    "obs_registry",
    "obs_span",
    "obs_tracer",
    "observed",
    "parse_series",
    "peak_rss_kb",
    "prometheus_name",
    "render_prometheus_text",
    "render_snapshot_text",
    "restore_obs",
    "series_name",
    "validate_chrome_trace",
    "validate_profile",
]


class ObsScope:
    """One live observability activation (registry + tracer + events)."""

    __slots__ = ("registry", "tracer", "events", "_previous")

    def __init__(self, registry: MetricsRegistry, tracer: Tracer,
                 events: EventLog, previous: "_State"):
        self.registry = registry
        self.tracer = tracer
        self.events = events
        self._previous = previous

    def export(self) -> Dict[str, Any]:
        """Everything this scope collected, JSON-ready.

        The metrics snapshot with the event log folded in -- the
        payload the runner writes as ``metrics.json``.
        """
        payload = self.registry.snapshot()
        payload["events"] = self.events.snapshot()
        return payload


class _State:
    __slots__ = ("enabled", "registry", "tracer", "events")

    def __init__(self, enabled: bool,
                 registry: Union[MetricsRegistry, None],
                 tracer: Union[Tracer, NullTracer],
                 events: EventLog):
        self.enabled = enabled
        self.registry = registry
        self.tracer = tracer
        self.events = events


_state = _State(False, None, NULL_TRACER, NULL_EVENT_LOG)


def obs_enabled() -> bool:
    """Whether a live observability scope is installed."""
    return _state.enabled


def activate_obs(process_label: Optional[str] = None) -> ObsScope:
    """Install a fresh registry/tracer/event-log; returns the scope.

    Pair with :func:`restore_obs` (or use :func:`observed`); the scope
    remembers the state it replaced, so activations nest.
    """
    global _state
    previous = _state
    registry = MetricsRegistry()
    tracer = Tracer(process_label=process_label)
    events = EventLog()
    _state = _State(True, registry, tracer, events)
    return ObsScope(registry, tracer, events, previous)


def restore_obs(scope: ObsScope) -> None:
    """Tear down ``scope`` and restore whatever preceded it."""
    global _state
    _state = scope._previous


@contextmanager
def observed(process_label: Optional[str] = None) -> Iterator[ObsScope]:
    """``with observed() as scope:`` -- scoped activation."""
    scope = activate_obs(process_label)
    try:
        yield scope
    finally:
        restore_obs(scope)


def obs_registry() -> Optional[MetricsRegistry]:
    """The live registry, or None when observability is off."""
    return _state.registry


def obs_tracer() -> Union[Tracer, NullTracer]:
    """The live tracer (the shared null tracer when off)."""
    return _state.tracer


def obs_events() -> EventLog:
    """The live event log (a store-nothing one when off)."""
    return _state.events


def obs_counter(name: str, help: str = "") -> Any:
    """The named counter, or the shared no-op metric when off."""
    if not _state.enabled:
        return NULL_METRIC
    return _state.registry.counter(name, help)


def obs_gauge(name: str, help: str = "") -> Any:
    """The named gauge, or the shared no-op metric when off."""
    if not _state.enabled:
        return NULL_METRIC
    return _state.registry.gauge(name, help)


def obs_histogram(name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Any:
    """The named histogram, or the shared no-op metric when off."""
    if not _state.enabled:
        return NULL_METRIC
    return _state.registry.histogram(name, help, buckets=buckets)


def obs_span(name: str, **args: Any) -> Any:
    """A span context manager on the live tracer (no-op when off)."""
    return _state.tracer.span(name, **args)


def obs_event(level: str, name: str, **fields: Any) -> None:
    """Record a structured event (always mirrored to python logging)."""
    _state.events.emit(level, name, **fields)
