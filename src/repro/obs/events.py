"""Structured events: bounded, thread-safe log of notable occurrences.

Counters say *how often*; events say *what exactly*.  The cache uses
this to make corrupt-entry discards visible (key, path, reason) instead
of silently recomputing, and anything else that wants a breadcrumb with
fields attaches one here.  Events are exported alongside the metrics
snapshot in ``metrics.json`` and surfaced by ``experiments stats``.

Every event is also mirrored to the standard :mod:`logging` channel
``repro.obs`` (warnings at ``WARNING``), so operators who only wire up
python logging still see them.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Dict, List, Optional

logger = logging.getLogger("repro.obs")

#: Events kept per log; older entries are dropped (the *count* of
#: dropped events is retained so truncation is visible).
DEFAULT_EVENT_CAPACITY = 1000

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class EventLog:
    """Append-only bounded event buffer with a snapshot view."""

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._dropped = 0

    def emit(self, level: str, name: str, **fields: Any) -> Dict[str, Any]:
        """Record one event and mirror it to python logging."""
        event = {
            "ts_unix": time.time(),
            "level": level,
            "name": name,
            "fields": fields,
        }
        with self._lock:
            if len(self._events) >= self.capacity:
                self._events.pop(0)
                self._dropped += 1
            self._events.append(event)
        logger.log(
            _LEVELS.get(level, logging.INFO),
            "%s %s", name,
            " ".join(f"{k}={v}" for k, v in fields.items()),
        )
        return event

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "events": [dict(e) for e in self._events],
                "dropped": self._dropped,
            }

    def absorb(self, snapshot: Any) -> None:
        """Fold an exported snapshot (e.g. a pool worker's) into this log."""
        if not isinstance(snapshot, dict):
            return
        events = snapshot.get("events", [])
        with self._lock:
            self._dropped += int(snapshot.get("dropped", 0))
            for event in events:
                if self.capacity <= 0:
                    self._dropped += 1
                    continue
                if len(self._events) >= self.capacity:
                    self._events.pop(0)
                    self._dropped += 1
                self._events.append(dict(event))

    def count(self, level: Optional[str] = None) -> int:
        with self._lock:
            if level is None:
                return len(self._events)
            return sum(1 for e in self._events if e["level"] == level)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0


class NullEventLog(EventLog):
    """Disabled-mode event log: still mirrors to logging, stores nothing.

    Keeping the logging mirror means operational warnings (e.g. corrupt
    cache entries) reach standard handlers even with obs off.
    """

    def __init__(self) -> None:
        super().__init__(capacity=0)

    def emit(self, level: str, name: str, **fields: Any) -> Dict[str, Any]:
        logger.log(
            _LEVELS.get(level, logging.INFO),
            "%s %s", name,
            " ".join(f"{k}={v}" for k, v in fields.items()),
        )
        return {"level": level, "name": name, "fields": fields}


#: Shared store-nothing event log used when observability is disabled.
NULL_EVENT_LOG = NullEventLog()
