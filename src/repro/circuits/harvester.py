"""Energy-harvesting chain: voltage multiplier, storage, cold start.

The EcoCapsule harvests from the continuous body wave with a four-stage
voltage multiplier (Dickson charge pump) followed by an LDO regulator
(Sec. 4.2).  The behaviours the evaluation reports:

* minimum activation: the MCU wakes only when the input reaches ~0.5 V
  peak at the PZT terminals (Fig. 14);
* cold-start time: ~55 ms at 0.5 V, dropping to ~4.4 ms at >= 2 V
  (Fig. 14) -- the storage capacitor charges faster when the multiplier
  output rides far above the regulator target;
* steady supply: 1.8 V regulated output once the storage holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PowerError
from ..obs import obs_counter, obs_enabled, obs_histogram


@dataclass(frozen=True)
class VoltageMultiplier:
    """N-stage Dickson multiplier driven by the PZT's AC output.

    The open-circuit DC output is ``2 N (V_peak - V_diode)`` clamped at
    zero; the source impedance grows with stage count, which the cold
    start model folds into the charging time constant.
    """

    stages: int = 4
    diode_drop: float = 0.12  # Schottky forward drop at micro-amp currents
    stage_capacitance: float = 1e-9

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise PowerError(f"multiplier needs >= 1 stage, got {self.stages}")
        if self.diode_drop < 0.0:
            raise PowerError("diode drop cannot be negative")
        if self.stage_capacitance <= 0.0:
            raise PowerError("stage capacitance must be positive")

    def open_circuit_voltage(self, input_peak: float) -> float:
        """DC output (V) for a sinusoidal input of ``input_peak`` volts."""
        if input_peak < 0.0:
            raise PowerError("input peak cannot be negative")
        return max(0.0, 2.0 * self.stages * (input_peak - self.diode_drop))

    def source_resistance(self, frequency: float) -> float:
        """Equivalent source resistance (ohm): N / (f C) for a Dickson pump."""
        if frequency <= 0.0:
            raise PowerError("frequency must be positive")
        return self.stages / (frequency * self.stage_capacitance)


@dataclass(frozen=True)
class LowDropoutRegulator:
    """LDO regulator (LP5900-class): 1.8 V output, small dropout."""

    output_voltage: float = 1.8
    dropout: float = 0.08
    quiescent_current: float = 25e-6

    def __post_init__(self) -> None:
        if self.output_voltage <= 0.0:
            raise PowerError("output voltage must be positive")
        if self.dropout < 0.0:
            raise PowerError("dropout cannot be negative")

    @property
    def minimum_input(self) -> float:
        """Lowest input voltage that still regulates (V)."""
        return self.output_voltage + self.dropout

    def regulate(self, input_voltage: float) -> float:
        """Regulated output for ``input_voltage``; 0 below the dropout floor."""
        if input_voltage < 0.0:
            raise PowerError("input voltage cannot be negative")
        if input_voltage < self.minimum_input:
            return 0.0
        return self.output_voltage


@dataclass(frozen=True)
class EnergyHarvester:
    """The full harvesting chain with the paper's cold-start behaviour.

    Attributes:
        multiplier: The charge pump.
        regulator: The output LDO.
        storage_capacitance: Reservoir capacitor after the pump (F).
        activation_voltage: Minimum PZT peak voltage that can ever wake
            the MCU (paper: 0.5 V).
        carrier_frequency: The CBW frequency the pump rides on (Hz).
    """

    multiplier: VoltageMultiplier = VoltageMultiplier()
    regulator: LowDropoutRegulator = LowDropoutRegulator()
    storage_capacitance: float = 1.892e-6
    activation_voltage: float = 0.5
    carrier_frequency: float = 230e3

    def __post_init__(self) -> None:
        if self.storage_capacitance <= 0.0:
            raise PowerError("storage capacitance must be positive")
        if self.activation_voltage <= 0.0:
            raise PowerError("activation voltage must be positive")

    def can_power_up(self, input_peak: float) -> bool:
        """True when the CBW at the node's PZT can eventually wake the MCU.

        Two conditions: the input must clear the paper's 0.5 V activation
        floor, and the pump output must clear the regulator's dropout.
        """
        if input_peak < self.activation_voltage:
            return False
        return (
            self.multiplier.open_circuit_voltage(input_peak)
            >= self.regulator.minimum_input
        )

    def cold_start_time(self, input_peak: float) -> float:
        """Time (s) from first wave arrival to a running MCU (Fig. 14).

        RC charging of the storage capacitor toward the pump's
        open-circuit voltage; the MCU runs once the reservoir passes the
        regulator's minimum input:

            t = R C ln(V_oc / (V_oc - V_min))

        Calibrated so 0.5 V -> ~55 ms and >= 2 V -> ~4.4 ms, the two
        anchors of Fig. 14.

        Raises:
            PowerError: when the input cannot power the node at all.
        """
        if not self.can_power_up(input_peak):
            obs_counter("harvester.activation_failures").inc()
            raise PowerError(
                f"input peak {input_peak:.3f} V is below the activation "
                f"threshold {self.activation_voltage} V"
            )
        v_oc = self.multiplier.open_circuit_voltage(input_peak)
        v_min = self.regulator.minimum_input
        r = self.multiplier.source_resistance(self.carrier_frequency)
        # The pump delivers charge only near the waveform crests; the
        # effective charging resistance is higher at low drive where the
        # diodes barely conduct.  A conduction factor inversely
        # proportional to the overdrive reproduces the steep low-voltage
        # knee of Fig. 14.
        overdrive = input_peak - self.multiplier.diode_drop
        conduction = min(1.0, overdrive / 0.66)
        effective_r = r / max(conduction, 1e-3)
        tau = effective_r * self.storage_capacitance
        cold_start = tau * math.log(v_oc / (v_oc - v_min))
        if obs_enabled():
            obs_counter("harvester.charge_cycles").inc()
            obs_histogram("harvester.cold_start_s").observe(cold_start)
        return cold_start

    def harvested_power(self, input_peak: float, load_voltage: float = None) -> float:
        """Steady-state power (W) available to the load.

        Maximum-power-transfer estimate: the pump behaves as V_oc behind
        its source resistance; the LDO draws at ``load_voltage``.
        """
        if load_voltage is None:
            load_voltage = self.regulator.minimum_input
        v_oc = self.multiplier.open_circuit_voltage(input_peak)
        if v_oc <= load_voltage:
            return 0.0
        r = self.multiplier.source_resistance(self.carrier_frequency)
        current = (v_oc - load_voltage) / r
        return load_voltage * current
