"""MCU power model (MSP430G2553-class) and node power accounting.

The paper measures (Fig. 13):

* 80.1 uW standby (MCU in LPM3 waiting to decode the downlink);
* ~360 uW total while backscattering, roughly flat from 1 to 8 kbps
  (the MCU is active regardless; toggling the impedance switch is
  nearly free);
* datasheet figures: 414 uW active, 0.9 uW sleep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PowerError
from ..units import microwatt


@dataclass(frozen=True)
class McuPowerModel:
    """Power draw of the node MCU plus peripherals in each state."""

    sleep_power: float = microwatt(0.9)
    standby_power: float = microwatt(80.1)
    active_power: float = microwatt(414.0)
    switch_energy_per_toggle: float = 1.2e-10  # J; impedance switch gate charge
    peripheral_active_power: float = microwatt(-55.0)  # duty-cycled savings

    def __post_init__(self) -> None:
        if self.sleep_power < 0.0 or self.standby_power < 0.0:
            raise PowerError("state powers cannot be negative")
        if self.active_power <= 0.0:
            raise PowerError("active power must be positive")

    def power(self, state: str, bitrate: float = 0.0) -> float:
        """Average power (W) in ``state`` at an uplink ``bitrate`` (bit/s).

        States: 'sleep', 'standby', 'active'.  In the active state the
        node backscatters at ``bitrate``; the impedance switch toggles at
        most twice per bit (FM0), adding a tiny rate-dependent term --
        which is why Fig. 13 is almost flat.
        """
        if bitrate < 0.0:
            raise PowerError("bitrate cannot be negative")
        state = state.lower()
        if state == "sleep":
            return self.sleep_power
        if state == "standby":
            return self.standby_power
        if state == "active":
            toggles_per_second = 2.0 * bitrate
            switch_power = toggles_per_second * self.switch_energy_per_toggle
            return (
                self.active_power
                + self.peripheral_active_power
                + switch_power
            )
        raise PowerError(f"unknown MCU state {state!r}")

    def energy(self, state: str, duration: float, bitrate: float = 0.0) -> float:
        """Energy (J) consumed over ``duration`` seconds in ``state``."""
        if duration < 0.0:
            raise PowerError("duration cannot be negative")
        return self.power(state, bitrate) * duration
