"""Node-side downlink demodulator: envelope detector + level shifter.

The EcoCapsule reuses its voltage multiplier as an envelope detector and
binarizes the result with a level shifter (Sec. 4.2).  The MCU then
measures edge-to-edge intervals with a timer interrupt to decode the PIE
command stream.  This module implements that chain on sampled waveforms:

    rectify -> RC low-pass (envelope) -> hysteresis comparator (bits)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import DecodingError


@dataclass(frozen=True)
class EnvelopeDetector:
    """Diode rectifier + RC low-pass envelope extractor.

    ``cutoff`` must sit well below the carrier but above the PIE symbol
    rate; the paper's carrier (230 kHz) and symbol rate (kHz-scale)
    leave a comfortable decade on each side.
    """

    cutoff: float = 40e3
    diode_drop: float = 0.0

    def __post_init__(self) -> None:
        if self.cutoff <= 0.0:
            raise DecodingError("cutoff must be positive")
        if self.diode_drop < 0.0:
            raise DecodingError("diode drop cannot be negative")

    def detect(self, waveform: np.ndarray, sample_rate: float) -> np.ndarray:
        """Envelope of ``waveform`` (single-pole RC follower)."""
        if sample_rate <= 2.0 * self.cutoff:
            raise DecodingError(
                f"sample rate {sample_rate} too low for cutoff {self.cutoff}"
            )
        rectified = np.maximum(np.abs(np.asarray(waveform, dtype=float)) - self.diode_drop, 0.0)
        alpha = 1.0 - math.exp(-2.0 * math.pi * self.cutoff / sample_rate)
        envelope = np.empty_like(rectified)
        state = 0.0
        for i, sample in enumerate(rectified):
            state += alpha * (sample - state)
            envelope[i] = state
        return envelope


@dataclass(frozen=True)
class LevelShifter:
    """Hysteresis comparator producing a clean binary stream.

    Thresholds are relative to the envelope's running peak so the node
    adapts to channel gain; hysteresis rejects the high-frequency noise
    the paper's TXB0302 filters out.
    """

    high_fraction: float = 0.55
    low_fraction: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 < self.low_fraction < self.high_fraction < 1.0:
            raise DecodingError(
                "thresholds must satisfy 0 < low < high < 1, got "
                f"low={self.low_fraction}, high={self.high_fraction}"
            )

    def binarize(self, envelope: np.ndarray) -> np.ndarray:
        """Binary (0/1) stream from an envelope."""
        envelope = np.asarray(envelope, dtype=float)
        peak = float(np.max(envelope)) if envelope.size else 0.0
        if peak <= 0.0:
            raise DecodingError("envelope is silent; nothing to binarize")
        high = self.high_fraction * peak
        low = self.low_fraction * peak
        bits = np.empty(envelope.size, dtype=np.int8)
        state = 0
        for i, value in enumerate(envelope):
            if state == 0 and value >= high:
                state = 1
            elif state == 1 and value <= low:
                state = 0
            bits[i] = state
        return bits


def edge_intervals(binary: np.ndarray, sample_rate: float) -> List[float]:
    """Durations (s) between consecutive edges of a binary stream.

    This mirrors the MCU's timer-interrupt measurement: the PIE decoder
    consumes these intervals directly.
    """
    binary = np.asarray(binary)
    if binary.size < 2:
        raise DecodingError("binary stream too short for edge timing")
    edges = np.flatnonzero(np.diff(binary) != 0) + 1
    if edges.size == 0:
        raise DecodingError("no edges found in the binary stream")
    boundaries = np.concatenate(([0], edges, [binary.size]))
    return list(np.diff(boundaries) / sample_rate)
