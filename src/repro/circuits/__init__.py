"""Circuit substrate: harvester, demodulator, MCU power, sensors."""

from .demodulator import EnvelopeDetector, LevelShifter, edge_intervals
from .harvester import EnergyHarvester, LowDropoutRegulator, VoltageMultiplier
from .mcu import McuPowerModel
from .sensors import (
    SensorBase,
    SensorError,
    SensorSuite,
    accelerometer,
    humidity_sensor,
    strain_sensor,
    temperature_sensor,
)

__all__ = [
    "EnvelopeDetector",
    "LevelShifter",
    "edge_intervals",
    "EnergyHarvester",
    "LowDropoutRegulator",
    "VoltageMultiplier",
    "McuPowerModel",
    "SensorBase",
    "SensorError",
    "SensorSuite",
    "accelerometer",
    "humidity_sensor",
    "strain_sensor",
    "temperature_sensor",
]
