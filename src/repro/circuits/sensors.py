"""Sensor peripherals integrated in the EcoCapsule (Sec. 4.2).

Three sensing functions are modelled:

* AHT10-class integrated temperature + internal-relative-humidity (IRH);
* BFH1K-class full-bridge strain gauge on the shell back (two-directional
  internal strain);
* a MEMS accelerometer for the pilot-study measurements.

Each sensor converts a ground-truth environmental value into a quantised
digital reading with datasheet-style accuracy, resolution and noise, so
the SHM pipeline exercises realistic imperfect data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..errors import ReproError


class SensorError(ReproError):
    """A sensor was read outside its operating range."""


@dataclass
class SensorBase:
    """Shared quantised-reading machinery.

    Attributes:
        range: (low, high) measurable band in engineering units.
        resolution: Quantisation step.
        noise_rms: Gaussian read noise (same units).
        seed: RNG seed for reproducible noise.
    """

    range: Tuple[float, float]
    resolution: float
    noise_rms: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        low, high = self.range
        if low >= high:
            raise SensorError(f"invalid range {self.range}")
        if self.resolution <= 0.0:
            raise SensorError("resolution must be positive")
        if self.noise_rms < 0.0:
            raise SensorError("noise cannot be negative")
        self._rng = np.random.default_rng(self.seed)

    def read(self, true_value: float) -> float:
        """One quantised, noisy reading of ``true_value``.

        Raises:
            SensorError: when the truth lies outside the sensor range.
        """
        low, high = self.range
        if not low <= true_value <= high:
            raise SensorError(
                f"value {true_value} outside the sensor range [{low}, {high}]"
            )
        noisy = true_value + self._rng.normal(0.0, self.noise_rms)
        quantised = round(noisy / self.resolution) * self.resolution
        return float(min(max(quantised, low), high))


def temperature_sensor(seed: int = 0) -> SensorBase:
    """AHT10-class temperature channel: -40..85 C, 0.01 C step, 0.2 C noise."""
    return SensorBase(range=(-40.0, 85.0), resolution=0.01, noise_rms=0.2, seed=seed)


def humidity_sensor(seed: int = 0) -> SensorBase:
    """AHT10-class IRH channel: 0..100 %RH, 0.024 % step, 1.8 % noise."""
    return SensorBase(range=(0.0, 100.0), resolution=0.024, noise_rms=1.8, seed=seed)


def strain_sensor(seed: int = 0) -> SensorBase:
    """BFH1K-class full-bridge strain gauge: +/-5000 ue, 1 ue step."""
    return SensorBase(range=(-5000.0, 5000.0), resolution=1.0, noise_rms=2.5, seed=seed)


def accelerometer(seed: int = 0) -> SensorBase:
    """MEMS accelerometer: +/-2 g in m/s^2, mg-scale resolution."""
    return SensorBase(range=(-19.6, 19.6), resolution=0.001, noise_rms=0.004, seed=seed)


@dataclass
class SensorSuite:
    """The EcoCapsule's standard payload: temperature, IRH, strain, accel."""

    temperature: SensorBase = field(default_factory=temperature_sensor)
    humidity: SensorBase = field(default_factory=humidity_sensor)
    strain: SensorBase = field(default_factory=strain_sensor)
    acceleration: SensorBase = field(default_factory=accelerometer)

    def read_all(
        self,
        temperature: float,
        humidity: float,
        strain: float,
        acceleration: float,
    ) -> dict:
        """Read every channel against a ground-truth environment."""
        return {
            "temperature": self.temperature.read(temperature),
            "humidity": self.humidity.read(humidity),
            "strain": self.strain.read(strain),
            "acceleration": self.acceleration.read(acceleration),
        }
