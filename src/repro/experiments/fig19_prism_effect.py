"""Fig. 19: downlink SNR vs prism incident angle.

Anchors: SNR peaks at ~15 dB around 50-70 deg (inside the theoretical
[34, 73] deg S-only window); it drops ~73 % at 15 deg and ~30 % at
30 deg because both wave modes coexist; 0 deg (no prism, pure P-wave)
shows a locally high SNR because only one mode exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..acoustics import WavePrism
from ..materials import PLA, get_concrete
from ..units import db


@dataclass(frozen=True)
class Fig19Result:
    points: List[Tuple[float, float]]  # (angle deg, SNR dB)
    window_deg: Tuple[float, float]

    def snr_at(self, angle_deg: float) -> float:
        for a, s in self.points:
            if abs(a - angle_deg) < 1e-9:
                return s
        raise KeyError(f"angle {angle_deg} not in the sweep")

    @property
    def peak(self) -> Tuple[float, float]:
        return max(self.points, key=lambda p: p[1])


def run(
    angles_deg: List[float] = None,
    concrete_name: str = "NC",
    reference_snr_db: float = 15.3,
    seed: int = 0,
) -> Fig19Result:
    """Sweep the tested prism angles (the paper tests 0-75 deg).

    The angle sweep is fully deterministic; ``seed`` is accepted (and
    recorded in run manifests) for interface uniformity.

    ``reference_snr_db`` anchors a unity-quality injection; each angle's
    SNR is the reference scaled by its injection quality (energy into
    the wall x mode purity).  The 0 deg case is the no-prism direct
    contact: a single P-wave mode with good energy but no S-reflections.
    """
    if angles_deg is None:
        angles_deg = [0.0, 15.0, 30.0, 45.0, 50.0, 60.0, 75.0]
    concrete = get_concrete(concrete_name).medium
    prism = WavePrism(PLA, concrete)
    low, high = prism.critical_angles
    points: List[Tuple[float, float]] = []
    for angle in angles_deg:
        if angle == 0.0:
            # Direct contact: single-mode P, energy ~ the normal-incidence
            # transmission, purity 1 -- the paper's "relatively higher SNR
            # at 0 deg" observation.
            quality = prism.injection_quality(math.radians(0.0))
            gain = quality.injected_energy  # single mode: no purity penalty
        else:
            quality = prism.injection_quality(math.radians(angle))
            gain = quality.effective_snr_gain
        snr = reference_snr_db + db(max(gain, 1e-6))
        points.append((angle, snr))
    return Fig19Result(
        points=points,
        window_deg=(math.degrees(low), math.degrees(high)),
    )
