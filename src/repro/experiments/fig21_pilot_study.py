"""Fig. 21: the pilot study -- July-2021 response data + section health.

Reproduces all three panels:

(a) the month of acceleration data with the 15-23 July storm anomaly;
(b) the month of stress data showing the matching anomaly window;
(c) the per-section real-time health panel (pedestrian counts, grades,
    speeds), which stayed at grade B or above through the year thanks
    to COVID-era social distancing.

Also runs the analytics the paper describes: anomaly detection on both
channels, cross-sensor mutual verification, and compliance against the
bridge's structural limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..shm import (
    AnomalyWindow,
    BridgeMonitor,
    ComplianceReport,
    Footbridge,
    JulyTimeSeriesGenerator,
    SECTION_NAMES,
    SectionHealth,
    check_compliance,
    cross_validate,
    detect_anomalies,
)


@dataclass(frozen=True)
class Fig21Result:
    hours: np.ndarray
    acceleration: np.ndarray
    stress_mpa: np.ndarray
    acceleration_anomalies: List[AnomalyWindow]
    stress_anomalies: List[AnomalyWindow]
    sensors_mutually_verified: bool
    compliance: ComplianceReport
    section_health: List[SectionHealth]
    grade_fractions: Dict[str, float]

    @property
    def storm_detected_in_both(self) -> bool:
        """Did both channels flag an anomaly overlapping the storm window?"""
        from ..shm import STORM_END_HOUR, STORM_START_HOUR

        storm = AnomalyWindow(STORM_START_HOUR, STORM_END_HOUR)
        return any(w.overlaps(storm) for w in self.acceleration_anomalies) and any(
            w.overlaps(storm) for w in self.stress_anomalies
        )

    @property
    def health_at_or_above_b(self) -> bool:
        """The paper's result: health remained at B or above all period."""
        return all(g in ("A", "B") for g in self.grade_fractions)


def run(seed: int = 2021, samples_per_hour: int = 12) -> Fig21Result:
    """Generate the month and run the full monitoring pipeline."""
    generator = JulyTimeSeriesGenerator(
        samples_per_hour=samples_per_hour, seed=seed
    )
    hours, acceleration = generator.acceleration(0, scale=0.012)
    _, stress = generator.stress(0, mean=-60.0, swing=10.0)

    accel_windows = detect_anomalies(hours, acceleration)
    # Stress is not zero-mean; detect anomalies on its deviation.
    stress_dev = stress - float(np.median(stress))
    stress_windows = detect_anomalies(hours, stress_dev)

    bridge = Footbridge()
    compliance = check_compliance(bridge.limits, acceleration, stress)

    # Per-section health: counts from the pedestrian generator, one
    # snapshot per hour over the month.
    monitor = BridgeMonitor(bridge)
    _, counts = generator.pedestrian_counts()
    per_hour = samples_per_hour
    rng = np.random.default_rng(seed)
    last: List[SectionHealth] = []
    for i in range(0, counts.size, per_hour):
        total = int(counts[i])
        # Spread the section-level count across the five sections.
        weights = rng.dirichlet(np.ones(len(SECTION_NAMES)))
        section_counts = {
            s: int(round(total * w)) for s, w in zip(SECTION_NAMES, weights)
        }
        last = monitor.update(section_counts)

    return Fig21Result(
        hours=hours,
        acceleration=acceleration,
        stress_mpa=stress,
        acceleration_anomalies=accel_windows,
        stress_anomalies=stress_windows,
        sensors_mutually_verified=cross_validate(accel_windows, stress_windows),
        compliance=compliance,
        section_health=last,
        grade_fractions=monitor.grade_fractions(),
    )
