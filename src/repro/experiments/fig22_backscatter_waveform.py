"""Fig. 22: the received and demodulated backscatter signal.

Anchors: the EcoCapsule starts backscattering ~4 ms into the capture;
the demodulated baseband is a square wave of alternating amplitudes
with 0.5 ms high and low edges (a 1 kbps switch pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..link import UplinkPassbandSimulator
from ..phy.modem import BackscatterModulator


@dataclass(frozen=True)
class Fig22Result:
    sample_rate: float
    raw_waveform: np.ndarray
    demodulated: np.ndarray
    idle_samples: int  # leading CBW-only region (the <4 ms of Fig. 22)
    edge_duration: float

    @property
    def modulation_depth(self) -> float:
        """Demodulated high/low contrast in the backscattering region.

        Compares the top and bottom deciles of the demodulated envelope
        after the idle region; a clean square wave gives a ratio >> 1.
        """
        active = self.demodulated[self.idle_samples :]
        high = float(np.percentile(active, 90))
        low = float(np.percentile(active, 10))
        if low <= 0.0:
            return float("inf")
        return high / low


def run(
    n_bits: int = 12,
    bitrate: float = 1e3,
    idle_time: float = 4e-3,
    seed: int = 5,
) -> Fig22Result:
    """Reproduce the Fig. 22 capture: idle CBW, then FM0 backscatter."""
    modulator = BackscatterModulator(blf=10e3, bitrate=bitrate)
    simulator = UplinkPassbandSimulator(modulator=modulator, seed=seed)
    bits = [1, 0] * (n_bits // 2)
    active = simulator.received_waveform(bits)

    idle_samples = int(round(idle_time * simulator.sample_rate))
    t = np.arange(idle_samples) / simulator.sample_rate
    rng = np.random.default_rng(seed)
    leakage = 10.0 * simulator.channel_gain
    idle = leakage * np.sin(2.0 * np.pi * simulator.carrier * t)
    idle = idle + rng.normal(0.0, simulator.noise_floor, size=idle.size)

    raw = np.concatenate([idle, active])
    demodulated = simulator.demodulate(raw)
    return Fig22Result(
        sample_rate=simulator.sample_rate,
        raw_waveform=raw,
        demodulated=demodulated,
        idle_samples=idle_samples,
        edge_duration=0.5 / bitrate,
    )
