"""Fig. 17: uplink throughput vs concrete type (NC / UHPC / UHPFRC).

Anchors: all three throughputs exceed 13 kbps (with ~2 kbps deviation),
and UHPC/UHPFRC beat NC by about 2 kbps thanks to their higher density
and compressive strength.

The throughput model: each concrete's block SNR (from its frequency
response at the carrier) feeds the SNR-vs-bitrate model; throughput is
the highest bitrate sustaining the decoder's working SNR, measured by
running the Monte-Carlo link at that operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..acoustics import ConcreteBlock, FrequencyResponse, RESONANT_FREQUENCY
from ..link import SnrBitrateModel, UplinkBasebandSimulator
from ..materials import get_concrete
from ..units import db_amplitude


@dataclass(frozen=True)
class ThroughputRow:
    concrete: str
    reference_snr_db: float
    max_bitrate: float
    measured_throughput: float


@dataclass(frozen=True)
class Fig17Result:
    rows: Dict[str, ThroughputRow]

    def advantage_over_nc(self, concrete: str) -> float:
        """Throughput gain (bit/s) of ``concrete`` over NC."""
        return (
            self.rows[concrete].measured_throughput
            - self.rows["NC"].measured_throughput
        )


def _reference_snr(concrete_name: str, thickness: float = 0.15) -> float:
    """Link SNR (dB) at the 1 kbps reference through a 15 cm block.

    NC anchors at 18 dB (the paper's Fig. 16 starting point); stronger
    concretes gain by their response advantage at the carrier.
    """
    nc_gain = FrequencyResponse(ConcreteBlock(get_concrete("NC"), thickness)).gain(
        RESONANT_FREQUENCY
    )
    gain = FrequencyResponse(
        ConcreteBlock(get_concrete(concrete_name), thickness)
    ).gain(RESONANT_FREQUENCY)
    # The 0.23 weight maps the block-response advantage into the ~2 kbps
    # throughput edge the paper measures for UHPC/UHPFRC over NC.
    return 18.0 + 0.23 * db_amplitude(gain / nc_gain)


def run(
    min_snr_db: float = 3.0,
    measure_bits: int = 4_000,
    seed: int = 11,
    snr_margin_db: float = 6.0,
) -> Fig17Result:
    """Measure per-concrete throughput at each material's bitrate knee.

    ``snr_margin_db`` reflects the throughput experiment's setup: the
    node sits in a 15 cm block right against the reader (Sec. 5.3), well
    above the 1 m reference link the SNR-vs-bitrate curve is anchored
    to, so the decoder operates with margin above the 3 dB knee.
    """
    rows: Dict[str, ThroughputRow] = {}
    for name in ("NC", "UHPC", "UHPFRC"):
        snr0 = _reference_snr(name)
        model = SnrBitrateModel(snr_at_reference=snr0)
        bitrate = model.max_bitrate(min_snr_db=min_snr_db)
        simulator = UplinkBasebandSimulator(seed=seed)
        operating_snr = max(model.snr_db(bitrate), min_snr_db) + snr_margin_db
        ber = simulator.measure_ber(
            operating_snr, bitrate=bitrate, total_bits=measure_bits
        )
        rows[name] = ThroughputRow(
            concrete=name,
            reference_snr_db=snr0,
            max_bitrate=bitrate,
            measured_throughput=bitrate * (1.0 - ber),
        )
    return Fig17Result(rows=rows)
