"""Fig. 20: downlink SNR vs bitrate, FSK (anti-ring) vs plain OOK.

Anchor: the FSK approach improves SNR by about 3-5x over OOK because
the off-resonance effect suppresses the ring tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..acoustics import ConcreteBlock
from ..link import DownlinkSimulator
from ..materials import get_concrete


@dataclass(frozen=True)
class Fig20Result:
    fsk: List[Tuple[float, float]]  # (bitrate bit/s, SNR dB)
    ook: List[Tuple[float, float]]

    def gain_at(self, bitrate: float) -> float:
        """Linear FSK-over-OOK SNR factor at ``bitrate``."""
        fsk = dict(self.fsk)[bitrate]
        ook = dict(self.ook)[bitrate]
        return 10.0 ** ((fsk - ook) / 20.0)

    @property
    def gain_range(self) -> Tuple[float, float]:
        gains = [self.gain_at(b) for b, _ in self.fsk]
        return min(gains), max(gains)


def run(
    bitrates_kbps: List[float] = None,
    concrete_name: str = "NC",
    seed: int = 0,
) -> Fig20Result:
    """Sweep 1-10 kbps as in the figure.

    The symbol waveforms are fully deterministic; ``seed`` is accepted
    (and recorded in run manifests) for interface uniformity.
    """
    if bitrates_kbps is None:
        bitrates_kbps = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    block = ConcreteBlock(get_concrete(concrete_name), 0.15)
    simulator = DownlinkSimulator(block)
    fsk: List[Tuple[float, float]] = []
    ook: List[Tuple[float, float]] = []
    for kbps in bitrates_kbps:
        bitrate = kbps * 1e3
        fsk.append((bitrate, simulator.symbol_snr_db(bitrate, "fsk")))
        ook.append((bitrate, simulator.symbol_snr_db(bitrate, "ook")))
    return Fig20Result(fsk=fsk, ook=ook)
