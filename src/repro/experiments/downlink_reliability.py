"""Downlink command reliability vs SNR (extension experiment).

The paper evaluates the downlink via SNR (Figs. 19/20) but not via a
command error rate.  This experiment closes that gap: PIE commands are
synthesized over the FSK carrier plan, passed through an AWGN channel
at a swept SNR, demodulated by the node's envelope-detector chain, and
decoded by the MCU-style edge-timing decoder.  The output is the packet
(command) error rate per SNR -- the number that actually determines
whether a node hears Query/Ack at a given link quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..circuits import EnvelopeDetector, LevelShifter, edge_intervals
from ..errors import DecodingError
from ..phy import DownlinkModulator, PieTiming, decode_edge_durations
from ..protocol import Query


@dataclass(frozen=True)
class ReliabilityPoint:
    snr_db: float
    packets: int
    packet_errors: int

    @property
    def packet_error_rate(self) -> float:
        if self.packets == 0:
            raise DecodingError("no packets recorded")
        return self.packet_errors / self.packets


@dataclass(frozen=True)
class DownlinkReliabilityResult:
    points: List[ReliabilityPoint]

    def per_at(self, snr_db: float) -> float:
        for point in self.points:
            if abs(point.snr_db - snr_db) < 1e-9:
                return point.packet_error_rate
        raise KeyError(f"SNR {snr_db} not in the sweep")

    def working_snr(self, max_per: float = 0.01) -> float:
        """Lowest swept SNR with a packet error rate under ``max_per``."""
        for point in self.points:
            if point.packet_error_rate <= max_per:
                return point.snr_db
        return float("inf")


def _one_packet(
    modulator: DownlinkModulator,
    detector: EnvelopeDetector,
    shifter: LevelShifter,
    command_bits: List[int],
    sample_rate: float,
    snr_db: float,
    rng: np.random.Generator,
) -> bool:
    """Send one command; True when it decodes back to the same bits."""
    envelope_plan, carrier_plan = modulator.drive_plan(command_bits, sample_rate)
    t = np.arange(envelope_plan.size) / sample_rate
    phase = 2.0 * np.pi * np.cumsum(carrier_plan) / sample_rate
    # The concrete suppresses the off tone; the received amplitude plan.
    amplitude = np.where(
        carrier_plan == modulator.resonant_frequency, 1.0, 0.25
    )
    waveform = amplitude * envelope_plan * np.sin(phase)
    # AWGN at the requested in-band SNR (signal RMS over noise RMS).
    signal_rms = float(np.sqrt(np.mean(waveform**2)))
    noise_rms = signal_rms / (10.0 ** (snr_db / 20.0))
    waveform = waveform + rng.normal(0.0, noise_rms, size=waveform.size)

    try:
        envelope = detector.detect(waveform, sample_rate)
        binary = shifter.binarize(envelope)
        durations = edge_intervals(binary, sample_rate)
        decoded = decode_edge_durations(
            durations, int(binary[0]), modulator.timing
        )
        return decoded == command_bits
    except Exception:
        return False


def run(
    snrs_db: Optional[List[float]] = None,
    packets_per_point: int = 60,
    sample_rate: float = 2e6,
    seed: int = 19,
) -> DownlinkReliabilityResult:
    """Sweep the downlink packet error rate over SNR."""
    if snrs_db is None:
        snrs_db = [0.0, 3.0, 6.0, 9.0, 12.0, 15.0, 20.0]
    timing = PieTiming(tari=250e-6, low=250e-6)
    modulator = DownlinkModulator(timing=timing)
    detector = EnvelopeDetector(cutoff=30e3)
    shifter = LevelShifter()
    rng = np.random.default_rng(seed)
    command_bits = Query(q=3).to_bits()

    points: List[ReliabilityPoint] = []
    for snr in snrs_db:
        errors = 0
        for _ in range(packets_per_point):
            ok = _one_packet(
                modulator, detector, shifter, command_bits,
                sample_rate, snr, rng,
            )
            if not ok:
                errors += 1
        points.append(
            ReliabilityPoint(
                snr_db=snr, packets=packets_per_point, packet_errors=errors
            )
        )
    return DownlinkReliabilityResult(points=points)
