"""Tables 1 and 2 plus the shell/HRA design-point reproductions.

* Table 1 -- concrete mix proportions and properties (the materials DB);
* Table 2 -- PAO health thresholds for four regions;
* the shell design point: dP_max ~ 4.3 MPa -> h_max ~ 195 m (resin) and
  115.2 MPa -> ~4985 m (alloy steel);
* the HRA design point: the paper's geometry resonating near 230 kHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..acoustics import paper_resonator, speed_for_target
from ..materials import all_concretes
from ..node import resin_shell, steel_shell
from ..shm import PAO_THRESHOLDS, grade


@dataclass(frozen=True)
class Table1Row:
    concrete: str
    mix: Dict[str, float]
    fco_mpa: float
    ec_gpa: float
    poisson: float
    strain_percent: float
    cp: float
    cs: float


def table1() -> List[Table1Row]:
    """The Table 1 reproduction, one row per concrete."""
    rows: List[Table1Row] = []
    for concrete in all_concretes():
        mix = concrete.mix
        rows.append(
            Table1Row(
                concrete=concrete.name,
                mix={
                    "cement": mix.cement,
                    "silica_fume": mix.silica_fume,
                    "fly_ash": mix.fly_ash,
                    "quartz_powder": mix.quartz_powder,
                    "sand": mix.sand,
                    "granite": mix.granite,
                    "steel_fiber": mix.steel_fiber,
                    "water": mix.water,
                    "hrwr": mix.hrwr,
                },
                fco_mpa=concrete.compressive_strength / 1e6,
                ec_gpa=concrete.elastic_modulus / 1e9,
                poisson=concrete.poisson_ratio,
                strain_percent=concrete.peak_strain * 100.0,
                cp=concrete.cp,
                cs=concrete.cs,
            )
        )
    return rows


def table2() -> Dict[str, Dict[str, float]]:
    """The Table 2 thresholds, keyed region -> grade -> lower bound."""
    return {region: dict(bounds) for region, bounds in PAO_THRESHOLDS.items()}


def table2_examples() -> List[Tuple[float, str, str]]:
    """(PAO, region, grade) spot checks across the table."""
    cases = [
        (4.0, "united_states"),
        (2.5, "united_states"),
        (1.0, "hong_kong"),
        (0.4, "bangkok"),
        (3.0, "manila"),
        (0.3, "manila"),
    ]
    return [(pao, region, grade(pao, region)) for pao, region in cases]


@dataclass(frozen=True)
class ShellDesignPoint:
    material: str
    max_pressure_mpa: float
    max_height_m: float


def shell_design_points() -> List[ShellDesignPoint]:
    """The two shell limits the paper quotes (Sec. 4.1)."""
    resin = resin_shell()
    steel = steel_shell()
    return [
        ShellDesignPoint(
            material="SLA resin",
            max_pressure_mpa=resin.max_pressure / 1e6,
            max_height_m=resin.max_height(),
        ),
        ShellDesignPoint(
            material="alloy steel",
            max_pressure_mpa=steel.max_pressure / 1e6,
            max_height_m=steel.max_height(2360.0),
        ),
    ]


@dataclass(frozen=True)
class HraDesignPoint:
    neck_area_mm2: float
    cavity_volume_mm3: float
    neck_length_mm: float
    design_speed: float  # medium wave speed putting resonance at 230 kHz
    resonance_at_design_speed: float


@dataclass(frozen=True)
class TablesResult:
    """Every tabular reproduction bundled for the experiment runtime."""

    table1_rows: List[Table1Row]
    table2_thresholds: Dict[str, Dict[str, float]]
    table2_examples: List[Tuple[float, str, str]]
    shell_points: List[ShellDesignPoint]
    hra: HraDesignPoint


def run(seed: int = 0) -> TablesResult:
    """Regenerate Tables 1/2 plus the shell and HRA design points.

    Everything here is a deterministic lookup; ``seed`` is accepted (and
    recorded in run manifests) so every experiment exposes the seeded
    interface the runtime registry expects.
    """
    return TablesResult(
        table1_rows=table1(),
        table2_thresholds=table2(),
        table2_examples=table2_examples(),
        shell_points=shell_design_points(),
        hra=hra_design_point(),
    )


def hra_design_point(target: float = 230e3) -> HraDesignPoint:
    """The paper's HR geometry and the wave speed placing it at 230 kHz.

    The required speed (~2.8 km/s) matches the S-wave velocity of
    high-performance concrete rather than NC -- the capsules are aimed
    at UHPC-class hosts.
    """
    resonator = paper_resonator()
    speed = speed_for_target(resonator, target)
    return HraDesignPoint(
        neck_area_mm2=resonator.neck_area * 1e6,
        cavity_volume_mm3=resonator.cavity_volume * 1e9,
        neck_length_mm=resonator.neck_length * 1e3,
        design_speed=speed,
        resonance_at_design_speed=resonator.resonant_frequency(speed),
    )
