"""Fig. 13: node power consumption vs uplink bitrate.

Anchors: 80.1 uW on standby (bitrate 0), and a total that fluctuates
slightly around 360 uW regardless of bitrate from 1 to 8 kbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..circuits import McuPowerModel


@dataclass(frozen=True)
class Fig13Result:
    points: List[Tuple[float, float]]  # (bitrate bit/s, power W)
    standby_power: float

    @property
    def active_mean(self) -> float:
        active = [p for b, p in self.points if b > 0.0]
        return sum(active) / len(active)

    @property
    def active_spread(self) -> float:
        """Max-min active power (W): the 'fluctuates slightly' check."""
        active = [p for b, p in self.points if b > 0.0]
        return max(active) - min(active)


def run(bitrates_kbps: List[float] = None, seed: int = 0) -> Fig13Result:
    """Sweep 0-8 kbps as in the figure.

    The power model is fully deterministic; ``seed`` is accepted (and
    recorded in run manifests) for interface uniformity.
    """
    if bitrates_kbps is None:
        bitrates_kbps = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
    mcu = McuPowerModel()
    points: List[Tuple[float, float]] = []
    for kbps in bitrates_kbps:
        bitrate = kbps * 1e3
        state = "standby" if bitrate == 0.0 else "active"
        points.append((bitrate, mcu.power(state, bitrate)))
    return Fig13Result(points=points, standby_power=mcu.power("standby"))
