"""Fig. 7: the PIE bit-0 tailing, without and with the FSK suppression.

Generates both received symbol waveforms (OOK with the ring tail, FSK
with the off-resonance-suppressed low edge) and quantifies the residual
amplitude in the low edge.  The paper's anchors: the OOK tail consumes
an extra ~0.3 ms after the transition; the FSK symbol shows a cleanly
suppressed tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..acoustics import (
    ConcreteBlock,
    FrequencyResponse,
    RingdownModel,
    fsk_symbol_waveform,
    low_edge_residual,
    ook_symbol_waveform,
)
from ..materials import get_concrete


@dataclass(frozen=True)
class Fig07Result:
    sample_rate: float
    edge_duration: float
    ook_waveform: np.ndarray
    fsk_waveform: np.ndarray
    ook_residual: float
    fsk_residual: float
    tail_duration: float

    @property
    def suppression_ratio(self) -> float:
        """How much cleaner the FSK low edge is (linear, > 1)."""
        if self.fsk_residual <= 0.0:
            return float("inf")
        return self.ook_residual / self.fsk_residual


def run(
    concrete_name: str = "NC",
    edge_duration: float = 0.5e-3,
    sample_rate: float = 4e6,
    seed: int = 0,
) -> Fig07Result:
    """Build both Fig. 7 symbols (0.5 ms edges as in the figure).

    The waveforms are fully deterministic; ``seed`` is accepted (and
    recorded in run manifests) for interface uniformity.
    """
    block = ConcreteBlock(get_concrete(concrete_name), 0.15)
    response = FrequencyResponse(block)
    ring = RingdownModel()
    ook = ook_symbol_waveform(ring, edge_duration, edge_duration, sample_rate)
    fsk = fsk_symbol_waveform(
        ring, response, edge_duration, edge_duration, sample_rate
    )
    return Fig07Result(
        sample_rate=sample_rate,
        edge_duration=edge_duration,
        ook_waveform=ook,
        fsk_waveform=fsk,
        ook_residual=low_edge_residual(ook, edge_duration, sample_rate),
        fsk_residual=low_edge_residual(fsk, edge_duration, sample_rate),
        tail_duration=ring.tail_duration(),
    )
