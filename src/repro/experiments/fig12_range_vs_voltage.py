"""Fig. 12: power-up range vs TX voltage for S1-S4 and the PAB pools.

Produces one range-vs-voltage series per structure.  Anchors from the
paper (cm): at 50 V -- S1 130, S2 56, S3 134, S4 60, Pool1 19; at 200 V
-- S2 235, S3 500, S4 385, Pool1 200; Pool2 needs 84 V for 23 cm but
reaches 6.5 m at 125 V; S3 exceeds 6 m at 250 V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..acoustics import paper_structures
from ..baselines import PabLink, pool_1, pool_2
from ..link import PowerUpLink


@dataclass(frozen=True)
class RangeCurve:
    label: str
    points: List[Tuple[float, float]]  # (voltage V, range m)

    def range_at(self, voltage: float) -> float:
        for v, r in self.points:
            if abs(v - voltage) < 1e-9:
                return r
        raise KeyError(f"voltage {voltage} not in the sweep")


@dataclass(frozen=True)
class Fig12Result:
    curves: Dict[str, RangeCurve]

    def max_range(self) -> Tuple[str, float]:
        """(structure, range) of the best *concrete* link at max voltage.

        The paper's ">6 m" headline is about EcoCapsule in concrete; the
        PAB pool curves are excluded (pool 2's waveguide caps at the
        pool length).
        """
        best_label, best_range = "", 0.0
        for label, curve in self.curves.items():
            if label.startswith("PAB"):
                continue
            _, r = curve.points[-1]
            if r > best_range:
                best_label, best_range = label, r
        return best_label, best_range


def run(voltages: List[float] = None, seed: int = 0) -> Fig12Result:
    """Sweep all six structures over ``voltages`` (default 10-250 V).

    The link-budget sweep is fully deterministic; ``seed`` is accepted
    (and recorded in run manifests) for interface uniformity.
    """
    if voltages is None:
        voltages = [10.0, 25.0, 50.0, 84.0, 100.0, 125.0, 150.0, 200.0, 250.0]
    curves: Dict[str, RangeCurve] = {}
    for structure in paper_structures():
        link = PowerUpLink(structure)
        curves[structure.name] = RangeCurve(
            label=structure.name, points=link.range_curve(voltages)
        )
    for pool in (pool_1(), pool_2()):
        link = PabLink(pool)
        curves[pool.name] = RangeCurve(
            label=pool.name, points=link.range_curve(voltages)
        )
    return Fig12Result(curves=curves)
