"""Fig. 15: uplink BER vs SNR, EcoCapsule vs the PAB baseline.

Monte-Carlo FM0 decoding over the baseband link simulator.  The paper's
anchors: BER ~ 0.5 at ~2 dB (the sync floor), dropping to the 1e-5
floor at SNRs >= 8 dB for EcoCapsule and >= 11 dB for PAB (the lower
carrier costs PAB ~3 dB of decoding margin).

Monte-Carlo cannot resolve 1e-5 cheaply, so each point reports the
measured BER when errors were observed and the analytic FM0 tail
(Q(sqrt(2 Eb/N0))) when the trial count saw none -- the standard
semi-analytic extension, recorded per point in ``analytic_tail``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..baselines import PAB_WATERFALL_OFFSET_DB
from ..link import UplinkBasebandSimulator
from ..phy import q_function


@dataclass(frozen=True)
class BerPoint:
    snr_db: float
    ber: float
    analytic_tail: bool  # True when below the Monte-Carlo floor


@dataclass(frozen=True)
class Fig15Result:
    ecocapsule: List[BerPoint]
    pab: List[BerPoint]

    def floor_snr(self, series: str = "ecocapsule", floor: float = 1e-5) -> float:
        """Lowest sampled SNR where BER reaches the 1e-5 floor."""
        points = self.ecocapsule if series == "ecocapsule" else self.pab
        for p in points:
            if p.ber <= floor:
                return p.snr_db
        return math.inf


def _analytic_ber(snr_db: float, processing_gain_db: float) -> float:
    """Coherent FM0 tail: Q(sqrt(2 Eb/N0)) at the decoder's Eb/N0."""
    ebn0 = 10.0 ** ((snr_db + processing_gain_db) / 10.0)
    return q_function(math.sqrt(2.0 * ebn0))


def _series(
    snrs: List[float], offset_db: float, total_bits: int, seed: int
) -> List[BerPoint]:
    simulator = UplinkBasebandSimulator(seed=seed)
    points: List[BerPoint] = []
    for snr in snrs:
        effective = snr - offset_db
        measured = simulator.measure_ber(effective, total_bits=total_bits)
        # Residual BER floor the Monte-Carlo run cannot resolve: rare
        # detection failures (each costs a coin-flip packet) plus the
        # coherent decoding tail.  Clamped at the paper's 1e-5
        # measurement floor.
        residual = 0.5 * (
            1.0 - simulator.detection_probability(effective)
        ) + _analytic_ber(effective, simulator.processing_gain_db)
        residual = max(residual, 1e-5)
        if measured > residual:
            points.append(BerPoint(snr_db=snr, ber=measured, analytic_tail=False))
        else:
            points.append(BerPoint(snr_db=snr, ber=residual, analytic_tail=True))
    return points


def run(
    snrs_db: List[float] = None,
    total_bits: int = 20_000,
    seed: int = 7,
) -> Fig15Result:
    """Sweep the Fig. 15 SNR grid for both systems."""
    if snrs_db is None:
        snrs_db = [0.0, 2.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 15.0, 18.0]
    return Fig15Result(
        ecocapsule=_series(snrs_db, 0.0, total_bits, seed),
        pab=_series(snrs_db, PAB_WATERFALL_OFFSET_DB, total_bits, seed + 1),
    )
