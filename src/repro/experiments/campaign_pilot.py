"""Campaign: the 17-month pilot as a checkpointable epoch-stepped run.

Drives :mod:`repro.campaign` end to end -- one wall charging session,
TDMA inventory and week of SHM accumulation per epoch, under the
nominal fault schedule with periodic storm windows -- and runs the
Fig. 21 analytics over the accumulated series.  The registry entry runs
fully in memory (no state directory), but the result is byte-identical
to the same config executed as a supervised ``campaign run`` on disk,
killed, and resumed: the golden snapshot pins ``extra.result_sha256``,
the exact hash the crash-recovery CI stage compares.
"""

from __future__ import annotations

from ..campaign import CampaignConfig, CampaignResult, run_campaign


def run(
    epochs: int = 74,
    nodes: int = 8,
    wall_length: float = 8.0,
    tx_voltage: float = 250.0,
    hours_per_epoch: int = 168,
    samples_per_hour: int = 1,
    seed: int = 2021,
    fault_intensity: float = 1.0,
    storm_period_epochs: int = 26,
    storm_duration_epochs: int = 2,
    storm_fault_intensity: float = 3.0,
) -> CampaignResult:
    """Run the whole campaign in memory and return its final result.

    The watchdog is left disabled: registry runs execute inside worker
    threads/processes where ``SIGALRM`` is unavailable anyway, and a
    deterministic golden cannot depend on wall-clock timeouts.
    """
    config = CampaignConfig(
        epochs=epochs,
        nodes=nodes,
        wall_length=wall_length,
        tx_voltage=tx_voltage,
        hours_per_epoch=hours_per_epoch,
        samples_per_hour=samples_per_hour,
        seed=seed,
        fault_intensity=fault_intensity,
        storm_period_epochs=storm_period_epochs,
        storm_duration_epochs=storm_duration_epochs,
        storm_fault_intensity=storm_fault_intensity,
        epoch_timeout_s=0.0,
    )
    outcome = run_campaign(config)
    assert outcome.result is not None  # no signals: in-memory runs complete
    return outcome.result
