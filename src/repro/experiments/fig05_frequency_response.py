"""Fig. 5b: concrete frequency response, four blocks, 20-400 kHz sweep.

The paper's findings this experiment must reproduce:

1. every block's resonance lands between 200 and 250 kHz, beyond which
   propagation attenuates rapidly;
2. the UHPC/UHPFRC peaks dwarf NC's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..acoustics import CARRIER_BAND, FrequencyResponse, paper_test_blocks


@dataclass(frozen=True)
class ResponseCurve:
    """One block's sweep: (frequency Hz, RX amplitude V) pairs."""

    label: str
    points: List[Tuple[float, float]]

    @property
    def peak(self) -> Tuple[float, float]:
        """(frequency, amplitude) of the maximum response."""
        return max(self.points, key=lambda p: p[1])


@dataclass(frozen=True)
class Fig05Result:
    curves: Dict[str, ResponseCurve]

    def peak_in_carrier_band(self, label: str) -> bool:
        low, high = CARRIER_BAND
        freq, _ = self.curves[label].peak
        return low <= freq <= high


def run(
    tx_voltage: float = 100.0,
    f_start: float = 20e3,
    f_stop: float = 400e3,
    f_step: float = 10e3,
    seed: int = 0,
) -> Fig05Result:
    """Sweep the four Fig. 5a blocks exactly as the paper does.

    The sweep is fully deterministic; ``seed`` is accepted (and recorded
    in run manifests) so every experiment exposes the seeded interface.
    """
    frequencies = []
    f = f_start
    while f <= f_stop + 1.0:
        frequencies.append(f)
        f += f_step
    curves: Dict[str, ResponseCurve] = {}
    for block in paper_test_blocks():
        response = FrequencyResponse(block)
        points = response.sweep(frequencies, tx_voltage)
        curves[block.label] = ResponseCurve(label=block.label, points=points)
    return Fig05Result(curves=curves)
