"""Figs. 26-36: the appendix bridge-sensor channels for July 2021.

Generates every appendix series (humidity, temperature, barometric
pressure, six accelerometers, two stress gauges) and checks the
paper-visible properties: the value bands of each plot, and the
storm-window signature (high humidity, pressure trough, elevated
response variance during 15-23 July).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..shm import JulyTimeSeriesGenerator, in_storm


#: The visible value band of each appendix figure (for validation).
EXPECTED_BANDS: Dict[str, Tuple[float, float]] = {
    "humidity": (50.0, 100.0),
    "temperature": (24.0, 36.0),
    "barometric_pressure": (97.5, 100.0),
    "acceleration_1": (-0.08, 0.08),
    "acceleration_2": (-0.08, 0.08),
    "acceleration_3": (-0.08, 0.08),
    "acceleration_4": (-0.03, 0.03),
    "acceleration_5": (-0.08, 0.08),
    "acceleration_6": (-0.08, 0.08),
    "stress_1": (0.0, 9.0),
    "stress_2": (-15.0, -5.0),
}


@dataclass(frozen=True)
class ChannelSummary:
    name: str
    minimum: float
    maximum: float
    storm_rms: float
    quiet_rms: float

    @property
    def storm_contrast(self) -> float:
        """Storm-to-quiet RMS ratio (about the channel median)."""
        if self.quiet_rms <= 0.0:
            return float("inf")
        return self.storm_rms / self.quiet_rms


@dataclass(frozen=True)
class AppendixResult:
    summaries: Dict[str, ChannelSummary]

    def in_band(self, name: str, slack: float = 0.15) -> bool:
        low, high = EXPECTED_BANDS[name]
        span = high - low
        s = self.summaries[name]
        return (
            s.minimum >= low - slack * span and s.maximum <= high + slack * span
        )


def run(seed: int = 2021, samples_per_hour: int = 12) -> AppendixResult:
    """Generate and summarise every appendix channel."""
    generator = JulyTimeSeriesGenerator(
        samples_per_hour=samples_per_hour, seed=seed
    )
    summaries: Dict[str, ChannelSummary] = {}
    for name, (hours, values) in generator.appendix_channels().items():
        mask = in_storm(hours)
        centred = values - float(np.median(values))
        storm_rms = float(np.sqrt(np.mean(centred[mask] ** 2)))
        quiet_rms = float(np.sqrt(np.mean(centred[~mask] ** 2)))
        summaries[name] = ChannelSummary(
            name=name,
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
            storm_rms=storm_rms,
            quiet_rms=quiet_rms,
        )
    return AppendixResult(summaries=summaries)
