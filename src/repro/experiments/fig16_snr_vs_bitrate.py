"""Fig. 16: uplink SNR vs bitrate for EcoCapsule, PAB and U2B.

Anchors: EcoCapsule's SNR drops rapidly to 3 dB past 13 kbps; PAB is
limited to ~3 kbps; U2B overtakes EcoCapsule above ~9 kbps thanks to
its wider band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..baselines import crossover_bitrate, pab_snr_model, u2b_snr_model
from ..link import SnrBitrateModel


@dataclass(frozen=True)
class Fig16Result:
    curves: Dict[str, List[Tuple[float, float]]]  # label -> (bitrate, snr dB)
    ecocapsule_knee: float  # bitrate where SNR hits 3 dB
    pab_knee: float
    u2b_crossover: float  # bitrate where U2B overtakes EcoCapsule


def run(bitrates_kbps: List[float] = None, seed: int = 0) -> Fig16Result:
    """Sweep 1-15 kbps as in the figure.

    The SNR models are fully deterministic; ``seed`` is accepted (and
    recorded in run manifests) for interface uniformity.
    """
    if bitrates_kbps is None:
        bitrates_kbps = [1, 2, 4, 6, 8, 9, 10, 12, 13, 14, 15]
    eco = SnrBitrateModel()
    pab = pab_snr_model()
    u2b = u2b_snr_model()
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for label, model in (("EcoCapsule", eco), ("PAB", pab), ("U2B", u2b)):
        curves[label] = [
            (k * 1e3, model.snr_db(k * 1e3))
            for k in bitrates_kbps
            if k * 1e3 < model.band_limit
        ]
    return Fig16Result(
        curves=curves,
        ecocapsule_knee=eco.max_bitrate(min_snr_db=3.0),
        pab_knee=pab.max_bitrate(min_snr_db=3.0),
        u2b_crossover=crossover_bitrate(eco, u2b),
    )
