"""Fig. 4: relative P/S amplitudes vs incident angle, with critical angles.

Sweeps the PLA-prism-on-concrete boundary over incident angles and
reports the two mode amplitudes plus the first/second critical angles.
The paper's anchors: CA1 ~ 34 deg, CA2 ~ 73 deg, with only the S-wave
inside the window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..acoustics import refract, s_only_window
from ..materials import PLA, get_concrete


@dataclass(frozen=True)
class ModeAmplitudeRow:
    """One sweep point of the Fig. 4 curve."""

    incident_deg: float
    p_amplitude: float
    s_amplitude: float
    reflected_energy: float


@dataclass(frozen=True)
class Fig04Result:
    rows: List[ModeAmplitudeRow]
    first_critical_deg: float
    second_critical_deg: float

    def dominant_mode(self, incident_deg: float) -> str:
        """'p', 's' or 'none' at the sampled angle nearest ``incident_deg``."""
        row = min(self.rows, key=lambda r: abs(r.incident_deg - incident_deg))
        if row.p_amplitude < 1e-6 and row.s_amplitude < 1e-6:
            return "none"
        return "p" if row.p_amplitude >= row.s_amplitude else "s"


def run(
    concrete_name: str = "NC", step_deg: float = 1.0, seed: int = 0
) -> Fig04Result:
    """Reproduce the Fig. 4 sweep for ``concrete_name``.

    The sweep is fully deterministic; ``seed`` is accepted (and recorded
    in run manifests) so every experiment exposes the seeded interface.
    """
    concrete = get_concrete(concrete_name).medium
    low, high = s_only_window(PLA, concrete)
    rows: List[ModeAmplitudeRow] = []
    angle = 0.0
    while angle <= 80.0 + 1e-9:
        result = refract(PLA, concrete, math.radians(angle))
        rows.append(
            ModeAmplitudeRow(
                incident_deg=angle,
                p_amplitude=result.p_amplitude,
                s_amplitude=result.s_amplitude,
                reflected_energy=result.reflected_energy,
            )
        )
        angle += step_deg
    return Fig04Result(
        rows=rows,
        first_critical_deg=math.degrees(low),
        second_critical_deg=math.degrees(high),
    )
