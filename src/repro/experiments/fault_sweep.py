"""Session robustness vs fault intensity (extension experiment).

The paper's 17-month pilot survives a hostile physical world the clean
simulators never exercise.  This experiment quantifies that margin: a
moderate :class:`~repro.faults.FaultPlan` (bit errors, lost replies,
brownouts, reader dropouts, slot jitter, stuck sensors) is scaled from
0x to beyond nominal, and a full wall session runs at each intensity.
The output traces how read completeness, retry load and degradation
evolve as the channel worsens -- the zero-intensity point runs the
exact clean code path, anchoring the sweep to the ideal-world results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..acoustics import StructureGeometry
from ..errors import ProtocolError
from ..faults import FaultPlan
from ..link import PlacedNode, PowerUpLink, WallSession
from ..materials import get_concrete
from ..node import EcoCapsule, Environment

#: Nominal (intensity 1.0) fault rates: a plausibly bad day on the
#: footbridge, not a catastrophic one.
DEFAULT_PLAN: Dict[str, float] = {
    "downlink_ber": 0.002,
    "uplink_ber": 0.002,
    "reply_loss_rate": 0.05,
    "brownout_rate": 0.03,
    "reader_dropout_rate": 0.10,
    "slot_jitter_rate": 0.02,
    "stuck_sensor_rate": 0.05,
}


@dataclass(frozen=True)
class FaultSweepPoint:
    """One wall session at one fault intensity."""

    intensity: float
    coverage: float  # charged fraction of the population
    read_fraction: float  # fraction of all nodes fully read
    reports: int  # total sensor reports collected
    retries: int  # reader-side retransmissions
    rounds_used: int
    charge_attempts: int
    degraded: bool
    brownouts: int
    replies_dropped: int
    elapsed_s: float


@dataclass(frozen=True)
class FaultSweepResult:
    """The full intensity sweep plus the nominal plan it scaled."""

    points: List[FaultSweepPoint]
    plan: Dict[str, Any]

    def point_at(self, intensity: float) -> FaultSweepPoint:
        for point in self.points:
            if abs(point.intensity - intensity) < 1e-9:
                return point
        raise KeyError(f"intensity {intensity} not in the sweep")

    @property
    def clean_read_fraction(self) -> float:
        """Read completeness of the zero-fault anchor point."""
        return self.point_at(0.0).read_fraction


def _build_wall(
    n_nodes: int, wall_length: float, tx_voltage: float, seed: int
) -> tuple:
    """A fresh wall + population, every node inside the charge envelope."""
    concrete = get_concrete("UHPC")
    wall = StructureGeometry(
        "fault-sweep wall",
        length=wall_length,
        thickness=0.20,
        medium=concrete.medium,
    )
    budget = PowerUpLink(wall)
    reach = min(wall_length / 2.0, 0.85 * budget.max_range(tx_voltage))
    if reach <= 0.3:
        raise ProtocolError(
            f"tx voltage {tx_voltage} V cannot charge past 0.3 m"
        )
    rng = random.Random(seed)
    placed: List[PlacedNode] = []
    for node_id in range(1, n_nodes + 1):
        env = Environment(
            temperature=rng.uniform(18.0, 32.0),
            humidity=rng.uniform(55.0, 90.0),
            strain=rng.uniform(-200.0, 300.0),
        )
        placed.append(
            PlacedNode(
                capsule=EcoCapsule(
                    node_id=node_id, environment=env, seed=seed + node_id
                ),
                distance=rng.uniform(0.3, reach),
            )
        )
    return budget, placed


def run(
    intensities: Optional[List[float]] = None,
    nodes: int = 8,
    wall_length: float = 8.0,
    tx_voltage: float = 250.0,
    fault_plan: Optional[Dict[str, Any]] = None,
    max_rounds: int = 12,
    max_retries: int = 2,
    initial_q: int = 3,
    seed: int = 33,
) -> FaultSweepResult:
    """Sweep wall-session health over a scaled fault plan.

    Args:
        intensities: Multipliers applied to the nominal plan; 0.0 runs
            the clean code path.
        nodes: Population size, all placed within the charge envelope.
        wall_length: Structure length (m).
        tx_voltage: Reader drive voltage (V).
        fault_plan: Nominal rates as a dict (``FaultPlan`` fields);
            None uses :data:`DEFAULT_PLAN`.  The plan seed defaults to
            ``seed`` so the whole sweep is one deterministic artifact.
        max_rounds: Inventory round budget per session.
        max_retries: Reader retransmissions per protocol command.
        initial_q: TDMA starting Q (2^Q slots in the first round).
        seed: Master seed (population, placement, protocol and faults).
    """
    if intensities is None:
        intensities = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0]
    rates = dict(DEFAULT_PLAN if fault_plan is None else fault_plan)
    rates.pop("schema", None)
    rates.setdefault("seed", seed)
    base_plan = FaultPlan.from_dict(rates)

    points: List[FaultSweepPoint] = []
    for intensity in intensities:
        # A fresh, identically-seeded wall per point: every intensity
        # perturbs the same deployment, so differences are pure fault
        # response.
        budget, placed = _build_wall(nodes, wall_length, tx_voltage, seed)
        plan = base_plan.scaled(intensity)
        session = WallSession(
            budget=budget,
            nodes=placed,
            tx_voltage=tx_voltage,
            initial_q=initial_q,
            seed=seed,
            faults=plan if plan.active else None,
            max_retries=max_retries,
        )
        result = session.run(max_rounds=max_rounds)
        points.append(
            FaultSweepPoint(
                intensity=intensity,
                coverage=result.coverage,
                read_fraction=len(result.reports) / nodes,
                reports=sum(len(r) for r in result.reports.values()),
                retries=result.retries,
                rounds_used=result.rounds_used,
                charge_attempts=result.charge_attempts,
                degraded=result.degraded,
                brownouts=result.fault_counts.get("brownouts", 0),
                replies_dropped=result.fault_counts.get("replies_dropped", 0),
                elapsed_s=result.elapsed,
            )
        )
    return FaultSweepResult(points=points, plan=base_plan.to_dict())
