"""Fig. 18: uplink SNR CDF vs node position (top / middle / bottom).

The paper glues the node block near the wall's top margin, middle, and
bottom margin and finds the margin positions achieve ~11 and ~8 dB
median SNR versus ~7 dB in the middle: "S-waves are reflected at the
margins, which benefits the nodes to harvest more power".  It also
warns the reflection is "a double-edged sword" -- the superposition can
turn destructive.

The physics: a free surface reflects the S-wave with unit displacement
coefficient, so the field near a margin is a standing wave whose
amplitude factor is ``|1 + exp(2 j k d)| = 2 |cos(k d)|`` at distance
``d`` from the face -- up to 2x (+6 dB) at an antinode, and a null at a
destructive spacing.  Sampling the mounting distance over a wavelength
of jitter produces the margin CDFs: higher median than the middle, but
with a long low tail (the destructive cases).  The middle of a thick
wall is many wavelengths from both faces and sees only mild incoherent
fading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..materials import get_concrete

#: Baseline link SNR (dB) for a middle-mounted node at the tested
#: distance, anchoring the middle CDF to the paper's ~7 dB median.
MIDDLE_BASELINE_DB = 7.0


@dataclass(frozen=True)
class Fig18Result:
    snr_samples_db: Dict[str, List[float]]

    def median(self, position: str) -> float:
        return float(np.median(self.snr_samples_db[position]))

    def cdf(self, position: str) -> List[Tuple[float, float]]:
        values = sorted(self.snr_samples_db[position])
        n = len(values)
        return [(v, (i + 1) / n) for i, v in enumerate(values)]

    def low_tail_fraction(self, position: str, threshold_db: float) -> float:
        """Fraction of trials below ``threshold_db`` (destructive cases)."""
        values = self.snr_samples_db[position]
        return sum(1 for v in values if v < threshold_db) / len(values)


def run(
    trials: int = 200,
    concrete_name: str = "NC",
    frequency: float = 230e3,
    seed: int = 3,
) -> Fig18Result:
    """Sample the SNR distribution for the three mounting positions.

    Margin positions ("top", "bottom") sit within a wavelength of a free
    face; the standing-wave factor ``2 |cos(k d)|`` is sampled over
    mounting jitter.  The top mounting in the paper's setup couples
    slightly better than the bottom (11 vs 8 dB medians); we reflect
    that with a small per-mount coupling offset.
    """
    medium = get_concrete(concrete_name).medium
    wavelength = medium.cs / frequency
    k = 2.0 * math.pi / wavelength
    rng = np.random.default_rng(seed)

    # (nominal distance to the face in wavelengths, coupling offset dB)
    mounts = {
        "top": (0.25, 1.5),
        "bottom": (0.40, -1.0),
        "middle": (None, 0.0),
    }

    samples: Dict[str, List[float]] = {}
    for label, (face_distance_wl, offset_db) in mounts.items():
        values: List[float] = []
        for _ in range(trials):
            fading_db = float(rng.normal(0.0, 1.0))
            if face_distance_wl is None:
                # Middle: incoherent multipath only -- mild fading.
                snr = MIDDLE_BASELINE_DB + fading_db
            else:
                d = abs(
                    face_distance_wl * wavelength
                    + rng.normal(0.0, 0.35 * wavelength)
                )
                factor = abs(2.0 * math.cos(k * d))
                # The direct field is still present under the standing
                # wave; floor the factor just above a perfect null.
                factor = max(factor, 0.1)
                snr = (
                    MIDDLE_BASELINE_DB
                    + offset_db
                    + 20.0 * math.log10(factor / 1.0)
                    + fading_db
                )
            values.append(snr)
        samples[label] = values
    return Fig18Result(snr_samples_db=samples)
