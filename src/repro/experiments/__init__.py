"""One module per paper table/figure; used by benchmarks/ and the docs.

Each module exposes ``run(...)`` returning a structured result whose
fields carry the same rows/series the paper reports.  See DESIGN.md's
per-experiment index for the figure-to-module map.
"""

from . import (
    appendix_sensors,
    campaign_pilot,
    downlink_reliability,
    fault_sweep,
    fig04_mode_amplitudes,
    fig05_frequency_response,
    fig07_ring_effect,
    fig12_range_vs_voltage,
    fig13_power_consumption,
    fig14_cold_start,
    fig15_ber_vs_snr,
    fig16_snr_vs_bitrate,
    fig17_throughput,
    fig18_snr_vs_position,
    fig19_prism_effect,
    fig20_fsk_vs_ook,
    fig21_pilot_study,
    fig22_backscatter_waveform,
    fig24_self_interference,
    tables,
)

__all__ = [
    "appendix_sensors",
    "campaign_pilot",
    "downlink_reliability",
    "fault_sweep",
    "fig04_mode_amplitudes",
    "fig05_frequency_response",
    "fig07_ring_effect",
    "fig12_range_vs_voltage",
    "fig13_power_consumption",
    "fig14_cold_start",
    "fig15_ber_vs_snr",
    "fig16_snr_vs_bitrate",
    "fig17_throughput",
    "fig18_snr_vs_position",
    "fig19_prism_effect",
    "fig20_fsk_vs_ook",
    "fig21_pilot_study",
    "fig22_backscatter_waveform",
    "fig24_self_interference",
    "tables",
]
