"""Fig. 24: uplink spectrum -- CBW peak, two backscatter sidebands, guard.

Anchors: the received spectrum shows exactly three peaks -- the power
carrier (CBW) and the two AM sidebands of the backscatter signal at
carrier +/- BLF -- with a clean guard band separating them, which is
how the reader filters out self-interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..link import UplinkPassbandSimulator
from ..phy.modem import BackscatterModulator


@dataclass(frozen=True)
class Fig24Result:
    frequencies: np.ndarray
    psd: np.ndarray
    carrier: float
    blf: float

    def peak_frequencies(self, n_peaks: int = 3, window_hz: float = 2e3) -> List[float]:
        """The ``n_peaks`` strongest spectral peaks, greedily separated."""
        psd = self.psd.copy()
        found: List[float] = []
        df = self.frequencies[1] - self.frequencies[0]
        guard_bins = max(1, int(window_hz / df))
        for _ in range(n_peaks):
            index = int(np.argmax(psd))
            found.append(float(self.frequencies[index]))
            low = max(0, index - guard_bins)
            psd[low : index + guard_bins] = 0.0
        return sorted(found)

    def guard_band_depth_db(self) -> float:
        """How far the spectrum dips between the carrier and a sideband."""
        low = self.carrier + 0.35 * self.blf
        high = self.carrier + 0.65 * self.blf
        mask = (self.frequencies >= low) & (self.frequencies <= high)
        guard = float(np.max(self.psd[mask]))
        carrier_mask = np.abs(self.frequencies - self.carrier) < 1e3
        peak = float(np.max(self.psd[carrier_mask]))
        return 10.0 * np.log10(peak / max(guard, 1e-30))


def run(n_bits: int = 64, seed: int = 9) -> Fig24Result:
    """Capture an uplink transfer and take its spectrum."""
    modulator = BackscatterModulator(blf=20e3, bitrate=2e3)
    simulator = UplinkPassbandSimulator(modulator=modulator, seed=seed)
    rng = np.random.default_rng(seed)
    bits = list(rng.integers(0, 2, size=n_bits))
    waveform = simulator.received_waveform(bits)
    from ..phy import dsp

    freqs, psd = dsp.power_spectrum(waveform, simulator.sample_rate)
    return Fig24Result(
        frequencies=freqs,
        psd=psd,
        carrier=simulator.carrier,
        blf=modulator.blf,
    )
