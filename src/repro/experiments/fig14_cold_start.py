"""Fig. 14: cold-start time vs activation voltage.

Anchors: 0.5 V is the minimum activation voltage, where the cold start
takes ~55 ms; the time collapses to ~4.4 ms at 2 V and above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..circuits import EnergyHarvester
from ..errors import PowerError


@dataclass(frozen=True)
class Fig14Result:
    points: List[Tuple[float, float]]  # (input peak V, cold start s)
    minimum_activation_voltage: float

    def time_at(self, voltage: float) -> float:
        for v, t in self.points:
            if abs(v - voltage) < 1e-9:
                return t
        raise KeyError(f"voltage {voltage} not in the sweep")


def run(voltages: List[float] = None, seed: int = 0) -> Fig14Result:
    """Sweep the activation voltage 0.5-5 V as in the figure.

    The harvester model is fully deterministic; ``seed`` is accepted
    (and recorded in run manifests) for interface uniformity.
    """
    if voltages is None:
        voltages = [0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0]
    harvester = EnergyHarvester()
    points: List[Tuple[float, float]] = []
    for v in voltages:
        try:
            points.append((v, harvester.cold_start_time(v)))
        except PowerError:
            continue  # below the activation floor: no cold start at all
    return Fig14Result(
        points=points,
        minimum_activation_voltage=harvester.activation_voltage,
    )
