"""Harvest-aware duty cycling: running a node on a weak field.

A node at the edge of the power-up range harvests barely more than (or
less than) its active draw.  The standard battery-free discipline is
duty cycling: sleep while the reservoir charges, wake to backscatter a
burst, repeat.  This module models that energy loop on top of the
harvester and MCU models, answering the deployment questions the paper's
range experiments raise implicitly:

* can a node at field strength V sustain continuous operation?
* if not, what duty cycle -- and therefore what report interval -- is
  sustainable?
* how long does one sensor report's worth of energy take to accumulate?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..circuits import EnergyHarvester, McuPowerModel
from ..errors import PowerError


@dataclass(frozen=True)
class DutyCyclePlan:
    """A sustainable operating plan for one field strength."""

    field_voltage: float
    harvested_power: float  # W
    active_power: float  # W
    duty_cycle: float  # fraction of time active (1.0 = continuous)
    report_interval: float  # s between completed sensor reports
    continuous: bool

    @property
    def reports_per_hour(self) -> float:
        if self.report_interval <= 0.0:
            raise PowerError("degenerate report interval")
        return 3600.0 / self.report_interval


@dataclass
class EnergyScheduler:
    """Plans duty cycles from the harvest/consumption balance.

    Args:
        harvester: The node's harvesting chain.
        mcu: The node's power model.
        bitrate: Uplink bitrate during active bursts (bit/s).
        report_bits: Air bits per sensor report exchange (downlink
            command + uplink report + margins).
        sleep_overhead: Fraction of harvested power lost to sleep draw
            and regulator quiescent current while recharging.
    """

    harvester: EnergyHarvester = field(default_factory=EnergyHarvester)
    mcu: McuPowerModel = field(default_factory=McuPowerModel)
    bitrate: float = 1e3
    report_bits: int = 100
    sleep_overhead: float = 0.10

    def __post_init__(self) -> None:
        if self.bitrate <= 0.0:
            raise PowerError("bitrate must be positive")
        if self.report_bits <= 0:
            raise PowerError("report size must be positive")
        if not 0.0 <= self.sleep_overhead < 1.0:
            raise PowerError("sleep overhead must be in [0, 1)")

    def report_duration(self) -> float:
        """Active time (s) to complete one report exchange."""
        return self.report_bits / self.bitrate

    def report_energy(self) -> float:
        """Energy (J) one report exchange costs."""
        return self.mcu.energy("active", self.report_duration(), self.bitrate)

    def plan(self, field_voltage: float) -> DutyCyclePlan:
        """The sustainable plan at ``field_voltage``.

        Raises:
            PowerError: when the field cannot even power the node up.
        """
        if not self.harvester.can_power_up(field_voltage):
            raise PowerError(
                f"field of {field_voltage:.2f} V is below the activation "
                f"threshold {self.harvester.activation_voltage} V"
            )
        harvested = self.harvester.harvested_power(field_voltage)
        active = self.mcu.power("active", self.bitrate)
        usable = harvested * (1.0 - self.sleep_overhead)

        if usable >= active:
            # Continuous operation: reports stream back-to-back.
            return DutyCyclePlan(
                field_voltage=field_voltage,
                harvested_power=harvested,
                active_power=active,
                duty_cycle=1.0,
                report_interval=self.report_duration(),
                continuous=True,
            )

        # Duty-cycled: the node banks energy at (usable - sleep draw) and
        # spends it at (active - usable) while transmitting.
        net_recharge = usable - self.mcu.power("sleep")
        if net_recharge <= 0.0:
            raise PowerError(
                f"field of {field_voltage:.2f} V cannot even cover the "
                "sleep draw; the node will brown out"
            )
        burst = self.report_duration()
        deficit = (active - usable) * burst
        recharge_time = deficit / net_recharge
        interval = burst + recharge_time
        return DutyCyclePlan(
            field_voltage=field_voltage,
            harvested_power=harvested,
            active_power=active,
            duty_cycle=burst / interval,
            report_interval=interval,
            continuous=False,
        )

    def minimum_continuous_field(
        self, low: float = 0.5, high: float = 10.0, tolerance: float = 1e-3
    ) -> float:
        """Lowest field voltage (V) sustaining continuous operation."""
        def continuous(v: float) -> bool:
            try:
                return self.plan(v).continuous
            except PowerError:
                return False

        if continuous(low):
            return low
        if not continuous(high):
            raise PowerError(
                f"even {high} V cannot sustain continuous operation"
            )
        while high - low > tolerance:
            mid = 0.5 * (low + high)
            if continuous(mid):
                high = mid
            else:
                low = mid
        return high

    def sweep(self, voltages: List[float]) -> List[Tuple[float, Optional[DutyCyclePlan]]]:
        """Plan at each voltage; None where the node cannot run at all."""
        plans: List[Tuple[float, Optional[DutyCyclePlan]]] = []
        for v in voltages:
            try:
                plans.append((v, self.plan(v)))
            except PowerError:
                plans.append((v, None))
        return plans
