"""The EcoCapsule node: shell + harvester + MCU + sensors + protocol.

Composes the substrates into the battery-free backscatter node of
Sec. 4: the spherical shell protects a motherboard carrying the energy
harvester, an MSP430-class MCU, the impedance switch and the sensor
suite.  The capsule exposes:

* an energy model (powered/unpowered given the incident field, cold
  start latency);
* the protocol state machine (Gen2-style tag logic);
* a sensing interface wired to a ground-truth environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuits import EnergyHarvester, McuPowerModel, SensorSuite
from ..errors import PowerError
from ..protocol import NodeStateMachine
from .shell import SphericalShell, resin_shell


@dataclass
class Environment:
    """Ground truth at a capsule's location inside the concrete."""

    temperature: float = 23.0  # C
    humidity: float = 65.0  # %RH
    strain: float = 0.0  # microstrain
    acceleration: float = 0.0  # m/s^2

    def as_dict(self) -> Dict[str, float]:
        return {
            "temperature": self.temperature,
            "humidity": self.humidity,
            "strain": self.strain,
            "acceleration": self.acceleration,
        }


@dataclass
class EcoCapsule:
    """One implanted node.

    Args:
        node_id: 8-bit identity used in sensor reports.
        shell: Mechanical shell (defaults to the resin prototype).
        harvester: Energy-harvesting chain.
        mcu: Power model.
        sensors: Sensor payload.
        environment: Ground truth the sensors sample.
        seed: RNG seed for protocol randomness.
    """

    node_id: int
    shell: SphericalShell = field(default_factory=resin_shell)
    harvester: EnergyHarvester = field(default_factory=EnergyHarvester)
    mcu: McuPowerModel = field(default_factory=McuPowerModel)
    sensors: SensorSuite = field(default_factory=SensorSuite)
    environment: Environment = field(default_factory=Environment)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.protocol = NodeStateMachine(
            node_id=self.node_id,
            read_sensor=self.read_sensor,
            seed=self.seed,
        )
        self._input_peak = 0.0

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------

    @property
    def input_peak(self) -> float:
        """Current CBW peak voltage at the node's PZT terminals (V)."""
        return self._input_peak

    def apply_field(self, input_peak: float) -> bool:
        """Expose the node to a CBW of ``input_peak`` volts at its PZT.

        Returns True when the node is (or becomes) powered.  Dropping
        below the activation threshold power-cycles the protocol state,
        as a real passive tag forgets its state when the field dies.
        """
        if input_peak < 0.0:
            raise PowerError("input peak cannot be negative")
        was_powered = self.is_powered
        self._input_peak = input_peak
        if was_powered and not self.is_powered:
            self.protocol.power_cycle()
        return self.is_powered

    @property
    def is_powered(self) -> bool:
        """True when the harvested field can run the MCU."""
        return self.harvester.can_power_up(self._input_peak)

    def cold_start_time(self) -> float:
        """Cold start latency (s) at the current field strength."""
        return self.harvester.cold_start_time(self._input_peak)

    def power_budget_ok(self, bitrate: float) -> bool:
        """True when harvested power covers active operation at ``bitrate``."""
        available = self.harvester.harvested_power(self._input_peak)
        return available >= self.mcu.power("active", bitrate)

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------

    def read_sensor(self, channel: str) -> float:
        """One quantised reading of ``channel`` against the environment.

        Raises:
            PowerError: when the node is not powered.
        """
        if not self.is_powered:
            raise PowerError(
                f"node {self.node_id} is unpowered; cannot read {channel!r}"
            )
        truth = self.environment.as_dict()
        if channel == "temperature":
            return self.sensors.temperature.read(truth["temperature"])
        if channel == "humidity":
            return self.sensors.humidity.read(truth["humidity"])
        if channel == "strain":
            return self.sensors.strain.read(truth["strain"])
        if channel == "acceleration":
            return self.sensors.acceleration.read(truth["acceleration"])
        raise PowerError(f"unknown sensor channel {channel!r}")

    # ------------------------------------------------------------------
    # Protocol passthrough
    # ------------------------------------------------------------------

    def handle(self, command):
        """Process a downlink command (requires power)."""
        if not self.is_powered:
            raise PowerError(f"node {self.node_id} is unpowered")
        return self.protocol.handle(command)
