"""Stressless spherical shell mechanics (paper Sec. 4.1, Fig. 8, Eqn. 4).

The EcoCapsule is a ping-pong-sized hollow sphere.  The surrounding
concrete loads it with the pressure difference

    dP = rho g h - P_air                                    -- Eqn. 4

between the hydrostatic concrete column of height h and the internal
air.  The shell survives when both criteria hold:

* membrane stress: thin-sphere stress sigma = dP r / (2 t) stays below
  the material's allowable strength;
* deformation: the radial displacement
  delta = dP r^2 (1 - nu) / (2 E t) stays below the tolerated budget
  (the paper accepts 5 % deformation; its Solidworks FEA shows maximum
  resultant displacements of ~0.158 mm, Fig. 8c).

With the SLA resin of the prototype (65 MPa, 2.2 GPa) these yield
dP_max ~ 4.3 MPa and a maximum building height of ~195 m; alloy steel
lifts those to ~115 MPa and ~4985 m, the paper's quoted limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError
from ..materials import (
    ALLOY_STEEL,
    ALLOY_STEEL_YIELD_STRENGTH,
    RESIN,
    RESIN_TENSILE_STRENGTH,
    Medium,
)
from ..units import ATMOSPHERIC_PRESSURE, GRAVITY

#: Displacement budget matching the paper's FEA (Fig. 8c URES ~ 0.158 mm).
DEFAULT_DISPLACEMENT_BUDGET = 0.161e-3

#: Default ordinary-concrete density for the Eqn. 4 height conversion.
DEFAULT_CONCRETE_DENSITY = 2300.0


def pressure_difference(
    height: float,
    concrete_density: float = DEFAULT_CONCRETE_DENSITY,
) -> float:
    """dP (Pa) on a capsule at the bottom of ``height`` metres of concrete.

    Paper Eqn. 4: ``dP = rho g h - P_air``.  Negative values (shallow
    implantation where atmosphere exceeds the column) clamp to zero.
    """
    if height < 0.0:
        raise DesignError(f"height cannot be negative, got {height}")
    if concrete_density <= 0.0:
        raise DesignError("concrete density must be positive")
    return max(0.0, concrete_density * GRAVITY * height - ATMOSPHERIC_PRESSURE)


def max_building_height(
    max_pressure: float,
    concrete_density: float = DEFAULT_CONCRETE_DENSITY,
) -> float:
    """Tallest building (m) whose base pressure stays within ``max_pressure``.

    Inverts Eqn. 4: ``h = (dP_max + P_air) / (rho g)``.
    """
    if max_pressure <= 0.0:
        raise DesignError("max pressure must be positive")
    if concrete_density <= 0.0:
        raise DesignError("concrete density must be positive")
    return (max_pressure + ATMOSPHERIC_PRESSURE) / (concrete_density * GRAVITY)


@dataclass(frozen=True)
class SphericalShell:
    """A thin-walled spherical capsule shell.

    Attributes:
        outer_diameter: Sphere diameter (m); the prototype is 45 mm.
        thickness: Wall thickness (m); the prototype is 2 mm.
        material: Shell medium (needs Young's modulus and Poisson ratio).
        allowable_stress: Material strength budget (Pa).
        displacement_budget: Radial deformation budget (m).
    """

    outer_diameter: float = 0.045
    thickness: float = 0.002
    material: Medium = RESIN
    allowable_stress: float = RESIN_TENSILE_STRENGTH
    displacement_budget: float = DEFAULT_DISPLACEMENT_BUDGET

    def __post_init__(self) -> None:
        if self.outer_diameter <= 0.0 or self.thickness <= 0.0:
            raise DesignError("shell dimensions must be positive")
        if self.thickness >= self.outer_diameter / 2.0:
            raise DesignError("shell is solid: thickness exceeds the radius")
        if self.material.youngs_modulus is None or self.material.poisson_ratio is None:
            raise DesignError(
                f"shell material {self.material.name} needs elastic moduli"
            )
        if self.allowable_stress <= 0.0 or self.displacement_budget <= 0.0:
            raise DesignError("strength and displacement budgets must be positive")

    @property
    def radius(self) -> float:
        """Radius used by the thin-shell formulas (m).

        The outer radius: the concrete loads the outer surface, and using
        it keeps the estimate conservative (and matches the paper's FEA
        anchors for both materials).
        """
        return self.outer_diameter / 2.0

    def membrane_stress(self, pressure: float) -> float:
        """Thin-sphere membrane stress sigma = dP r / (2 t) (Pa)."""
        if pressure < 0.0:
            raise DesignError("pressure cannot be negative")
        return pressure * self.radius / (2.0 * self.thickness)

    def radial_displacement(self, pressure: float) -> float:
        """Elastic radial displacement delta = dP r^2 (1 - nu) / (2 E t) (m)."""
        if pressure < 0.0:
            raise DesignError("pressure cannot be negative")
        r = self.radius
        e = self.material.youngs_modulus
        nu = self.material.poisson_ratio
        return pressure * r * r * (1.0 - nu) / (2.0 * e * self.thickness)

    @property
    def stress_limited_pressure(self) -> float:
        """dP (Pa) at which the membrane stress reaches the allowable."""
        return self.allowable_stress * 2.0 * self.thickness / self.radius

    @property
    def displacement_limited_pressure(self) -> float:
        """dP (Pa) at which the radial displacement exhausts the budget."""
        r = self.radius
        e = self.material.youngs_modulus
        nu = self.material.poisson_ratio
        return self.displacement_budget * 2.0 * e * self.thickness / (
            r * r * (1.0 - nu)
        )

    @property
    def max_pressure(self) -> float:
        """dP_max (Pa): the binding criterion of the two."""
        return min(self.stress_limited_pressure, self.displacement_limited_pressure)

    def max_height(self, concrete_density: float = DEFAULT_CONCRETE_DENSITY) -> float:
        """Tallest implantation (m) the shell survives (paper: ~195 m resin)."""
        return max_building_height(self.max_pressure, concrete_density)

    def survives(self, height: float, concrete_density: float = DEFAULT_CONCRETE_DENSITY) -> bool:
        """True when a capsule at the base of ``height`` m of concrete holds."""
        return pressure_difference(height, concrete_density) <= self.max_pressure

    def utilisation(self, height: float, concrete_density: float = DEFAULT_CONCRETE_DENSITY) -> float:
        """Fraction of dP_max consumed at ``height`` (1.0 = at the limit)."""
        return pressure_difference(height, concrete_density) / self.max_pressure


def resin_shell() -> SphericalShell:
    """The prototype shell: 45 mm SLA resin sphere, 2 mm wall."""
    return SphericalShell()


def steel_shell() -> SphericalShell:
    """The high-rise variant: same geometry in alloy steel.

    The steel shell is stress-limited (its stiffness makes deformation a
    non-issue), so the displacement budget is relaxed accordingly.
    """
    return SphericalShell(
        material=ALLOY_STEEL,
        allowable_stress=ALLOY_STEEL_YIELD_STRENGTH,
        displacement_budget=5e-3,
    )
