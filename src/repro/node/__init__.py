"""EcoCapsule node: shell mechanics and the composed battery-free node."""

from .capsule import EcoCapsule, Environment
from .scheduler import DutyCyclePlan, EnergyScheduler
from .shell import (
    DEFAULT_CONCRETE_DENSITY,
    DEFAULT_DISPLACEMENT_BUDGET,
    SphericalShell,
    max_building_height,
    pressure_difference,
    resin_shell,
    steel_shell,
)

__all__ = [
    "EcoCapsule",
    "Environment",
    "DutyCyclePlan",
    "EnergyScheduler",
    "DEFAULT_CONCRETE_DENSITY",
    "DEFAULT_DISPLACEMENT_BUDGET",
    "SphericalShell",
    "max_building_height",
    "pressure_difference",
    "resin_shell",
    "steel_shell",
]
