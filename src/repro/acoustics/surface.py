"""Surface (Rayleigh) waves: the reader's main self-interference source.

Sec. 3.1 sets surface waves aside for *node* communication (EcoCapsules
sit deep in the concrete), but they matter at the *reader*: Sec. 3.4
notes that "the S-reflections and the surface waves leaked from the
transmitting PZT are 10x stronger than the backscattered signals" at
the receiving PZT.  The evaluation also exploits their behaviour --
"the surface waves are almost filtered out because of the sharp edges
and corners" of the test blocks (Sec. 3.3).

This module models what those two observations need:

* the Rayleigh velocity (the classic Bergmann/Viktorov approximation
  from the Poisson ratio: C_R ~ Cs * (0.87 + 1.12 nu) / (1 + nu));
* propagation along a surface path with exponential decay in depth
  (surface waves live within ~one wavelength of the face);
* edge scattering: each sharp edge/corner on the path strips most of
  the remaining surface-wave energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import AcousticsError
from ..materials import Medium


def rayleigh_velocity(medium: Medium) -> float:
    """Rayleigh surface-wave velocity (m/s) of a solid medium.

    Uses the standard rational approximation
    ``C_R = Cs (0.87 + 1.12 nu) / (1 + nu)``; when the medium carries no
    Poisson ratio, nu = 0.25 (a typical solid) is assumed.
    """
    if medium.is_fluid:
        raise AcousticsError(f"{medium.name} is a fluid: no Rayleigh waves")
    nu = medium.poisson_ratio if medium.poisson_ratio is not None else 0.25
    return medium.cs * (0.87 + 1.12 * nu) / (1.0 + nu)


def penetration_depth(medium: Medium, frequency: float) -> float:
    """Depth (m) at which the Rayleigh amplitude falls to 1/e.

    Approximately one Rayleigh wavelength; nodes deeper than a couple of
    these are invisible to surface waves -- the reason the paper can
    ignore them for in-concrete links.
    """
    if frequency <= 0.0:
        raise AcousticsError("frequency must be positive")
    return rayleigh_velocity(medium) / frequency


@dataclass(frozen=True)
class SurfaceWavePath:
    """A surface propagation path between two points on the same face.

    Attributes:
        medium: The host solid.
        length: Path length along the surface (m).
        edges_crossed: Sharp edges/corners on the path; each one strips
            ``edge_transmission`` of the surviving amplitude (the test
            blocks' "sharp edges and corners" filtering).
        edge_transmission: Amplitude fraction surviving one edge.
    """

    medium: Medium
    length: float
    edges_crossed: int = 0
    edge_transmission: float = 0.15

    def __post_init__(self) -> None:
        if self.length < 0.0:
            raise AcousticsError("path length cannot be negative")
        if self.edges_crossed < 0:
            raise AcousticsError("edge count cannot be negative")
        if not 0.0 <= self.edge_transmission <= 1.0:
            raise AcousticsError("edge transmission must be in [0, 1]")

    def amplitude_gain(self, frequency: float, reference: float = 0.05) -> float:
        """Amplitude ratio at the path end relative to ``reference`` m.

        Rayleigh waves spread cylindrically along the surface
        (amplitude ~ 1/sqrt(r)) and suffer the medium's absorption plus
        the per-edge stripping.
        """
        if frequency <= 0.0:
            raise AcousticsError("frequency must be positive")
        if reference <= 0.0:
            raise AcousticsError("reference distance must be positive")
        effective = max(self.length, reference)
        spreading = math.sqrt(reference / effective)
        absorption_db = self.medium.attenuation_db(frequency, self.length)
        absorption = 10.0 ** (-absorption_db / 20.0)
        edges = self.edge_transmission**self.edges_crossed
        return spreading * absorption * edges

    def delay(self, frequency: float = 230e3) -> float:
        """Propagation delay (s) along the surface path."""
        return self.length / rayleigh_velocity(self.medium)


def leakage_ratio(
    medium: Medium,
    tx_rx_separation: float,
    backscatter_gain: float,
    frequency: float = 230e3,
    coupling: float = 0.5,
) -> float:
    """Surface-leakage amplitude over backscatter amplitude at the RX PZT.

    The Sec. 3.4 observation quantified: with the reader's TX and RX
    ~20 cm apart on the same face, the direct surface wave (plus the
    S-reflection clutter it stands in for) dwarfs the round-trip
    backscatter.  ``coupling`` is the fraction of TX amplitude that
    launches as a surface wave.

    Returns the linear amplitude ratio (paper: ~10x).
    """
    if backscatter_gain <= 0.0:
        raise AcousticsError("backscatter gain must be positive")
    if not 0.0 <= coupling <= 1.0:
        raise AcousticsError("coupling must be in [0, 1]")
    path = SurfaceWavePath(medium=medium, length=tx_rx_separation)
    leak = coupling * path.amplitude_gain(frequency)
    return leak / backscatter_gain
