"""Image-source multipath model for walls, slabs and columns.

The S-reflections of Fig. 3d are multipath: the injected S-wave bounces
between the two parallel faces of the structure (reflection coefficient
from paper Eqn. 1 is ~99.98 % at concrete/air), filling the interior.
The classic image-source construction turns each bounce sequence into a
straight ray from a mirrored source, giving the channel's discrete
impulse response: a set of (delay, amplitude) arrivals.

The model is 2-D in the structure's cross-section (lateral distance x
along the wall, depth y across the thickness), which captures the two
behaviours the paper measures:

* narrow structures guide energy (more images arrive within the
  attenuation horizon -> longer range, Fig. 12);
* nodes near a free margin receive stronger fields (their images are
  nearby -> higher SNR, Fig. 18), at the price of occasional destructive
  superposition (the paper's "double-edged sword" remark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import AcousticsError
from ..materials import AIR, Medium
from ..units import TWO_PI
from .boundary import reflection_coefficient


@dataclass(frozen=True)
class StructureGeometry:
    """Cross-section of a monitored structure.

    Attributes:
        name: Label (e.g. 'S3 common wall').
        length: Extent along the propagation direction (m); rays are not
            reflected at the far end within this model, but the length
            caps the usable node distance (Fig. 12's S1/S2 curves stop
            at the structure length).
        thickness: Distance between the two guiding faces (m).
        medium: The concrete medium filling the structure.
    """

    name: str
    length: float
    thickness: float
    medium: Medium

    def __post_init__(self) -> None:
        if self.length <= 0.0 or self.thickness <= 0.0:
            raise AcousticsError("structure dimensions must be positive")


@dataclass(frozen=True)
class Arrival:
    """One multipath arrival: a mirrored ray reaching the receiver."""

    delay: float  # s
    amplitude: float  # linear, relative to unit source at 1 reference distance
    bounces: int  # number of face reflections along the path
    path_length: float  # m


class ImageSourceModel:
    """Discrete multipath impulse response between two points in a structure.

    Coordinates: x runs along the structure (source at x=0), y across the
    thickness with the faces at y=0 and y=thickness.

    Args:
        geometry: The structure cross-section.
        frequency: Carrier frequency (Hz) for the attenuation model.
        max_bounces: Image orders to include per side.
        face_reflection: Reflection coefficient magnitude at the faces;
            defaults to the Eqn. 1 concrete/air value computed from the
            structure's medium.
        mode_retention: Fraction of S-wave amplitude staying in the S
            mode per oblique face reflection; the rest converts to P and
            surface waves and leaves the guided field.  1.0 recovers the
            lossless plane-wave picture.
    """

    def __init__(
        self,
        geometry: StructureGeometry,
        frequency: float,
        max_bounces: int = 30,
        face_reflection: float = None,
        mode_retention: float = 0.85,
    ):
        if frequency <= 0.0:
            raise AcousticsError("frequency must be positive")
        if max_bounces < 0:
            raise AcousticsError("max_bounces cannot be negative")
        self.geometry = geometry
        self.frequency = float(frequency)
        self.max_bounces = int(max_bounces)
        if face_reflection is None:
            face_reflection = abs(
                reflection_coefficient(
                    geometry.medium.impedance_s or geometry.medium.impedance_p,
                    AIR.impedance_p,
                )
            )
        if not 0.0 <= face_reflection <= 1.0:
            raise AcousticsError("face reflection must be in [0, 1]")
        if not 0.0 < mode_retention <= 1.0:
            raise AcousticsError("mode retention must be in (0, 1]")
        self.face_reflection = face_reflection
        self.mode_retention = mode_retention

    def arrivals(
        self,
        source: Tuple[float, float],
        receiver: Tuple[float, float],
        speed: float = None,
    ) -> List[Arrival]:
        """Multipath arrivals from ``source`` to ``receiver``.

        Points are (x, y) with y in [0, thickness].  ``speed`` defaults to
        the medium's S-wave velocity (the prism injects S-waves only).
        """
        thickness = self.geometry.thickness
        # Coerce to plain floats: callers hand in numpy scalars (grid
        # sweeps, optimisers) and Arrival fields must stay Python floats
        # so downstream math/serialization never sees np.float64 leaks.
        sx, sy = float(source[0]), float(source[1])
        rx, ry = float(receiver[0]), float(receiver[1])
        for label, y in (("source", sy), ("receiver", ry)):
            if not 0.0 <= y <= thickness:
                raise AcousticsError(
                    f"{label} depth {y} outside the structure thickness {thickness}"
                )
        if speed is None:
            medium = self.geometry.medium
            speed = medium.cs if not medium.is_fluid else medium.cp
        speed = float(speed)

        dx = rx - sx
        reference = 0.05  # m, amplitude reference distance
        results: List[Arrival] = []
        for order in range(-self.max_bounces, self.max_bounces + 1):
            # Image of the source across repeated faces: classic unfolding.
            if order % 2 == 0:
                image_y = order * thickness + sy
            else:
                image_y = order * thickness + (thickness - sy)
            dy = ry - image_y
            path = math.hypot(dx, dy)
            bounces = abs(order)
            amplitude = (
                (reference / max(path, reference))
                * ((self.face_reflection * self.mode_retention) ** bounces)
                * 10.0
                ** (
                    -self.geometry.medium.attenuation_db(self.frequency, path) / 20.0
                )
            )
            results.append(
                Arrival(
                    delay=path / speed,
                    amplitude=amplitude,
                    bounces=bounces,
                    path_length=path,
                )
            )
        results.sort(key=lambda a: a.delay)
        return results

    def complex_gain(
        self,
        source: Tuple[float, float],
        receiver: Tuple[float, float],
        speed: float = None,
    ) -> complex:
        """Coherent sum of all arrivals at the carrier: the channel gain.

        Phases come from the carrier delay; destructive superpositions
        (the paper's margin caveat) appear naturally.
        """
        total = 0.0 + 0.0j
        for arrival in self.arrivals(source, receiver, speed):
            phase = -TWO_PI * self.frequency * arrival.delay
            total += arrival.amplitude * complex(math.cos(phase), math.sin(phase))
        return total

    def power_gain(
        self,
        source: Tuple[float, float],
        receiver: Tuple[float, float],
        speed: float = None,
    ) -> float:
        """Incoherent (power) sum of arrivals: average harvested energy.

        Energy harvesting integrates over many carrier cycles and small
        geometric perturbations, so the expected harvested power follows
        the incoherent sum rather than one coherent snapshot.
        """
        return sum(
            a.amplitude**2 for a in self.arrivals(source, receiver, speed)
        )

    def impulse_response(
        self,
        source: Tuple[float, float],
        receiver: Tuple[float, float],
        sample_rate: float,
        duration: float = None,
        speed: float = None,
    ) -> np.ndarray:
        """Sampled impulse response (tap-delay line) for waveform simulation."""
        if sample_rate <= 0.0:
            raise AcousticsError("sample rate must be positive")
        arrivals = self.arrivals(source, receiver, speed)
        if not arrivals:
            return np.zeros(1)
        if duration is None:
            duration = arrivals[-1].delay + 1.0 / sample_rate
        n = max(1, int(math.ceil(duration * sample_rate)))
        h = np.zeros(n)
        for arrival in arrivals:
            index = int(round(arrival.delay * sample_rate))
            if index < n:
                h[index] += arrival.amplitude
        return h


def paper_structures() -> List[StructureGeometry]:
    """The four tested structures S1-S4 of Sec. 5.1 (Fig. 11).

    S1: 150 x 50 x 15 cm slab; S2: 250 cm column, 70 cm diameter;
    S3: 20 m x 20 m x 20 cm common wall; S4: same footprint, 50 cm thick.
    Media are attached by the caller (they were cast from NC-class mixes).
    """
    from ..materials import get_concrete

    nc = get_concrete("NC").medium
    return [
        StructureGeometry("S1 slab", length=1.50, thickness=0.15, medium=nc),
        StructureGeometry("S2 column", length=2.50, thickness=0.70, medium=nc),
        StructureGeometry("S3 common wall", length=20.0, thickness=0.20, medium=nc),
        StructureGeometry("S4 protective wall", length=20.0, thickness=0.50, medium=nc),
    ]
