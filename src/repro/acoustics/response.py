"""Concrete frequency response (paper Sec. 3.3, Fig. 5b).

The paper sweeps a 100 V sinusoid from 20 to 400 kHz through four
concrete blocks and finds (1) a resonance band between 200 and 250 kHz
regardless of concrete type, beyond which propagation attenuates
rapidly, and (2) much larger peak responses for UHPC/UHPFRC than NC.

We model the through-block response as the product of a resonance term
(a second-order band-pass centred in the 200-250 kHz band, whose centre
shifts slightly with the block's stiffness-to-thickness ratio) and a
high-frequency absorption roll-off.  The model is calibrated so the NC
peak is ~2.3 V and the UHPC/UHPFRC peaks are ~6-7 V as in Fig. 5b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import AcousticsError
from ..materials import Concrete, get_concrete

#: The paper's resonance band (Hz): holds for all tested concretes.
CARRIER_BAND = (200e3, 250e3)

#: The paper's default carrier / off-resonance frequencies (Hz).
RESONANT_FREQUENCY = 230e3
OFF_RESONANT_FREQUENCY = 180e3


@dataclass(frozen=True)
class ConcreteBlock:
    """A cast test block: a concrete type with a thickness (Fig. 5a)."""

    concrete: Concrete
    thickness: float  # m

    def __post_init__(self) -> None:
        if self.thickness <= 0.0:
            raise AcousticsError(f"thickness must be positive, got {self.thickness}")

    @property
    def label(self) -> str:
        return f"{self.concrete.name}-{self.thickness * 100:.0f}cm"


class FrequencyResponse:
    """Through-transmission frequency response of a concrete block.

    ``gain(f)`` is the linear amplitude ratio RX/TX for a continuous
    sinusoid at ``f``; ``rx_amplitude(f, tx_voltage)`` maps a drive
    voltage to the received PZT amplitude in volts, matching Fig. 5b's
    axes (100 V drive -> millivolt-to-volt scale response).
    """

    #: Electromechanical conversion from drive volts to received volts at
    #: unity channel gain, folding both PZT conversions and the contact
    #: coupling into one constant, calibrated to Fig. 5b's NC-15cm peak.
    CONVERSION = 0.045

    def __init__(self, block: ConcreteBlock, quality_factor: float = 8.0):
        if quality_factor <= 0.0:
            raise AcousticsError("quality factor must be positive")
        self.block = block
        self.quality_factor = quality_factor

    @property
    def resonant_frequency(self) -> float:
        """Block resonance (Hz), inside the paper's 200-250 kHz band.

        The centre scales weakly with the stiffness/density ratio so the
        four tested blocks land at slightly different peaks, all within
        the carrier band, as in Fig. 5b.
        """
        concrete = self.block.concrete
        stiffness_ratio = (concrete.elastic_modulus / concrete.density) / (
            27.8e9 / 2309.0
        )
        base = 215e3 * stiffness_ratio**0.12
        low, high = CARRIER_BAND
        return min(max(base, low + 5e3), high - 5e3)

    def gain(self, frequency: float) -> float:
        """Linear amplitude gain through the block at ``frequency``."""
        if frequency <= 0.0:
            raise AcousticsError(f"frequency must be positive, got {frequency}")
        f0 = self.resonant_frequency
        q = self.quality_factor
        # Second-order band-pass magnitude.
        x = frequency / f0
        resonance = 1.0 / math.sqrt(1.0 + q * q * (x - 1.0 / x) ** 2)
        # Material absorption plus geometric spreading through the block.
        absorption_db = self.block.concrete.medium.attenuation_db(
            frequency, self.block.thickness
        )
        absorption = 10.0 ** (-absorption_db / 20.0)
        spreading = min(1.0, 0.05 / self.block.thickness)
        # Stronger concrete couples the wave better (the paper's finding 2:
        # higher compressive strength -> smaller intermolecular distances
        # -> better elastic-wave propagation).  Normalised against NC.
        strength_ratio = self.block.concrete.compressive_strength / 54.1e6
        coupling = min(strength_ratio, 5.0)
        return resonance * absorption * spreading * coupling

    def rx_amplitude(self, frequency: float, tx_voltage: float = 100.0) -> float:
        """Received PZT amplitude (V) for a ``tx_voltage`` sinusoid."""
        if tx_voltage <= 0.0:
            raise AcousticsError("drive voltage must be positive")
        return self.CONVERSION * tx_voltage * self.gain(frequency)

    def sweep(
        self,
        frequencies: Sequence[float],
        tx_voltage: float = 100.0,
    ) -> List[Tuple[float, float]]:
        """(frequency, rx amplitude) pairs over ``frequencies`` (Fig. 5b)."""
        return [(f, self.rx_amplitude(f, tx_voltage)) for f in frequencies]

    def off_resonance_suppression_db(
        self,
        resonant: float = RESONANT_FREQUENCY,
        off_resonant: float = OFF_RESONANT_FREQUENCY,
    ) -> float:
        """How many dB the block suppresses the off-resonance tone.

        This is the FSK-in/OOK-out mechanism of Sec. 3.3: driving the PZT
        at 180 kHz instead of stopping it yields a naturally attenuated
        low-voltage edge at the node.
        """
        high = self.gain(resonant)
        low = self.gain(off_resonant)
        if low <= 0.0:
            raise AcousticsError("off-resonant gain collapsed to zero")
        return 20.0 * math.log10(high / low)


def paper_test_blocks() -> List[ConcreteBlock]:
    """The four blocks of Fig. 5a: NC-7cm, NC-15cm, UHPC-15cm, UHPFRC-15cm."""
    return [
        ConcreteBlock(get_concrete("NC"), 0.07),
        ConcreteBlock(get_concrete("NC"), 0.15),
        ConcreteBlock(get_concrete("UHPC"), 0.15),
        ConcreteBlock(get_concrete("UHPFRC"), 0.15),
    ]
