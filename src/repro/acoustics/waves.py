"""Body-wave fundamentals: velocities, beam geometry, wave descriptors.

Implements the quantities Sec. 3.1/3.2 of the paper relies on:

* P/S velocity relationships (S ~ 40 % slower than P in concrete);
* the half-beam angle of a circular piston PZT,
  ``alpha = arcsin(0.514 * Cp / (f * D))``;
* simple plane-wave descriptors used by the raytracer and channel model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import AcousticsError
from ..materials import Medium
from ..units import TWO_PI


@dataclass(frozen=True)
class PlaneWave:
    """A single body-wave component travelling through one medium.

    Attributes:
        mode: 'p' or 's'.
        frequency: Carrier frequency (Hz).
        amplitude: Relative amplitude (1.0 = source level).
        phase: Carrier phase at the reference point (rad).
        angle: Propagation angle from the boundary normal (rad).
    """

    mode: str
    frequency: float
    amplitude: float = 1.0
    phase: float = 0.0
    angle: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("p", "s"):
            raise AcousticsError(f"wave mode must be 'p' or 's', got {self.mode!r}")
        if self.frequency <= 0.0:
            raise AcousticsError(f"frequency must be positive, got {self.frequency}")
        if self.amplitude < 0.0:
            raise AcousticsError(f"amplitude cannot be negative, got {self.amplitude}")

    def velocity_in(self, medium: Medium) -> float:
        """Propagation speed of this wave in ``medium`` (m/s)."""
        return medium.velocity(self.mode)

    def wavelength_in(self, medium: Medium) -> float:
        """Wavelength in ``medium`` (m)."""
        return self.velocity_in(medium) / self.frequency

    def wavenumber_in(self, medium: Medium) -> float:
        """Angular wavenumber k = 2 pi / lambda (rad/m)."""
        return TWO_PI / self.wavelength_in(medium)


def half_beam_angle(diameter: float, frequency: float, velocity: float) -> float:
    """Half-beam angle (rad) of a circular piston transducer.

    ``alpha = arcsin(0.514 * C / (f * D))`` -- paper Sec. 3.2.  With
    D = 40 mm, f = 230 kHz and Cp = 3338 m/s this gives ~10.7 deg,
    which the paper rounds to 11 deg.
    """
    if diameter <= 0.0:
        raise AcousticsError(f"diameter must be positive, got {diameter}")
    if frequency <= 0.0:
        raise AcousticsError(f"frequency must be positive, got {frequency}")
    argument = 0.514 * velocity / (frequency * diameter)
    if argument >= 1.0:
        raise AcousticsError(
            "transducer is too small relative to the wavelength: "
            f"0.514 C / (f D) = {argument:.3f} >= 1"
        )
    return math.asin(argument)


def beam_cone_volume(half_angle: float, depth: float) -> float:
    """Volume (m^3) of the beam cone of ``half_angle`` through ``depth``.

    The paper quotes ~132 cm^3 for alpha ~ 11 deg through a 15 cm wall.
    """
    if depth <= 0.0:
        raise AcousticsError(f"depth must be positive, got {depth}")
    if not 0.0 < half_angle < math.pi / 2.0:
        raise AcousticsError(f"half angle must be in (0, pi/2), got {half_angle}")
    base_radius = depth * math.tan(half_angle)
    return math.pi * base_radius**2 * depth / 3.0


def near_field_length(diameter: float, frequency: float, velocity: float) -> float:
    """Near-field (Fresnel) length N = D^2 f / (4 C) of a piston source (m)."""
    if diameter <= 0.0 or frequency <= 0.0 or velocity <= 0.0:
        raise AcousticsError("diameter, frequency and velocity must be positive")
    return diameter**2 * frequency / (4.0 * velocity)


def velocity_ratio(medium: Medium) -> float:
    """Cs / Cp for a solid medium (~0.58 for concrete: S 40 % slower)."""
    if medium.is_fluid:
        raise AcousticsError(f"{medium.name} is a fluid and carries no S-waves")
    return medium.cs / medium.cp
