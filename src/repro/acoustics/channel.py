"""End-to-end acoustic channel: gain chain + noise for waveform simulation.

Composes the pieces the rest of the library needs into one object:

    TX drive -> prism injection -> structure multipath -> HRA gain
    -> node PZT  (downlink / charging)
    node backscatter -> structure multipath -> reader RX PZT (uplink)

The channel can either report scalar gains (for link budgets and range
solvers) or filter sampled waveforms and add Gaussian noise (for the
PHY-level Monte-Carlo experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import AcousticsError
from ..units import db_amplitude
from .attenuation import SpreadingModel, guidance_exponent
from .helmholtz import HelmholtzResonatorArray
from .prism import WavePrism
from .raytrace import ImageSourceModel, StructureGeometry


@dataclass
class NoiseModel:
    """Additive Gaussian noise at the receiving PZT.

    ``floor`` is the RMS noise amplitude in the same units as the channel
    waveforms (volts at the PZT terminals).  The paper's oscilloscope
    noise floor sits in the low-millivolt range.
    """

    floor: float = 2e-3
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        if self.floor < 0.0:
            raise AcousticsError("noise floor cannot be negative")

    def add(self, waveform: np.ndarray) -> np.ndarray:
        if self.floor == 0.0:
            return waveform.copy()
        return waveform + self.rng.normal(0.0, self.floor, size=waveform.shape)

    def snr_db(self, signal_rms: float) -> float:
        """SNR (dB) of a signal with RMS amplitude ``signal_rms``."""
        if self.floor <= 0.0:
            raise AcousticsError("SNR undefined for a zero noise floor")
        if signal_rms <= 0.0:
            return -math.inf
        return db_amplitude(signal_rms / self.floor)


@dataclass
class AcousticChannel:
    """One reader-to-node acoustic link inside a structure.

    Args:
        structure: The wall/slab/column geometry and medium.
        prism: The injection wedge (None = direct P-wave contact, 0 deg).
        hra: Optional Helmholtz array at the node.
        frequency: Carrier frequency (Hz).
        node_position: (x, y) of the node in structure coordinates (m).
        reader_position: (x, y) of the reader TX footprint (m).
        noise: Receiver noise model.
        max_bounces: Image orders for the multipath model.
    """

    structure: StructureGeometry
    frequency: float = 230e3
    prism: Optional[WavePrism] = None
    hra: Optional[HelmholtzResonatorArray] = None
    node_position: Tuple[float, float] = (1.0, 0.10)
    reader_position: Tuple[float, float] = (0.0, 0.0)
    noise: NoiseModel = field(default_factory=NoiseModel)
    max_bounces: int = 30

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise AcousticsError("frequency must be positive")
        self._raytracer = ImageSourceModel(
            self.structure, self.frequency, max_bounces=self.max_bounces
        )

    # ------------------------------------------------------------------
    # Scalar gains
    # ------------------------------------------------------------------

    @property
    def injection_gain(self) -> float:
        """Amplitude gain of the prism injection stage (<= 1)."""
        if self.prism is None:
            # Direct contact: all P-wave energy enters minus the
            # impedance mismatch at the PZT face; treat as near-unity but
            # without the S-reflection benefit (handled by mode purity in
            # the link simulation).
            return 0.9
        quality = self.prism.injection_quality()
        return math.sqrt(max(quality.effective_snr_gain, 0.0))

    @property
    def hra_gain(self) -> float:
        """Amplitude gain of the node's Helmholtz array at the carrier."""
        if self.hra is None:
            return 1.0
        medium = self.structure.medium
        speed = medium.cs if not medium.is_fluid else medium.cp
        return self.hra.amplification(self.frequency, speed)

    @property
    def spreading(self) -> SpreadingModel:
        """Spreading model from the structure's guidance behaviour."""
        medium = self.structure.medium
        speed = medium.cs if not medium.is_fluid else medium.cp
        lam = speed / self.frequency
        return SpreadingModel(
            exponent=guidance_exponent(self.structure.thickness, lam)
        )

    def downlink_amplitude_gain(self, coherent: bool = False) -> float:
        """Reader-to-node amplitude gain through the whole chain."""
        if coherent:
            multipath = abs(
                self._raytracer.complex_gain(self.reader_position, self.node_position)
            )
        else:
            multipath = math.sqrt(
                self._raytracer.power_gain(self.reader_position, self.node_position)
            )
        return self.injection_gain * multipath * self.hra_gain

    def uplink_amplitude_gain(self, coherent: bool = False) -> float:
        """Node-to-reader amplitude gain (reciprocal path, no prism/HRA).

        The reader RX adheres directly to the wall (Sec. 3.4), so the
        uplink skips the prism; the node's backscattered wave leaves via
        its PZT directly (no HRA on transmit).
        """
        if coherent:
            multipath = abs(
                self._raytracer.complex_gain(self.node_position, self.reader_position)
            )
        else:
            multipath = math.sqrt(
                self._raytracer.power_gain(self.node_position, self.reader_position)
            )
        return multipath

    def round_trip_amplitude_gain(self) -> float:
        """Backscatter round trip: downlink gain x uplink gain."""
        return self.downlink_amplitude_gain() * self.uplink_amplitude_gain()

    # ------------------------------------------------------------------
    # Waveform transport
    # ------------------------------------------------------------------

    def transport(
        self,
        waveform: np.ndarray,
        sample_rate: float,
        direction: str = "downlink",
        with_noise: bool = True,
        multipath: bool = True,
    ) -> np.ndarray:
        """Send a sampled waveform across the link.

        Args:
            waveform: TX samples (PZT terminal volts, already drive-scaled).
            sample_rate: Sampling rate (Hz).
            direction: 'downlink' (reader->node) or 'uplink' (node->reader).
            with_noise: Add receiver noise.
            multipath: Convolve with the structure's impulse response;
                when False, apply the scalar gain only (fast path).
        """
        if direction not in ("downlink", "uplink"):
            raise AcousticsError(f"unknown direction {direction!r}")
        if direction == "downlink":
            src, dst = self.reader_position, self.node_position
            scalar = self.injection_gain * self.hra_gain
        else:
            src, dst = self.node_position, self.reader_position
            scalar = 1.0

        if multipath:
            h = self._raytracer.impulse_response(src, dst, sample_rate)
            out = scalar * np.convolve(waveform, h)[: waveform.size]
        else:
            gain = (
                self.downlink_amplitude_gain()
                if direction == "downlink"
                else self.uplink_amplitude_gain()
            )
            out = waveform * gain

        if with_noise:
            out = self.noise.add(out)
        return out

    def snr_db(self, tx_rms: float, direction: str = "downlink") -> float:
        """Link SNR for a TX waveform of RMS amplitude ``tx_rms``."""
        gain = (
            self.downlink_amplitude_gain()
            if direction == "downlink"
            else self.uplink_amplitude_gain()
        )
        return self.noise.snr_db(tx_rms * gain)
