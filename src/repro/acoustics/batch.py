"""Batched image-source raytracing: all paths/receivers/frequencies at once.

The scalar :class:`repro.acoustics.raytrace.ImageSourceModel` walks the
image orders in a Python loop and returns a delay-sorted list of
:class:`Arrival` objects -- one call per (source, receiver) pair, one
iteration per image.  This module evaluates the same construction as
broadcast numpy expressions:

* :func:`trace_arrivals` -- every image order for every receiver in one
  ``(receivers, orders)`` pass;
* :func:`complex_gains` / :func:`power_gains` -- coherent/incoherent
  channel gains for a whole receiver grid;
* :func:`complex_gains_vs_frequency` -- one (paths x frequencies)
  broadcast for channel-response sweeps;
* :func:`impulse_responses` -- a tap-delay-line matrix, one row per
  receiver;
* :func:`attenuation_db_batch` / :func:`spreading_gains` -- vectorized
  forms of the propagation-loss primitives.

Equivalence contract (enforced by
``tests/test_acoustics_batch_equivalence.py``): the batched results
match the scalar reference to a relative tolerance of ``1e-12``, *not*
byte-exactly -- ``np.hypot`` and vectorized ``10.0 ** x`` differ from
``math.hypot`` / scalar ``**`` by up to 1 ulp, and the gain reductions
sum in image order rather than delay order.  Distance vectorization of
the attenuation law is exact (the law is linear in distance); frequency
vectorization is ulp-close only.  The scalar implementations remain the
reference that feeds the pinned goldens' single-point calls.

Axis conventions: receiver axis first, image-order axis second, in
image order ``-max_bounces .. +max_bounces`` (the scalar API returns
arrivals sorted by delay instead; use :meth:`ArrivalBatch.sorted_row`
to compare).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import AcousticsError
from ..materials import Medium
from ..units import TWO_PI
from .attenuation import SpreadingModel
from .raytrace import ImageSourceModel

#: Amplitude reference distance (m) -- mirrors the scalar raytracer.
REFERENCE_DISTANCE = 0.05


def attenuation_db_batch(
    medium: Medium, frequency, distance
) -> np.ndarray:
    """``Medium.attenuation_db`` over arrays of frequencies/distances.

    Broadcasts ``frequency`` against ``distance``.  Vectorizing over
    distance is *exact* (the power law is linear in distance, so the
    per-metre factor is computed once, exactly as the scalar code
    does); vectorizing over frequency matches the scalar result to
    1 ulp (vectorized ``**`` vs scalar ``**``).
    """
    frequency = np.asarray(frequency, dtype=float)
    distance = np.asarray(distance, dtype=float)
    if (distance < 0.0).any():
        raise AcousticsError("distance cannot be negative")
    if (frequency <= 0.0).any():
        raise AcousticsError("frequency must be positive")
    scale = (frequency / medium.attenuation_ref_hz) ** medium.attenuation_exponent
    return medium.attenuation_db_per_m * scale * distance


def spreading_gains(spreading: SpreadingModel, distance) -> np.ndarray:
    """Vectorized :meth:`SpreadingModel.amplitude_gain` (1-ulp close)."""
    distance = np.asarray(distance, dtype=float)
    if (distance < 0.0).any():
        raise AcousticsError("distance cannot be negative")
    effective = np.maximum(distance, spreading.reference_distance)
    return (spreading.reference_distance / effective) ** spreading.exponent


@dataclass(frozen=True)
class ArrivalBatch:
    """Struct-of-arrays multipath arrivals for a batch of receivers.

    Attributes:
        delays: ``(receivers, orders)`` arrival times (s).
        amplitudes: ``(receivers, orders)`` linear amplitudes.
        path_lengths: ``(receivers, orders)`` unfolded ray lengths (m).
        bounces: ``(orders,)`` face-reflection counts per image.
        orders: ``(orders,)`` signed image orders, ``-max .. +max``.
    """

    delays: np.ndarray
    amplitudes: np.ndarray
    path_lengths: np.ndarray
    bounces: np.ndarray
    orders: np.ndarray

    @property
    def n_receivers(self) -> int:
        return self.delays.shape[0]

    @property
    def n_paths(self) -> int:
        return self.delays.shape[1]

    def sorted_row(
        self, receiver: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One receiver's arrivals sorted by delay (the scalar ordering).

        Returns ``(delays, amplitudes, bounces, path_lengths)``.  The
        sort is stable, matching the scalar ``list.sort``'s tie order
        (image order within equal delays).
        """
        order = np.argsort(self.delays[receiver], kind="stable")
        return (
            self.delays[receiver][order],
            self.amplitudes[receiver][order],
            self.bounces[order],
            self.path_lengths[receiver][order],
        )


def _receiver_grid(receivers) -> np.ndarray:
    grid = np.asarray(receivers, dtype=float)
    if grid.ndim == 1:
        if grid.shape != (2,):
            raise AcousticsError(
                f"a single receiver must be an (x, y) pair, got shape "
                f"{grid.shape}"
            )
        grid = grid[None, :]
    if grid.ndim != 2 or grid.shape[1] != 2:
        raise AcousticsError(
            f"receivers must be an (n, 2) array of (x, y) points, got "
            f"shape {grid.shape}"
        )
    return grid


def _default_speed(model: ImageSourceModel) -> float:
    medium = model.geometry.medium
    return medium.cs if not medium.is_fluid else medium.cp


def trace_arrivals(
    model: ImageSourceModel,
    source: Tuple[float, float],
    receivers,
    speed: Optional[float] = None,
) -> ArrivalBatch:
    """All image-source arrivals for every receiver in one broadcast.

    ``receivers`` is an ``(n, 2)`` array (or one ``(x, y)`` pair).  The
    order axis runs ``-max_bounces .. +max_bounces``; use
    :meth:`ArrivalBatch.sorted_row` for the scalar (delay-sorted) view.
    """
    thickness = model.geometry.thickness
    sx, sy = float(source[0]), float(source[1])
    grid = _receiver_grid(receivers)
    if not 0.0 <= sy <= thickness:
        raise AcousticsError(
            f"source depth {sy} outside the structure thickness {thickness}"
        )
    depths = grid[:, 1]
    if grid.size and (
        (depths < 0.0).any() or (depths > thickness).any()
    ):
        bad = depths[(depths < 0.0) | (depths > thickness)][0]
        raise AcousticsError(
            f"receiver depth {bad} outside the structure thickness {thickness}"
        )
    if speed is None:
        speed = _default_speed(model)

    orders = np.arange(-model.max_bounces, model.max_bounces + 1)
    # Classic unfolding: mirror the source across repeated faces.
    image_y = np.where(
        orders % 2 == 0,
        orders * thickness + sy,
        orders * thickness + (thickness - sy),
    )
    dx = grid[:, 0] - sx  # (receivers,)
    dy = depths[:, None] - image_y[None, :]  # (receivers, orders)
    path = np.hypot(dx[:, None], dy)
    bounces = np.abs(orders)
    decay = (model.face_reflection * model.mode_retention) ** bounces
    att_per_m = model.geometry.medium.attenuation_db(model.frequency, 1.0)
    amplitude = (
        (REFERENCE_DISTANCE / np.maximum(path, REFERENCE_DISTANCE))
        * decay
        * 10.0 ** (-(att_per_m * path) / 20.0)
    )
    return ArrivalBatch(
        delays=path / speed,
        amplitudes=amplitude,
        path_lengths=path,
        bounces=bounces,
        orders=orders,
    )


def complex_gains(
    model: ImageSourceModel,
    source: Tuple[float, float],
    receivers,
    speed: Optional[float] = None,
) -> np.ndarray:
    """Coherent channel gain for every receiver (one value per row).

    Matches the scalar :meth:`ImageSourceModel.complex_gain` to ~1e-12
    relative: the sum runs in image order, not delay order.
    """
    batch = trace_arrivals(model, source, receivers, speed)
    phase = -TWO_PI * model.frequency * batch.delays
    return np.sum(
        batch.amplitudes * (np.cos(phase) + 1j * np.sin(phase)), axis=1
    )


def power_gains(
    model: ImageSourceModel,
    source: Tuple[float, float],
    receivers,
    speed: Optional[float] = None,
) -> np.ndarray:
    """Incoherent (power-sum) gain for every receiver."""
    batch = trace_arrivals(model, source, receivers, speed)
    return np.sum(batch.amplitudes**2, axis=1)


def complex_gains_vs_frequency(
    model: ImageSourceModel,
    source: Tuple[float, float],
    receiver: Tuple[float, float],
    frequencies,
    speed: Optional[float] = None,
) -> np.ndarray:
    """Channel response over a frequency grid in one (paths x freqs) pass.

    Re-evaluates both the per-path attenuation and the carrier phase at
    each frequency -- the broadcast equivalent of constructing one
    scalar ``ImageSourceModel`` per frequency and summing its arrivals.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if (frequencies <= 0.0).any():
        raise AcousticsError("frequency must be positive")
    base = trace_arrivals(model, source, receiver, speed)
    path = base.path_lengths[0]  # (orders,)
    delays = base.delays[0]
    decay = (model.face_reflection * model.mode_retention) ** base.bounces
    spread = REFERENCE_DISTANCE / np.maximum(path, REFERENCE_DISTANCE)
    att_db = attenuation_db_batch(
        model.geometry.medium, frequencies[:, None], path[None, :]
    )
    amplitude = spread[None, :] * decay[None, :] * 10.0 ** (-att_db / 20.0)
    phase = -TWO_PI * frequencies[:, None] * delays[None, :]
    return np.sum(amplitude * (np.cos(phase) + 1j * np.sin(phase)), axis=1)


def impulse_responses(
    model: ImageSourceModel,
    source: Tuple[float, float],
    receivers,
    sample_rate: float,
    duration: Optional[float] = None,
    speed: Optional[float] = None,
) -> np.ndarray:
    """Tap-delay-line matrix: one impulse-response row per receiver.

    When ``duration`` is None the row length covers the latest arrival
    across *all* receivers (the scalar method sizes per receiver).
    Taps use the same banker's rounding as the scalar code; colliding
    taps accumulate in image order instead of delay order.
    """
    if sample_rate <= 0.0:
        raise AcousticsError("sample rate must be positive")
    batch = trace_arrivals(model, source, receivers, speed)
    if batch.delays.size == 0:
        return np.zeros((batch.n_receivers, 1))
    if duration is None:
        duration = float(batch.delays.max()) + 1.0 / sample_rate
    n = max(1, int(np.ceil(duration * sample_rate)))
    h = np.zeros((batch.n_receivers, n))
    indices = np.rint(batch.delays * sample_rate).astype(np.int64)
    rows = np.broadcast_to(
        np.arange(batch.n_receivers)[:, None], indices.shape
    )
    keep = indices < n
    np.add.at(h, (rows[keep], indices[keep]), batch.amplitudes[keep])
    return h


__all__ = [
    "REFERENCE_DISTANCE",
    "ArrivalBatch",
    "attenuation_db_batch",
    "complex_gains",
    "complex_gains_vs_frequency",
    "impulse_responses",
    "power_gains",
    "spreading_gains",
    "trace_arrivals",
]
