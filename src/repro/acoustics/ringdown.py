"""PZT ring effect and its FSK-based suppression (paper Sec. 3.3, Fig. 7).

A driven PZT keeps oscillating after the drive stops: a damped
exponential "tail" that bleeds the high-voltage edge of a PIE symbol
into the following low-voltage edge (intra-symbol interference).  The
paper's trick is to never stop the PZT: the low-voltage edge is
transmitted at an off-resonant frequency (FSK), which the concrete's
frequency response suppresses naturally -- so the node still sees OOK,
but without the inertia tail.

This module provides a time-domain model of both behaviours so the
downlink simulator (and the Fig. 7 / Fig. 20 benchmarks) can compare
them quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AcousticsError
from ..units import TWO_PI
from .response import FrequencyResponse


@dataclass(frozen=True)
class RingdownModel:
    """Exponential ring-down of a resonant transducer.

    Attributes:
        frequency: Oscillation frequency during ring-down (Hz).
        quality_factor: Mechanical Q of the PZT; the decay time constant
            is ``tau = Q / (pi f)``.  The paper's ~0.3 ms tail at 230 kHz
            corresponds to Q of roughly 70-100.
    """

    frequency: float = 230e3
    quality_factor: float = 85.0

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise AcousticsError("frequency must be positive")
        if self.quality_factor <= 0.0:
            raise AcousticsError("quality factor must be positive")

    @property
    def time_constant(self) -> float:
        """Amplitude decay time constant tau = Q / (pi f) (s)."""
        return self.quality_factor / (math.pi * self.frequency)

    def tail_duration(self, threshold: float = 0.05) -> float:
        """Time (s) for the tail to decay below ``threshold`` x initial.

        With the default Q this is ~0.35 ms, matching Fig. 7a's ~0.3 ms.
        """
        if not 0.0 < threshold < 1.0:
            raise AcousticsError("threshold must be in (0, 1)")
        return -self.time_constant * math.log(threshold)

    def envelope(self, t: np.ndarray) -> np.ndarray:
        """Ring-down amplitude envelope at times ``t`` (s) after drive-off."""
        t = np.asarray(t, dtype=float)
        out = np.exp(-np.maximum(t, 0.0) / self.time_constant)
        out[t < 0.0] = 1.0
        return out


def ook_symbol_waveform(
    ring: RingdownModel,
    high_duration: float,
    low_duration: float,
    sample_rate: float,
    amplitude: float = 1.0,
) -> np.ndarray:
    """A PIE edge pair transmitted with plain OOK, including the ring tail.

    The high edge is a full-amplitude carrier burst; when the drive turns
    off the carrier decays with the PZT's ring-down envelope instead of
    stopping, leaking into the low edge (Fig. 7a).
    """
    _check_edges(high_duration, low_duration, sample_rate)
    n_high = int(round(high_duration * sample_rate))
    n_low = int(round(low_duration * sample_rate))
    t = np.arange(n_high + n_low) / sample_rate
    carrier = np.sin(TWO_PI * ring.frequency * t)
    envelope = np.ones_like(t)
    tail_t = t[n_high:] - t[n_high]
    envelope[n_high:] = ring.envelope(tail_t)
    return amplitude * envelope * carrier


def fsk_symbol_waveform(
    ring: RingdownModel,
    response: FrequencyResponse,
    high_duration: float,
    low_duration: float,
    sample_rate: float,
    amplitude: float = 1.0,
    off_frequency: float = 180e3,
    pzt_loaded_q: float = 8.0,
) -> np.ndarray:
    """A PIE edge pair transmitted with the paper's FSK trick.

    The low edge keeps the PZT driven at ``off_frequency``; that tone is
    suppressed twice -- by the PZT's own resonant response (loaded Q
    ``pzt_loaded_q``) and by the concrete's off-resonance damping -- so
    the received waveform shows a cleanly attenuated low edge with no
    inertia tail (Fig. 7b).  Both edges are scaled by the combined gain
    at their respective frequencies, mimicking what the node's envelope
    detector sees.
    """
    _check_edges(high_duration, low_duration, sample_rate)
    if pzt_loaded_q <= 0.0:
        raise AcousticsError("PZT loaded Q must be positive")
    n_high = int(round(high_duration * sample_rate))
    n_low = int(round(low_duration * sample_rate))
    t = np.arange(n_high + n_low) / sample_rate

    def pzt_gain(frequency: float) -> float:
        x = frequency / ring.frequency
        return 1.0 / math.sqrt(1.0 + (pzt_loaded_q * (x - 1.0 / x)) ** 2)

    gain_high = response.gain(ring.frequency) * pzt_gain(ring.frequency)
    gain_low = response.gain(off_frequency) * pzt_gain(off_frequency)

    waveform = np.empty_like(t)
    waveform[:n_high] = gain_high * np.sin(TWO_PI * ring.frequency * t[:n_high])
    waveform[n_high:] = gain_low * np.sin(TWO_PI * off_frequency * t[n_high:])
    # Normalise so the high edge has the requested amplitude.
    if gain_high > 0.0:
        waveform /= gain_high
    return amplitude * waveform


def low_edge_residual(
    waveform: np.ndarray,
    high_duration: float,
    sample_rate: float,
) -> float:
    """RMS amplitude in the low edge relative to the high edge.

    The Fig. 7 comparison metric: OOK leaves a large residual from the
    ring tail, FSK leaves only the suppressed off-resonance tone.
    """
    n_high = int(round(high_duration * sample_rate))
    if n_high <= 0 or n_high >= waveform.size:
        raise AcousticsError("high edge must cover part, not all, of the waveform")
    high = waveform[:n_high]
    low = waveform[n_high:]
    high_rms = float(np.sqrt(np.mean(high**2)))
    low_rms = float(np.sqrt(np.mean(low**2)))
    if high_rms <= 0.0:
        raise AcousticsError("degenerate waveform: silent high edge")
    return low_rms / high_rms


def _check_edges(high_duration: float, low_duration: float, sample_rate: float) -> None:
    if high_duration <= 0.0 or low_duration <= 0.0:
        raise AcousticsError("edge durations must be positive")
    if sample_rate <= 0.0:
        raise AcousticsError("sample rate must be positive")
