"""Acoustic substrate: waves, boundaries, prisms, multipath, resonators."""

from .attenuation import (
    SpreadingModel,
    channel_amplitude_gain,
    guidance_exponent,
    range_for_gain,
)
from .batch import (
    ArrivalBatch,
    attenuation_db_batch,
    complex_gains,
    complex_gains_vs_frequency,
    impulse_responses,
    power_gains,
    spreading_gains,
    trace_arrivals,
)
from .boundary import (
    RefractionResult,
    critical_angle,
    first_critical_angle,
    reflection_coefficient,
    refract,
    s_only_window,
    second_critical_angle,
    snell_angle,
    transmission_energy_fraction,
)
from .channel import AcousticChannel, NoiseModel
from .helmholtz import (
    HelmholtzResonator,
    HelmholtzResonatorArray,
    design_resonator,
    paper_resonator,
    speed_for_target,
)
from .prism import InjectionQuality, WavePrism
from .raytrace import Arrival, ImageSourceModel, StructureGeometry, paper_structures
from .response import (
    CARRIER_BAND,
    OFF_RESONANT_FREQUENCY,
    RESONANT_FREQUENCY,
    ConcreteBlock,
    FrequencyResponse,
    paper_test_blocks,
)
from .sounding import ChannelSounding, sound_arrivals, sound_structure
from .surface import (
    SurfaceWavePath,
    leakage_ratio,
    penetration_depth,
    rayleigh_velocity,
)
from .ringdown import (
    RingdownModel,
    fsk_symbol_waveform,
    low_edge_residual,
    ook_symbol_waveform,
)
from .waves import (
    PlaneWave,
    beam_cone_volume,
    half_beam_angle,
    near_field_length,
    velocity_ratio,
)

__all__ = [
    "SpreadingModel",
    "channel_amplitude_gain",
    "guidance_exponent",
    "range_for_gain",
    "ArrivalBatch",
    "attenuation_db_batch",
    "complex_gains",
    "complex_gains_vs_frequency",
    "impulse_responses",
    "power_gains",
    "spreading_gains",
    "trace_arrivals",
    "RefractionResult",
    "critical_angle",
    "first_critical_angle",
    "reflection_coefficient",
    "refract",
    "s_only_window",
    "second_critical_angle",
    "snell_angle",
    "transmission_energy_fraction",
    "AcousticChannel",
    "NoiseModel",
    "HelmholtzResonator",
    "HelmholtzResonatorArray",
    "design_resonator",
    "paper_resonator",
    "speed_for_target",
    "InjectionQuality",
    "WavePrism",
    "Arrival",
    "ImageSourceModel",
    "StructureGeometry",
    "paper_structures",
    "CARRIER_BAND",
    "OFF_RESONANT_FREQUENCY",
    "RESONANT_FREQUENCY",
    "ConcreteBlock",
    "FrequencyResponse",
    "paper_test_blocks",
    "ChannelSounding",
    "sound_arrivals",
    "sound_structure",
    "SurfaceWavePath",
    "leakage_ratio",
    "penetration_depth",
    "rayleigh_velocity",
    "RingdownModel",
    "fsk_symbol_waveform",
    "low_edge_residual",
    "ook_symbol_waveform",
    "PlaneWave",
    "beam_cone_volume",
    "half_beam_angle",
    "near_field_length",
    "velocity_ratio",
]
