"""Wave-prism design (paper Sec. 3.2, Fig. 3, Fig. 19).

The reader injects its continuous body wave through a polymer wedge so
that the waves enter the wall at a chosen non-zero incident angle.  When
the incident angle sits between the two critical angles, only S-waves
enter the concrete; the near-total internal reflection at concrete/air
boundaries then fills the whole wall with "S-reflections" that charge
EcoCapsules anywhere in the structure.

This module packages the boundary math into a designer object that:

* reports both critical angles and the S-only window;
* scores an incident angle (how much energy enters, and how "clean" the
  injected mode mix is for decoding);
* recommends an angle for a given prism/concrete pair (the paper uses
  60 deg PLA-on-concrete by default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import DesignError
from ..materials import PLA, Medium
from .boundary import RefractionResult, refract, s_only_window


@dataclass(frozen=True)
class InjectionQuality:
    """How well one incident angle injects a decodable wave into the wall.

    Attributes:
        incident_angle: The evaluated incident angle (rad).
        refraction: Full energy partition at that angle.
        mode_purity: Fraction of the *transmitted* energy carried by the
            dominant mode.  1.0 means a single clean copy of the signal;
            values near 0.5 mean two equal copies (P and S) that overlap
            at the receiver and corrupt decoding (paper Sec. 3.2).
        injected_energy: Fraction of the incident energy entering the wall.
        effective_snr_gain: Linear SNR factor combining purity and energy;
            the raytracer/channel multiplies this into the link budget.
    """

    incident_angle: float
    refraction: RefractionResult
    mode_purity: float
    injected_energy: float
    effective_snr_gain: float

    @property
    def s_only(self) -> bool:
        """True when effectively all transmitted energy is S-wave."""
        return self.refraction.p_energy <= 1e-6 and self.refraction.s_energy > 0.0


class WavePrism:
    """A polymer wedge that couples the reader PZT into a concrete wall.

    Args:
        prism_material: The wedge medium (defaults to PLA).
        concrete: The solid being insonified.
        incident_angle: Wedge angle (rad).  The paper's default is 60 deg.

    Raises:
        DesignError: when the angle is outside [0, 90) deg or the pair of
            media admits no S-only window at all.
    """

    def __init__(
        self,
        prism_material: Medium = PLA,
        concrete: Optional[Medium] = None,
        incident_angle: float = math.radians(60.0),
    ):
        if concrete is None:
            raise DesignError("WavePrism requires a concrete medium")
        if not 0.0 <= incident_angle < math.pi / 2.0:
            raise DesignError(
                f"incident angle must be in [0, 90) deg, got "
                f"{math.degrees(incident_angle):.1f}"
            )
        self.prism_material = prism_material
        self.concrete = concrete
        self.incident_angle = incident_angle

    @property
    def critical_angles(self) -> Tuple[float, float]:
        """(first, second) critical angles in radians (~34 deg, ~73 deg)."""
        return s_only_window(self.prism_material, self.concrete)

    @property
    def in_s_only_window(self) -> bool:
        """True when the configured angle injects S-waves only."""
        low, high = self.critical_angles
        return low <= self.incident_angle <= high

    def refraction(self, incident_angle: Optional[float] = None) -> RefractionResult:
        """Energy partition at ``incident_angle`` (defaults to configured)."""
        angle = self.incident_angle if incident_angle is None else incident_angle
        return refract(self.prism_material, self.concrete, angle)

    def injection_quality(
        self, incident_angle: Optional[float] = None
    ) -> InjectionQuality:
        """Score an incident angle for link quality (used by Fig. 19).

        Two injected copies of the same signal arriving with a 40 % speed
        difference overlap destructively at the receiver, so the quality
        combines transmitted energy with mode purity.  A 0 deg incidence
        is a special case: only a P-wave exists (no conversion), so the
        mix is pure even though no S-reflections are triggered -- this is
        why the paper's Fig. 19 shows a locally high SNR at 0 deg.
        """
        angle = self.incident_angle if incident_angle is None else incident_angle
        result = self.refraction(angle)
        transmitted = result.transmitted_energy
        if transmitted <= 0.0:
            purity = 0.0
        else:
            purity = max(result.p_energy, result.s_energy) / transmitted
        # The S-wave is the usable carrier: it survives the reflections
        # that fill the wall (Fig. 3d) and reaches nodes everywhere.  Any
        # co-injected P-wave carries a 40 %-faster copy of the same data
        # that lands as structured interference at the receiver, so the
        # effective SNR is the S energy derated by the P/S ratio.  The
        # interference weight is calibrated against Fig. 19's measured
        # drops at 15 and 30 deg incidence.
        s = result.s_energy
        p = result.p_energy
        if s <= 0.0:
            gain = 0.0
        else:
            gain = s / (1.0 + 0.15 * (p / s))
        return InjectionQuality(
            incident_angle=angle,
            refraction=result,
            mode_purity=purity,
            injected_energy=transmitted,
            effective_snr_gain=gain,
        )

    def recommend_angle(self, samples: int = 181) -> float:
        """Best incident angle (rad) inside the S-only window.

        Scans the window and returns the angle maximising the effective
        SNR gain.  For PLA on the paper's concrete this lands in the
        50-65 deg region, matching the paper's 60 deg default.
        """
        low, high = self.critical_angles
        if samples < 2:
            raise DesignError("samples must be >= 2")
        best_angle = low
        best_gain = -1.0
        for index in range(samples):
            angle = low + (high - low) * index / (samples - 1)
            # Stay strictly inside the window to avoid boundary degeneracy.
            angle = min(max(angle, low + 1e-6), high - 1e-6)
            gain = self.injection_quality(angle).effective_snr_gain
            if gain > best_gain:
                best_gain = gain
                best_angle = angle
        return best_angle

    def sweep(self, angles_deg: List[float]) -> List[InjectionQuality]:
        """Evaluate a list of incident angles in degrees (Fig. 19 harness)."""
        return [self.injection_quality(math.radians(a)) for a in angles_deg]
