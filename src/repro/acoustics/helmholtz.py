"""Helmholtz resonator array design (paper Sec. 4.1, Fig. 8d, Eqn. 5).

Each EcoCapsule carries a small array of Helmholtz resonators in front
of its receiving PZT.  A resonator with neck cross-section A_n, neck
length H_n and cavity volume V_c resonates (undamped) at

    f_r = (Cs / 2 pi) * sqrt(3 A_n / (4 V_c H_n))        -- Eqn. 5

and acts as a narrowband vibration amplifier around f_r.  The paper's
geometry (A_n = 0.78 mm^2, V_c = 2.76 mm^3, H_n = 0.8 mm) targets the
~230 kHz carrier in high-performance concrete.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DesignError
from ..units import TWO_PI


@dataclass(frozen=True)
class HelmholtzResonator:
    """One resonator: a cylindrical neck opening into a cavity.

    Attributes:
        neck_area: Neck cross-sectional area A_n (m^2).
        neck_length: Neck length H_n (m).
        cavity_volume: Cavity volume V_c (m^3).
        quality_factor: Resonance Q controlling gain and bandwidth.
    """

    neck_area: float
    neck_length: float
    cavity_volume: float
    quality_factor: float = 12.0

    def __post_init__(self) -> None:
        for label, value in (
            ("neck_area", self.neck_area),
            ("neck_length", self.neck_length),
            ("cavity_volume", self.cavity_volume),
            ("quality_factor", self.quality_factor),
        ):
            if value <= 0.0:
                raise DesignError(f"{label} must be positive, got {value}")

    def resonant_frequency(self, wave_speed: float) -> float:
        """Undamped resonance f_r for medium wave speed ``wave_speed`` (Eqn. 5)."""
        if wave_speed <= 0.0:
            raise DesignError("wave speed must be positive")
        return (wave_speed / TWO_PI) * math.sqrt(
            3.0 * self.neck_area / (4.0 * self.cavity_volume * self.neck_length)
        )

    def amplification(self, frequency: float, wave_speed: float) -> float:
        """Linear amplitude gain at ``frequency``.

        Second-order resonator response normalised so the off-resonance
        floor is 1 (the resonator never attenuates below passthrough in
        this behavioural model) and the on-resonance peak is ~Q/2.
        """
        if frequency <= 0.0:
            raise DesignError("frequency must be positive")
        f0 = self.resonant_frequency(wave_speed)
        x = frequency / f0
        q = self.quality_factor
        resonance = 1.0 / math.sqrt((1.0 - x * x) ** 2 + (x / q) ** 2)
        return max(1.0, resonance / 2.0)


@dataclass(frozen=True)
class HelmholtzResonatorArray:
    """The HRA: ``count`` identical resonators tiling the capsule mouth.

    Array gain grows sub-linearly with count (the resonators share the
    same incident field and partially shadow each other); we use sqrt
    coherence, standard for small aperture arrays.
    """

    resonator: HelmholtzResonator
    count: int = 7

    def __post_init__(self) -> None:
        if self.count < 1:
            raise DesignError(f"array needs at least one resonator, got {self.count}")

    def amplification(self, frequency: float, wave_speed: float) -> float:
        """Array amplitude gain at ``frequency``."""
        single = self.resonator.amplification(frequency, wave_speed)
        return 1.0 + (single - 1.0) * math.sqrt(self.count)


def paper_resonator(quality_factor: float = 12.0) -> HelmholtzResonator:
    """The paper's HR geometry: A_n=0.78 mm^2, V_c=2.76 mm^3, H_n=0.8 mm."""
    return HelmholtzResonator(
        neck_area=0.78e-6,
        neck_length=0.8e-3,
        cavity_volume=2.76e-9,
        quality_factor=quality_factor,
    )


def design_resonator(
    target_frequency: float,
    wave_speed: float,
    neck_area: float = 0.78e-6,
    neck_length: float = 0.8e-3,
    quality_factor: float = 12.0,
) -> HelmholtzResonator:
    """Solve Eqn. 5 for the cavity volume hitting ``target_frequency``.

    Keeps the neck geometry fixed (it is set by printability limits) and
    returns the resonator whose undamped resonance equals the target.
    """
    if target_frequency <= 0.0 or wave_speed <= 0.0:
        raise DesignError("target frequency and wave speed must be positive")
    # f = (c / 2 pi) sqrt(3 A / (4 V H))  =>  V = 3 A c^2 / (16 pi^2 f^2 H)
    volume = (
        3.0
        * neck_area
        * wave_speed**2
        / (16.0 * math.pi**2 * target_frequency**2 * neck_length)
    )
    resonator = HelmholtzResonator(
        neck_area=neck_area,
        neck_length=neck_length,
        cavity_volume=volume,
        quality_factor=quality_factor,
    )
    return resonator


def speed_for_target(
    resonator: HelmholtzResonator, target_frequency: float
) -> float:
    """Medium wave speed at which ``resonator`` resonates at the target.

    Useful to show that the paper's geometry lands at ~230 kHz for the
    S-wave speed of high-performance concrete (~2.8 km/s) rather than NC.
    """
    if target_frequency <= 0.0:
        raise DesignError("target frequency must be positive")
    unit_speed_f = resonator.resonant_frequency(1.0)
    return target_frequency / unit_speed_f
