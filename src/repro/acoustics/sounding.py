"""Channel sounding: delay spread and coherence bandwidth of a structure.

The S-reflections that make in-wall charging work (Fig. 3d) also make
the channel frequency-selective: every image arrival is an echo, and
the echo span limits how wide a data band the channel supports.  The
standard sounding metrics connect the geometry to the link limits:

* mean excess delay and RMS delay spread of the multipath profile;
* coherence bandwidth  B_c ~ 1 / (5 tau_rms)  (the 0.5-correlation
  rule of thumb), which upper-bounds the flat-fading symbol rate --
  the physical story behind Fig. 16's 13 kbps knee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import AcousticsError
from .raytrace import Arrival, ImageSourceModel, StructureGeometry


@dataclass(frozen=True)
class ChannelSounding:
    """Multipath statistics of one source-receiver pair."""

    mean_excess_delay: float  # s
    rms_delay_spread: float  # s
    coherence_bandwidth: float  # Hz
    n_significant_paths: int

    def supports_bitrate(self, bitrate: float, margin: float = 1.0) -> bool:
        """True when ``bitrate`` fits inside the coherence bandwidth."""
        if bitrate <= 0.0:
            raise AcousticsError("bitrate must be positive")
        return bitrate * margin <= self.coherence_bandwidth


def sound_arrivals(
    arrivals: Sequence[Arrival],
    power_floor: float = 1e-3,
) -> ChannelSounding:
    """Sounding metrics from a multipath arrival list.

    Arrivals below ``power_floor`` of the strongest path are noise-level
    echoes and excluded, as in measured power-delay profiles.

    Raises:
        AcousticsError: when no arrival survives the floor.
    """
    if not arrivals:
        raise AcousticsError("no arrivals to sound")
    peak_power = max(a.amplitude**2 for a in arrivals)
    if peak_power <= 0.0:
        raise AcousticsError("all arrivals have zero power")
    kept = [
        a for a in arrivals if a.amplitude**2 >= power_floor * peak_power
    ]
    if not kept:
        raise AcousticsError("power floor removed every arrival")

    total_power = sum(a.amplitude**2 for a in kept)
    first = min(a.delay for a in kept)
    mean_delay = (
        sum(a.amplitude**2 * (a.delay - first) for a in kept) / total_power
    )
    second_moment = (
        sum(a.amplitude**2 * (a.delay - first) ** 2 for a in kept) / total_power
    )
    variance = max(0.0, second_moment - mean_delay**2)
    rms = math.sqrt(variance)
    coherence = math.inf if rms == 0.0 else 1.0 / (5.0 * rms)
    return ChannelSounding(
        mean_excess_delay=mean_delay,
        rms_delay_spread=rms,
        coherence_bandwidth=coherence,
        n_significant_paths=len(kept),
    )


def sound_structure(
    structure: StructureGeometry,
    source: Tuple[float, float],
    receiver: Tuple[float, float],
    frequency: float = 230e3,
    max_bounces: int = 30,
    power_floor: float = 1e-3,
) -> ChannelSounding:
    """Sound a structure between two points via the image-source model."""
    model = ImageSourceModel(structure, frequency, max_bounces=max_bounces)
    return sound_arrivals(
        model.arrivals(source, receiver), power_floor=power_floor
    )
