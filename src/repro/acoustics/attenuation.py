"""Propagation-loss models: geometric spreading plus material absorption.

The channel gain between the reader PZT and a node combines

* geometric spreading, whose exponent depends on the structure: an
  unbounded body spreads spherically (amplitude ~ 1/r) while a thin wall
  guides the S-reflections between its faces and spreads cylindrically
  (amplitude ~ 1/sqrt(r)).  The paper's Fig. 12 finding that "the range
  is longer in a narrow structure" is exactly this effect;
* frequency-dependent absorption, modelled per material as a power law
  ``a(f) = a_ref (f/f_ref)^n`` in dB/m (see ``Medium.attenuation_db``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import AcousticsError
from ..materials import Medium
from ..units import from_db_amplitude


@dataclass(frozen=True)
class SpreadingModel:
    """Geometric spreading with a configurable exponent.

    amplitude_gain(r) = (r_ref / max(r, r_ref)) ** exponent

    exponent = 1.0 -> spherical (unguided bulk), 0.5 -> cylindrical
    (waves guided between two parallel faces of a wall).
    """

    exponent: float = 1.0
    reference_distance: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.exponent <= 1.5:
            raise AcousticsError(f"spreading exponent out of range: {self.exponent}")
        if self.reference_distance <= 0.0:
            raise AcousticsError("reference distance must be positive")

    def amplitude_gain(self, distance: float) -> float:
        """Amplitude ratio relative to the reference distance (<= 1)."""
        if distance < 0.0:
            raise AcousticsError(f"distance cannot be negative, got {distance}")
        effective = max(distance, self.reference_distance)
        return (self.reference_distance / effective) ** self.exponent


def guidance_exponent(thickness: float, wavelength: float) -> float:
    """Spreading exponent for a plate of ``thickness`` at ``wavelength``.

    Thin structures (thickness a few wavelengths) trap the S-reflections
    and spread cylindrically; thick bodies approach spherical spreading.
    The blend is a smooth logistic in thickness/wavelength so that the
    paper's 20 cm wall (S3) guides strongly, the 50 cm wall (S4) guides
    moderately, and the 70 cm column (S2) barely guides at all.
    """
    if thickness <= 0.0 or wavelength <= 0.0:
        raise AcousticsError("thickness and wavelength must be positive")
    ratio = thickness / wavelength
    # ratio ~ 20 (a 20 cm wall at 230 kHz) -> strongly guided;
    # ratio ~ 80 (the 70 cm column) -> bulk-like.  Even "bulk" structures
    # retain some guidance from their boundaries, so the exponent tops
    # out below the free-space value of 1.
    blend = 1.0 / (1.0 + math.exp(-(ratio - 45.0) / 12.0))
    return 0.35 + 0.32 * blend


def channel_amplitude_gain(
    medium: Medium,
    distance: float,
    frequency: float,
    spreading: SpreadingModel,
) -> float:
    """Total amplitude gain: spreading x absorption (linear, <= 1)."""
    absorption_db = medium.attenuation_db(frequency, distance)
    return spreading.amplitude_gain(distance) * from_db_amplitude(-absorption_db)


def range_for_gain(
    medium: Medium,
    frequency: float,
    spreading: SpreadingModel,
    required_gain: float,
    max_distance: float = 50.0,
    tolerance: float = 1e-4,
) -> float:
    """Largest distance at which the channel gain still meets ``required_gain``.

    Solves ``channel_amplitude_gain(d) = required_gain`` by bisection.
    Returns 0.0 when even the reference distance fails, and
    ``max_distance`` when the whole search range passes.
    """
    if not 0.0 < required_gain <= 1.0:
        raise AcousticsError(f"required gain must be in (0, 1], got {required_gain}")

    def gain(distance: float) -> float:
        return channel_amplitude_gain(medium, distance, frequency, spreading)

    if gain(spreading.reference_distance) < required_gain:
        return 0.0
    if gain(max_distance) >= required_gain:
        return max_distance

    low, high = spreading.reference_distance, max_distance
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if gain(mid) >= required_gain:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
