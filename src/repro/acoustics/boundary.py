"""Reflection, refraction and mode conversion at media boundaries.

Implements the three boundary results the paper builds on:

* Eqn. 1 -- normal-incidence reflection coefficient
  ``R = (Z2 - Z1) / (Z2 + Z1)``, which for concrete/air is ~99.98 %
  and traps body waves inside a wall (the "S-reflections" of Fig. 3d);
* Eqn. 2/3 -- Snell refraction with mode conversion: an incident
  longitudinal wave in the prism refracts into both a P-wave and a
  slower S-wave in the concrete, with the P-wave refracting at the
  larger angle and disappearing first (first critical angle);
* the oblique-incidence energy partition at a fluid-on-solid interface
  (classic Krautkramer/Brekhovskikh impedance formulation), which yields
  the relative P/S amplitudes of Fig. 4 as a function of incident angle.

The prism is modelled as an effective fluid for the incident
longitudinal wave -- the standard angle-beam wedge approximation in
ultrasonic NDT -- because only its longitudinal mode is driven by the
disc PZT.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Optional

from ..errors import AcousticsError, TotalReflectionError
from ..materials import Medium


def reflection_coefficient(z_from: float, z_to: float) -> float:
    """Normal-incidence pressure reflection coefficient (paper Eqn. 1).

    ``R = (Z_to - Z_from) / (Z_to + Z_from)`` evaluated for a wave
    travelling from impedance ``z_from`` into ``z_to``.  The paper quotes
    the magnitude for the concrete->air boundary: R = 99.98 %.
    """
    if z_from <= 0.0 or z_to <= 0.0:
        raise AcousticsError("acoustic impedances must be positive")
    return (z_to - z_from) / (z_to + z_from)


def transmission_energy_fraction(z_from: float, z_to: float) -> float:
    """Fraction of incident energy transmitted across a normal boundary.

    ``T = 1 - R^2 = 4 Z1 Z2 / (Z1 + Z2)^2``.
    """
    r = reflection_coefficient(z_from, z_to)
    return 1.0 - r * r


def snell_angle(
    incident_angle: float,
    velocity_in: float,
    velocity_out: float,
    mode: str = "p",
) -> float:
    """Refracted angle (rad) via Snell's law (paper Eqn. 2).

    Raises:
        TotalReflectionError: when the refracted mode is evanescent
            (incident angle beyond that mode's critical angle).
    """
    if not 0.0 <= incident_angle < math.pi / 2.0:
        raise AcousticsError(
            f"incident angle must be in [0, 90) deg, got {math.degrees(incident_angle):.1f}"
        )
    sin_out = math.sin(incident_angle) * velocity_out / velocity_in
    if sin_out > 1.0:
        critical = critical_angle(velocity_in, velocity_out)
        raise TotalReflectionError(
            math.degrees(incident_angle), math.degrees(critical), mode
        )
    return math.asin(sin_out)


def critical_angle(velocity_in: float, velocity_out: float) -> float:
    """Critical incident angle (rad) for refraction into a faster medium.

    Only defined when ``velocity_out > velocity_in`` (otherwise refraction
    never becomes evanescent and this raises).
    """
    if velocity_in <= 0.0 or velocity_out <= 0.0:
        raise AcousticsError("velocities must be positive")
    if velocity_out <= velocity_in:
        raise AcousticsError(
            "no critical angle: refracted medium is not faster "
            f"({velocity_out} <= {velocity_in})"
        )
    return math.asin(velocity_in / velocity_out)


@dataclass(frozen=True)
class RefractionResult:
    """Energy partition of an obliquely incident longitudinal wave.

    All ``*_energy`` fields are fractions of the incident energy and sum
    to 1 (reflected + transmitted P + transmitted S).  ``*_angle`` fields
    are refraction angles in radians, ``None`` when that mode is
    evanescent.
    """

    incident_angle: float
    reflected_energy: float
    p_energy: float
    s_energy: float
    p_angle: Optional[float]
    s_angle: Optional[float]

    @property
    def p_amplitude(self) -> float:
        """Relative amplitude of the transmitted P-wave (sqrt of energy)."""
        return math.sqrt(max(self.p_energy, 0.0))

    @property
    def s_amplitude(self) -> float:
        """Relative amplitude of the transmitted S-wave (sqrt of energy)."""
        return math.sqrt(max(self.s_energy, 0.0))

    @property
    def transmitted_energy(self) -> float:
        return self.p_energy + self.s_energy


def _complex_cos_from_sin(sin_value: float) -> complex:
    """cos(theta) for a possibly evanescent angle (|sin| may exceed 1).

    Past the critical angle the cosine becomes purely imaginary; the
    positive-imaginary branch describes a wave decaying away from the
    boundary, which carries no real power.
    """
    return cmath.sqrt(1.0 - sin_value * sin_value)


def refract(
    medium_in: Medium,
    medium_out: Medium,
    incident_angle: float,
) -> RefractionResult:
    """Partition an incident longitudinal wave at a (fluid-like) solid boundary.

    Uses the series-impedance formulation: with
    ``Z1 = rho1 c1 / cos(theta_i)``, ``Zp = rho2 cp / cos(theta_p)``,
    ``Zs = rho2 cs / cos(theta_s)`` the solid presents the input impedance

        ``Z_in = Zp cos^2(2 theta_s) + Zs sin^2(2 theta_s)``

    and the pressure reflection coefficient is
    ``R = (Z_in - Z1) / (Z_in + Z1)``.  The transmitted power splits
    between the P and S branches in proportion to the real parts of their
    series impedances, so an evanescent mode (imaginary cosine -> imaginary
    impedance) automatically receives zero power.  This reproduces the
    Fig. 4 amplitude-vs-angle curves, including both critical angles.

    Args:
        medium_in: Medium carrying the incident longitudinal wave (the
            prism, treated as an effective fluid).
        medium_out: The solid being insonified (concrete).
        incident_angle: Incident angle from the normal (rad).
    """
    if medium_out.is_fluid:
        raise AcousticsError(
            f"refract() expects a solid output medium, got fluid {medium_out.name}"
        )
    if not 0.0 <= incident_angle < math.pi / 2.0:
        raise AcousticsError(
            f"incident angle must be in [0, 90) deg, got {math.degrees(incident_angle):.1f}"
        )

    c1 = medium_in.cp
    cp = medium_out.cp
    cs = medium_out.cs
    rho1 = medium_in.density
    rho2 = medium_out.density

    sin_i = math.sin(incident_angle)
    cos_i = math.cos(incident_angle)
    sin_p = sin_i * cp / c1
    sin_s = sin_i * cs / c1
    cos_p = _complex_cos_from_sin(sin_p)
    cos_s = _complex_cos_from_sin(sin_s)

    def oblique_impedance(density: float, speed: float, cosine: complex) -> complex:
        # Exactly at a critical angle the cosine vanishes (grazing
        # refraction) and the branch impedance diverges; a tiny complex
        # regulariser keeps the limit finite without moving the curves.
        if abs(cosine) < 1e-9:
            cosine = 1e-9 + 0.0j
        return density * speed / cosine

    z1 = rho1 * c1 / cos_i
    zp = oblique_impedance(rho2, cp, cos_p)
    zs = oblique_impedance(rho2, cs, cos_s)

    # cos(2 theta_s) and sin(2 theta_s) via double-angle identities so the
    # expressions stay valid for complex angles.
    cos_2s = 1.0 - 2.0 * sin_s * sin_s
    sin_2s = 2.0 * sin_s * cos_s

    z_in = zp * cos_2s * cos_2s + zs * sin_2s * sin_2s
    reflection = (z_in - z1) / (z_in + z1)
    reflected = abs(reflection) ** 2
    transmitted = max(0.0, 1.0 - reflected)

    branch_p = (zp * cos_2s * cos_2s).real
    branch_s = (zs * sin_2s * sin_2s).real
    branch_total = branch_p + branch_s
    if branch_total <= 0.0:
        p_energy = 0.0
        s_energy = 0.0
    else:
        p_energy = transmitted * branch_p / branch_total
        s_energy = transmitted * branch_s / branch_total

    p_angle = math.asin(sin_p) if sin_p <= 1.0 else None
    s_angle = math.asin(sin_s) if sin_s <= 1.0 else None

    return RefractionResult(
        incident_angle=incident_angle,
        reflected_energy=1.0 - (p_energy + s_energy),
        p_energy=p_energy,
        s_energy=s_energy,
        p_angle=p_angle,
        s_angle=s_angle,
    )


def first_critical_angle(medium_in: Medium, medium_out: Medium) -> float:
    """Incident angle (rad) where the refracted P-wave becomes evanescent."""
    return critical_angle(medium_in.cp, medium_out.cp)


def second_critical_angle(medium_in: Medium, medium_out: Medium) -> float:
    """Incident angle (rad) where the refracted S-wave becomes evanescent."""
    if medium_out.is_fluid:
        raise AcousticsError(f"{medium_out.name} carries no S-waves")
    return critical_angle(medium_in.cp, medium_out.cs)


def s_only_window(medium_in: Medium, medium_out: Medium) -> tuple:
    """Incident-angle window (rad) where only the S-wave enters the solid.

    The paper's PLA-on-concrete window is approximately [34 deg, 73 deg].
    """
    low = first_critical_angle(medium_in, medium_out)
    high = second_critical_angle(medium_in, medium_out)
    if high <= low:
        raise AcousticsError(
            "degenerate S-only window: second critical angle does not exceed the first"
        )
    return low, high
