"""PAB underwater piezo-acoustic backscatter baseline (Jang & Adib,
SIGCOMM'19), as used for comparison throughout the paper's evaluation.

PAB operates at a 15 kHz carrier in water.  The comparisons the paper
draws (and this module reproduces):

* Fig. 12 -- power-up range vs voltage in two pools: Pool 1 (open tank,
  19 cm at 50 V, ~2 m at 200 V) and Pool 2 (elongated corridor pool,
  needing 84 V for 23 cm but then exploding to 6.5 m at 125 V because
  the corridor guides energy like a waveguide);
* Fig. 15 -- BER floor reached at ~11 dB (vs EcoCapsule's 8 dB);
* Fig. 16 -- bitrate limited to ~3 kbps by the 15 kHz carrier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..acoustics import StructureGeometry
from ..circuits import EnergyHarvester, VoltageMultiplier
from ..errors import AcousticsError
from ..link.budget import PowerUpLink
from ..link.simulation import SnrBitrateModel
from ..materials import WATER

#: PAB's operating carrier (Hz).
PAB_CARRIER = 15e3


def pool_1() -> StructureGeometry:
    """PAB's open test tank: bulk-like spreading, minimal guidance."""
    return StructureGeometry("PAB pool 1", length=8.0, thickness=3.0, medium=WATER)


def pool_2() -> StructureGeometry:
    """PAB's elongated corridor pool: strong waveguide behaviour."""
    return StructureGeometry("PAB pool 2", length=8.0, thickness=0.8, medium=WATER)


def pab_harvester() -> EnergyHarvester:
    """PAB's harvesting chain tuned for the 15 kHz carrier."""
    return EnergyHarvester(
        multiplier=VoltageMultiplier(stage_capacitance=15e-9),
        carrier_frequency=PAB_CARRIER,
    )


@dataclass
class PabLink(PowerUpLink):
    """Power-up budget for a PAB pool.

    Water carries a single mode and attenuates little at 15 kHz; range
    is spreading-limited.  Coupling constants are calibrated to the
    paper's Fig. 12 PAB anchors.
    """

    def __init__(self, pool: StructureGeometry, coupling: float = None,
                 spreading_exponent: float = None):
        if pool.medium is not WATER:
            raise AcousticsError("PabLink expects a water-filled pool")
        guided = pool.thickness < 1.0
        if coupling is None:
            # Pool 2's corridor couples the projector poorly (the paper
            # notes a larger voltage is required for even a short range).
            coupling = 0.0219 if not guided else 0.00714
        if spreading_exponent is None:
            spreading_exponent = 0.587 if not guided else 0.119
        super().__init__(
            structure=pool,
            frequency=PAB_CARRIER,
            coupling=coupling,
            harvester=pab_harvester(),
            spreading_exponent=spreading_exponent,
        )


def pab_snr_model() -> SnrBitrateModel:
    """PAB's SNR-vs-bitrate curve: the 15 kHz carrier caps data at ~3 kbps."""
    return SnrBitrateModel(
        snr_at_reference=15.0,
        reference_bitrate=1e3,
        band_limit=4.0e3,
    )


#: The SNR (dB) at which PAB reaches its BER floor (paper Fig. 15: ~11 dB,
#: vs EcoCapsule's 8 dB).  Used by the Fig. 15 harness to offset the
#: waterfall: PAB's lower carrier gives fewer cycles per symbol, costing
#: about 3 dB of effective decoding margin.
PAB_WATERFALL_OFFSET_DB = 3.0
