"""Baselines the paper compares against: PAB, U2B and embedded RFID."""

from .pab import (
    PAB_CARRIER,
    PAB_WATERFALL_OFFSET_DB,
    PabLink,
    pab_harvester,
    pab_snr_model,
    pool_1,
    pool_2,
)
from .rf_backscatter import (
    DEFAULT_CONCRETE_RF_ATTENUATION,
    RfBackscatterLink,
)
from .u2b import crossover_bitrate, u2b_snr_model

__all__ = [
    "PAB_CARRIER",
    "PAB_WATERFALL_OFFSET_DB",
    "PabLink",
    "pab_harvester",
    "pab_snr_model",
    "pool_1",
    "pool_2",
    "DEFAULT_CONCRETE_RF_ATTENUATION",
    "RfBackscatterLink",
    "crossover_bitrate",
    "u2b_snr_model",
]
