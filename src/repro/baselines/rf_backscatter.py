"""Embedded RFID baseline: RF backscatter through concrete (Sec. 3.5).

Prior attempts embed passive UHF RFID tags in concrete; the paper notes
their range collapses to centimetres because reinforced concrete
attenuates RF severely (it is effectively a Faraday cage, Sec. 1).
This model quantifies that contrast: free-space Friis path loss plus a
bulk concrete penetration loss of tens of dB per metre at UHF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import AcousticsError

#: Published bulk attenuation of moist reinforced concrete at 900 MHz,
#: dominated by water content and rebar scattering (dB/m).
DEFAULT_CONCRETE_RF_ATTENUATION = 150.0

#: Speed of light (m/s).
SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class RfBackscatterLink:
    """A UHF RFID link to a tag embedded in concrete.

    Attributes:
        frequency: Carrier (Hz); UHF RFID uses ~900 MHz.
        tx_power_dbm: Reader EIRP (dBm); regulatory limit ~36 dBm.
        tag_sensitivity_dbm: Power the tag needs to wake (dBm); ~-20 dBm
            for passive Gen2 tags.
        concrete_attenuation_db_per_m: Bulk penetration loss.
    """

    frequency: float = 900e6
    tx_power_dbm: float = 36.0
    tag_sensitivity_dbm: float = -20.0
    concrete_attenuation_db_per_m: float = DEFAULT_CONCRETE_RF_ATTENUATION

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise AcousticsError("frequency must be positive")
        if self.concrete_attenuation_db_per_m < 0.0:
            raise AcousticsError("attenuation cannot be negative")

    def path_loss_db(self, depth: float) -> float:
        """Total downlink loss (dB) to a tag ``depth`` metres inside concrete.

        Friis free-space term (the reader antenna stands at the surface,
        reference distance folds into the 1 m term) plus the bulk
        concrete penetration loss.
        """
        if depth <= 0.0:
            raise AcousticsError("depth must be positive")
        wavelength = SPEED_OF_LIGHT / self.frequency
        friis = 20.0 * math.log10(4.0 * math.pi * max(depth, 0.01) / wavelength)
        return friis + self.concrete_attenuation_db_per_m * depth

    def tag_power_dbm(self, depth: float) -> float:
        """Power (dBm) arriving at the embedded tag."""
        return self.tx_power_dbm - self.path_loss_db(depth)

    def powers_up(self, depth: float) -> bool:
        """True when the embedded tag wakes at ``depth``."""
        return self.tag_power_dbm(depth) >= self.tag_sensitivity_dbm

    def max_depth(self, resolution: float = 1e-4) -> float:
        """Deepest implantation (m) the tag still wakes at.

        The paper's point: this lands at centimetres, versus metres for
        the acoustic EcoCapsule link.
        """
        low, high = 0.001, 2.0
        if not self.powers_up(low):
            return 0.0
        if self.powers_up(high):
            return high
        while high - low > resolution:
            mid = 0.5 * (low + high)
            if self.powers_up(mid):
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)
