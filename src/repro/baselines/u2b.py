"""U2B ultra-wideband underwater backscatter baseline (Ghaffarivardavagh
et al., SIGCOMM'20), used by the paper's Fig. 16 comparison.

U2B's piezoelectric metamaterial node takes a much wider band than a
plain resonant disc, so its SNR degrades more gently with bitrate; the
paper notes it "achieves higher SNR than EcoCapsule when bitrate
exceeds 9 kbps since it takes a wider band".
"""

from __future__ import annotations

from ..link.simulation import SnrBitrateModel


def u2b_snr_model() -> SnrBitrateModel:
    """U2B's SNR-vs-bitrate curve.

    Lower reference SNR (underwater, wide front-end noise bandwidth) but
    a far higher band limit; the crossover against EcoCapsule's curve
    lands just above 9 kbps as in Fig. 16.
    """
    return SnrBitrateModel(
        snr_at_reference=16.5,
        reference_bitrate=1e3,
        band_limit=60e3,
    )


def crossover_bitrate(
    a: SnrBitrateModel, b: SnrBitrateModel, low: float = 1e3, high: float = 14e3
) -> float:
    """Bitrate (bit/s) where curve ``b`` overtakes curve ``a``.

    Scans for the sign change of ``a - b``; raises when they never cross
    in the window.
    """
    from ..errors import AcousticsError

    steps = 600
    previous = a.snr_db(low) - b.snr_db(low)
    for i in range(1, steps + 1):
        bitrate = low + (high - low) * i / steps
        diff = a.snr_db(bitrate) - b.snr_db(bitrate)
        if previous > 0.0 >= diff:
            return bitrate
        previous = diff
    raise AcousticsError("curves do not cross in the given window")
