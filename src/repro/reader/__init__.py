"""Reader: transmit chain (prism + PZT + PIE/FSK) and receive/decode DSP."""

from .receiver import DEFAULT_SAMPLE_RATE, ReaderReceiver
from .transmitter import ReaderTransmitter

__all__ = ["DEFAULT_SAMPLE_RATE", "ReaderReceiver", "ReaderTransmitter"]
