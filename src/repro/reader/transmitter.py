"""Reader transmitter: prism + PZT + drive chain + downlink synthesis.

Combines the transmit substrates into the Sec. 5.1 reader transmitter:
a 40 mm disc behind a PLA prism (default 60 deg), driven up to 250 V,
synthesizing PIE commands over FSK (the paper's anti-ring downlink) or
plain OOK (the comparison baseline of Fig. 20), plus the unmodulated
continuous body wave (CBW) used for charging and as the uplink carrier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..acoustics import WavePrism
from ..errors import DesignError
from ..phy import DownlinkModulator
from ..transducer import TransmitChain, reader_tx_disc


@dataclass
class ReaderTransmitter:
    """The reader's TX side.

    Args:
        prism: Injection wedge (None = direct contact, 0 deg incidence).
        modulator: Downlink modulation scheme and timing.
        chain: Analog drive chain; defaults to the paper's 40 mm disc.
        drive_voltage: Requested peak drive (V), up to the 250 V rail.
    """

    prism: Optional[WavePrism] = None
    modulator: DownlinkModulator = field(default_factory=DownlinkModulator)
    chain: TransmitChain = None
    drive_voltage: float = 100.0

    def __post_init__(self) -> None:
        if self.chain is None:
            self.chain = TransmitChain(disc=reader_tx_disc())
        if self.drive_voltage <= 0.0:
            raise DesignError("drive voltage must be positive")
        max_v = self.chain.amplifier.max_output_voltage
        if self.drive_voltage > max_v:
            raise DesignError(
                f"drive voltage {self.drive_voltage} V exceeds the "
                f"amplifier rail {max_v} V"
            )

    @property
    def carrier_frequency(self) -> float:
        return self.modulator.resonant_frequency

    def cbw(self, duration: float, sample_rate: float) -> np.ndarray:
        """Unmodulated continuous body wave for charging / uplink carrier."""
        if duration <= 0.0 or sample_rate <= 0.0:
            raise DesignError("duration and sample rate must be positive")
        n = int(round(duration * sample_rate))
        baseband = np.ones(n)
        carrier = np.full(n, self.carrier_frequency)
        return self.chain.transmit(baseband, carrier, sample_rate, self.drive_voltage)

    def command_waveform(
        self, bits: Sequence[int], sample_rate: float
    ) -> np.ndarray:
        """PIE-encoded downlink waveform for ``bits``."""
        baseband, carrier = self.modulator.drive_plan(bits, sample_rate)
        return self.chain.transmit(baseband, carrier, sample_rate, self.drive_voltage)

    def command_waveform_for_packet(self, packet, sample_rate: float) -> np.ndarray:
        """Waveform for a protocol packet (anything with ``to_bits``)."""
        return self.command_waveform(packet.to_bits(), sample_rate)

    def effective_peak_voltage(self) -> float:
        """Drive voltage actually reaching the disc at the carrier."""
        return self.chain.effective_drive_voltage(
            self.drive_voltage, self.carrier_frequency
        )

    def node_field_amplitude(self, channel_gain: float) -> float:
        """CBW peak voltage at a node's PZT for a channel amplitude gain.

        Folds the drive chain, the disc conversion and the prism's
        injection into one number the harvester consumes.
        """
        if channel_gain < 0.0:
            raise DesignError("channel gain cannot be negative")
        drive = self.effective_peak_voltage() * self.chain.disc.conversion
        injection = 1.0
        if self.prism is not None:
            quality = self.prism.injection_quality()
            injection = math.sqrt(max(quality.effective_snr_gain, 0.0))
        return drive * injection * channel_gain
