"""Reader receiver: RX PZT + oscilloscope-style capture + MATLAB-style DSP.

Re-implements the Sec. 5.1 receive chain: the bare RX disc adheres to
the wall (no prism), the capture runs at 1 MS/s, and the decoder

1. estimates the carrier frequency from the power carrier,
2. downconverts at the backscatter sideband (carrier + BLF) to dodge
   self-interference (Appendix C),
3. extracts the subcarrier envelope and removes DC,
4. runs the maximum-likelihood FM0 decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import DecodingError
from ..phy import Fm0Decoder, dsp
from ..phy.modem import BackscatterModulator

#: The paper's oscilloscope sampling rate (Sec. 5.1).
DEFAULT_SAMPLE_RATE = 1e6


@dataclass
class ReaderReceiver:
    """The reader's RX side and uplink decoder.

    Args:
        sample_rate: Capture rate (Hz); the paper uses 1 MS/s.
        modulator: The uplink scheme in force (BLF and bitrate), needed
            to pick the sideband and the symbol length.
    """

    sample_rate: float = DEFAULT_SAMPLE_RATE
    modulator: BackscatterModulator = field(default_factory=BackscatterModulator)

    def __post_init__(self) -> None:
        if self.sample_rate <= 0.0:
            raise DecodingError("sample rate must be positive")

    def estimate_carrier(self, waveform: np.ndarray) -> float:
        """Carrier estimate from the dominant (CBW) spectral peak."""
        return dsp.estimate_carrier(waveform, self.sample_rate)

    def baseband(
        self, waveform: np.ndarray, carrier: Optional[float] = None
    ) -> np.ndarray:
        """Backscatter baseband: sideband downconversion + envelope.

        Downconverts at ``carrier + BLF`` with a bandwidth wide enough
        for the FM0 data but narrow enough to reject the CBW at -BLF;
        the magnitude is the switch-state envelope.
        """
        if carrier is None:
            carrier = self.estimate_carrier(waveform)
        blf = self.modulator.blf
        # The CBW sits one BLF away from the sideband and is ~10x
        # stronger; keep the low-pass well inside half the offset so the
        # filtfilt'ed Butterworth buries it, while passing the FM0 band.
        bandwidth = min(0.5 * blf, 3.0 * self.modulator.bitrate)
        sideband = carrier + blf
        complex_baseband = dsp.downconvert(
            waveform, self.sample_rate, sideband, bandwidth
        )
        return np.abs(complex_baseband)

    def decode(
        self,
        waveform: np.ndarray,
        n_bits: int,
        carrier: Optional[float] = None,
    ) -> List[int]:
        """Decode ``n_bits`` of FM0 uplink data from a raw capture.

        Raises:
            DecodingError: when the capture is shorter than the payload.
        """
        if n_bits <= 0:
            raise DecodingError("n_bits must be positive")
        envelope = self.baseband(waveform, carrier)
        n = self.modulator.samples_per_symbol(self.sample_rate)
        needed = n * n_bits
        if envelope.size < needed:
            raise DecodingError(
                f"capture of {envelope.size} samples cannot hold "
                f"{n_bits} symbols of {n} samples"
            )
        payload = dsp.remove_dc(envelope[:needed])
        decoder = Fm0Decoder(samples_per_symbol=n)
        return decoder.decode(payload)

    def uplink_snr_db(
        self, waveform: np.ndarray, carrier: Optional[float] = None
    ) -> float:
        """Measured SNR (dB) of the backscatter sideband.

        Signal band: BLF +/- 2x bitrate around the upper sideband.
        Noise band: a quiet region above the second harmonic.
        """
        if carrier is None:
            carrier = self.estimate_carrier(waveform)
        blf = self.modulator.blf
        width = 2.0 * self.modulator.bitrate
        signal_band = (carrier + blf - width, carrier + blf + width)
        noise_low = carrier + 3.5 * blf
        noise_band = (noise_low, noise_low + 4.0 * width)
        return dsp.measure_snr_db(
            waveform, self.sample_rate, signal_band, noise_band
        )

    def spectrum(self, waveform: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One-sided power spectrum of a capture (Fig. 24 reproduction)."""
        return dsp.power_spectrum(waveform, self.sample_rate)
