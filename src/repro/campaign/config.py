"""Campaign configuration: the shape of a multi-month monitoring run.

A :class:`CampaignConfig` pins everything a campaign's results depend
on -- population, wall geometry, cadence, fault rates, storm schedule
and the master seed -- so the config dict inside a checkpoint is
sufficient to recompute any epoch from scratch.  The config is immutable
and serializes canonically (``repro/campaign-config/v1``); resuming a
campaign re-validates that the on-disk config matches byte-for-byte,
because a silently changed config would make "resume" produce a result
that is neither the old campaign nor a fresh one.

Epochs model one monitoring *visit* each: the paper's 17-month pilot at
one visit per week is 74 epochs (:data:`PILOT_MONTHS` /
:data:`EPOCHS_PER_MONTH`).  Storm epochs (the 15-23 July 2021 cyclone
window of Fig. 21, generalized to a recurring schedule) raise both the
response-channel variance and the fault intensity.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import CampaignError
from ..faults import FaultPlan

#: Schema tag for serialized campaign configs.
CAMPAIGN_CONFIG_SCHEMA = "repro/campaign-config/v1"

#: The paper's pilot duration and the default visit cadence.
PILOT_MONTHS = 17
EPOCHS_PER_MONTH = 4.35  # weekly visits: 52.2 weeks / 12 months

#: Nominal per-epoch fault rates (a plausibly bad week on the bridge);
#: storm epochs scale these up via ``storm_fault_intensity``.
DEFAULT_CAMPAIGN_FAULTS: Dict[str, float] = {
    "downlink_ber": 0.001,
    "uplink_ber": 0.001,
    "reply_loss_rate": 0.03,
    "brownout_rate": 0.02,
    "reader_dropout_rate": 0.08,
    "slot_jitter_rate": 0.01,
    "stuck_sensor_rate": 0.02,
}


def pilot_epochs(months: float = PILOT_MONTHS) -> int:
    """The epoch count for a pilot of ``months`` months at weekly visits."""
    if months <= 0.0:
        raise CampaignError(f"months must be positive, got {months}")
    return max(1, int(round(months * EPOCHS_PER_MONTH)))


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign's deterministic results depend on.

    Args:
        epochs: Monitoring visits to simulate (74 ~= 17 months weekly).
        nodes: Implanted capsules on the instrumented span.
        wall_length: Instrumented structure length (m).
        tx_voltage: Reader drive voltage during charge sessions (V).
        hours_per_epoch: Simulated hours of SHM data per epoch.
        samples_per_hour: Response-channel sampling cadence.
        seed: Master seed; every epoch derives its own streams from it.
        fault_rates: Nominal :class:`FaultPlan` rates (no seed/schema),
            scaled per epoch.  None disables fault injection entirely.
        fault_intensity: Multiplier applied on quiet epochs.
        storm_period_epochs: A storm hits every this-many epochs
            (0 disables storms).
        storm_duration_epochs: Consecutive storm epochs per hit.
        storm_fault_intensity: Fault multiplier during storm epochs.
        checkpoint_interval: Epochs between crash-safe checkpoints.
        checkpoint_keep: Good checkpoints retained for rollback.
        epoch_timeout_s: Watchdog bound on one epoch's wall time
            (<= 0 disables the watchdog).
    """

    epochs: int = 74
    nodes: int = 8
    wall_length: float = 8.0
    tx_voltage: float = 250.0
    hours_per_epoch: int = 168
    samples_per_hour: int = 1
    seed: int = 2021
    fault_rates: Optional[Mapping[str, float]] = field(
        default_factory=lambda: dict(DEFAULT_CAMPAIGN_FAULTS)
    )
    fault_intensity: float = 1.0
    storm_period_epochs: int = 26
    storm_duration_epochs: int = 2
    storm_fault_intensity: float = 3.0
    checkpoint_interval: int = 1
    checkpoint_keep: int = 5
    epoch_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        for name in ("epochs", "nodes", "hours_per_epoch", "samples_per_hour",
                     "checkpoint_interval", "checkpoint_keep"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise CampaignError(f"{name} must be a positive int, got {value!r}")
        for name in ("wall_length", "tx_voltage"):
            if getattr(self, name) <= 0.0:
                raise CampaignError(f"{name} must be positive")
        for name in ("fault_intensity", "storm_fault_intensity"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0.0:
                raise CampaignError(
                    f"{name} must be finite and non-negative, got {value}"
                )
        if self.storm_period_epochs < 0 or self.storm_duration_epochs < 0:
            raise CampaignError("storm schedule fields cannot be negative")
        if self.fault_rates is not None:
            # Validate eagerly (and normalize to a plain dict) so a bad
            # rate fails at config time, not mid-campaign at epoch 40.
            plan = FaultPlan.from_dict({**dict(self.fault_rates), "seed": 0})
            object.__setattr__(
                self, "fault_rates",
                {k: getattr(plan, k) for k in sorted(dict(self.fault_rates))},
            )

    # ------------------------------------------------------------------
    # Schedule helpers
    # ------------------------------------------------------------------

    def is_storm_epoch(self, epoch: int) -> bool:
        """Whether ``epoch`` falls in a scheduled storm window.

        Storms occupy the last ``storm_duration_epochs`` epochs of each
        ``storm_period_epochs``-long cycle, mirroring the pilot's quiet
        weeks followed by the cyclone window.
        """
        if self.storm_period_epochs <= 0 or self.storm_duration_epochs <= 0:
            return False
        phase = epoch % self.storm_period_epochs
        return phase >= max(
            0, self.storm_period_epochs - self.storm_duration_epochs
        )

    def storm_epochs(self) -> Tuple[int, ...]:
        """Every scheduled storm epoch inside the campaign."""
        return tuple(e for e in range(self.epochs) if self.is_storm_epoch(e))

    def epoch_fault_plan(self, epoch: int) -> Optional[FaultPlan]:
        """The fault plan epoch ``epoch`` runs under (None when clean).

        Seeded per epoch from the master seed so fault draws are
        independent across epochs and recomputable from the config
        alone -- a resumed campaign replays exactly the same faults.
        """
        if self.fault_rates is None:
            return None
        intensity = (
            self.storm_fault_intensity
            if self.is_storm_epoch(epoch)
            else self.fault_intensity
        )
        base = FaultPlan.from_dict(
            {**dict(self.fault_rates), "seed": self.seed * 1_000_003 + epoch}
        )
        plan = base.scaled(intensity)
        return plan if plan.active else None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (includes the schema tag)."""
        payload: Dict[str, Any] = {"schema": CAMPAIGN_CONFIG_SCHEMA}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            payload[f.name] = dict(value) if isinstance(value, Mapping) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignConfig":
        """Rebuild a config from :meth:`to_dict` output, strictly."""
        if not isinstance(payload, Mapping):
            raise CampaignError(
                f"campaign config must be an object, got {type(payload).__name__}"
            )
        schema = payload.get("schema", CAMPAIGN_CONFIG_SCHEMA)
        if schema != CAMPAIGN_CONFIG_SCHEMA:
            raise CampaignError(
                f"unsupported campaign-config schema {schema!r} "
                f"(expected {CAMPAIGN_CONFIG_SCHEMA!r})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known - {"schema"})
        if unknown:
            raise CampaignError(
                f"unknown campaign-config field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        kwargs = {k: v for k, v in payload.items() if k != "schema"}
        return cls(**kwargs)
