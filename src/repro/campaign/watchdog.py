"""Watchdog + signal supervision for the campaign epoch loop.

Two distinct hazards, two mechanisms:

* **A hung epoch** (infinite loop, pathological parameters) would stall
  an unattended campaign forever.  :func:`epoch_deadline` bounds one
  epoch's wall time with a ``SIGALRM`` interval timer; on expiry the
  epoch body is interrupted with :class:`EpochTimeout`, which the
  driver converts into a recorded ``epoch_timeout`` degradation and
  moves on.  Off the main thread (or on platforms without ``SIGALRM``)
  the deadline degrades to unenforced -- the driver still measures and
  reports elapsed time, it just cannot interrupt.

* **An operator (or orchestrator) stopping the run**: SIGINT/SIGTERM
  must not kill the process mid-write.  :class:`ShutdownGuard` converts
  the first signal into a flag the driver polls at epoch boundaries,
  so the campaign flushes a final checkpoint and exits cleanly; a
  second signal restores default handling (an insistent operator wins).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from types import FrameType
from typing import Iterator, List, Optional


class EpochTimeout(Exception):
    """Raised inside an epoch body when its wall-clock budget expires."""


def _on_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


def watchdog_available() -> bool:
    """Whether the hard (interrupting) watchdog can be armed here."""
    return _on_main_thread() and hasattr(signal, "SIGALRM")


@contextmanager
def epoch_deadline(seconds: float) -> Iterator[None]:
    """Bound the body's wall time; raises :class:`EpochTimeout` on expiry.

    ``seconds <= 0`` disables the deadline.  Nested use is not needed by
    the driver and not supported (the inner deadline would clobber the
    outer timer).
    """
    if seconds <= 0.0 or not watchdog_available():
        yield
        return

    def _alarm(signum: int, frame: Optional[FrameType]) -> None:
        raise EpochTimeout(f"epoch exceeded its {seconds:.1f} s wall budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class ShutdownGuard:
    """Deferred SIGINT/SIGTERM handling for checkpoint-safe shutdown.

    Used as a context manager around the epoch loop::

        with ShutdownGuard() as guard:
            for epoch in ...:
                if guard.stop_requested:
                    break  # driver flushes a final checkpoint
                ...

    Outside the main thread, signal handlers cannot be installed; the
    guard then never reports a stop request and the surrounding process
    keeps its own handling (e.g. a pool worker's).
    """

    _SIGNALS = ("SIGINT", "SIGTERM")

    def __init__(self) -> None:
        self.stop_requested = False
        self.signal_name: Optional[str] = None
        self._previous: List = []
        self._installed = False

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        if self.stop_requested:
            # Second signal: the operator really means it -- restore
            # default behaviour and let python raise KeyboardInterrupt
            # (SIGINT) or die (SIGTERM) on the spot.
            self._restore()
            signal.raise_signal(signum)
            return
        self.stop_requested = True
        self.signal_name = signal.Signals(signum).name

    def __enter__(self) -> "ShutdownGuard":
        if _on_main_thread():
            for name in self._SIGNALS:
                signum = getattr(signal, name, None)
                if signum is None:  # pragma: no cover - non-posix
                    continue
                self._previous.append(
                    (signum, signal.signal(signum, self._handle))
                )
            self._installed = True
        return self

    def _restore(self) -> None:
        if not self._installed:
            return
        for signum, handler in self._previous:
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous = []
        self._installed = False

    def __exit__(self, *exc_info) -> None:
        self._restore()
