"""The campaign driver: a resumable, supervised multi-month pilot run.

One *epoch* simulates one monitoring visit to the instrumented
footbridge: a wall charging session over a (possibly hostile) channel,
TDMA inventory and sensor reads, then the epoch's SHM samples --
acceleration and stress series whose variance tracks pedestrian load
and the storm schedule -- appended to the campaign's accumulated
record.  Running ``config.epochs`` epochs and analysing the accumulated
series reproduces the paper's Fig. 21 capstone (anomaly windows in both
channels during storms, mutual sensor verification, compliance,
PAO health grades) at any horizon up to and beyond the 17-month pilot.

The robustness contract (see ``docs/CAMPAIGN.md``):

* every epoch is a pure function of (config, state-at-epoch-start), so
  a campaign killed at *any* point and resumed from its last checkpoint
  produces a final result **byte-identical** to an uninterrupted run;
* checkpoints are verified on load, quarantined when corrupt, and
  rolled back past (the replayed epochs are simply recomputed);
* a hung epoch is interrupted by the watchdog and recorded as an
  ``epoch_timeout`` degradation -- with the master RNG and injector
  state restored to the epoch boundary so later epochs are unaffected;
* SIGINT/SIGTERM flush a final checkpoint before the process exits.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..acoustics import StructureGeometry
from ..errors import CampaignError, CheckpointError, PartitionLockError, StoreError
from ..faults import FaultInjector, FaultPlan
from ..faults.io import reclaim_tmp_files
from ..link import PlacedNode, PowerUpLink, WallSession
from ..materials import get_concrete
from ..node import EcoCapsule, Environment
from ..obs import (
    obs_counter,
    obs_enabled,
    obs_event,
    obs_gauge,
    obs_histogram,
    obs_span,
)
from ..obs.pipeline import MetricsRecorder
from ..runtime.serialize import (
    canonical_json,
    write_json_atomic,
    write_json_atomic_verified,
)
from ..shm import (
    AnomalyWindow,
    ComplianceReport,
    Footbridge,
    JulyTimeSeriesGenerator,
    SECTION_NAMES,
    check_compliance,
    cross_validate,
    detect_anomalies,
    grade_sections,
    worst_grade,
)
from ..store import OBS_BUILDING, TelemetryStore, ingest_series, ingest_session
from .checkpoint import CheckpointStore
from .config import CampaignConfig
from .log import EpochLog
from .state import CampaignState
from .watchdog import EpochTimeout, ShutdownGuard, epoch_deadline

#: Schema tag for the final-result file written into the state dir.
CAMPAIGN_RESULT_SCHEMA = "repro/campaign-result/v1"

#: Filenames inside a campaign state directory.
CHECKPOINT_DIRNAME = "checkpoints"
EPOCH_LOG_FILENAME = "epochs.jsonl"
RESULT_FILENAME = "result.json"

#: Series naming for telemetry exported by a campaign (``--store``).
STORE_BUILDING = "campaign"
STORE_WALL = "pilot"

#: Heartbeat ticks buffered in memory between ``_obs`` store flushes.
#: Ticks are pure in-memory delta computations; the batched flush (one
#: non-durable block per touched series) amortises manifest rewrites so
#: the recorder stays inside the <= 2% wall-time budget pinned by
#: ``BENCH_obs.json``.  A crash loses at most this many ticks of
#: self-telemetry -- never any experiment data.
OBS_FLUSH_EPOCHS = 64


@dataclass(frozen=True)
class CampaignResult:
    """The deterministic final artifact of a completed campaign.

    Contains nothing wall-clock-dependent: two runs of the same config
    -- interrupted, killed, resumed, or neither -- serialize to
    identical bytes (see :func:`result_hash`).
    """

    epochs: int
    epochs_run: int
    storm_epochs: Tuple[int, ...]
    epoch_records: List[Dict[str, Any]]
    hours: np.ndarray
    acceleration: np.ndarray
    stress_mpa: np.ndarray
    acceleration_anomalies: List[AnomalyWindow]
    stress_anomalies: List[AnomalyWindow]
    sensors_mutually_verified: bool
    storms_detected: int
    compliance: ComplianceReport
    grade_fractions: Dict[str, float]
    fault_totals: Dict[str, int]
    timeouts: List[int]

    @property
    def storm_detected_in_both(self) -> bool:
        """Fig. 21's headline: every scheduled storm seen by both channels."""
        return len(self.storm_epochs) > 0 and self.storms_detected == len(
            self.storm_epochs
        )

    @property
    def health_at_or_above_b(self) -> bool:
        """The paper's PAO result: health stayed at B or above throughout."""
        return all(g in ("A", "B") for g in self.grade_fractions)

    @property
    def degraded_epochs(self) -> int:
        return sum(1 for r in self.epoch_records if r.get("degraded"))

    @property
    def mean_coverage(self) -> float:
        covered = [
            r["coverage"] for r in self.epoch_records if "coverage" in r
        ]
        if not covered:
            raise CampaignError("campaign completed no successful epochs")
        return float(sum(covered) / len(covered))


def result_hash(result: CampaignResult) -> str:
    """SHA-256 over the canonical JSON of a result -- the identity the
    kill-and-resume test (and CI stage 5) compares."""
    return hashlib.sha256(
        canonical_json(result).encode("utf-8")
    ).hexdigest()


@dataclass
class CampaignOutcome:
    """What one ``run()``/``resume()`` call actually did."""

    result: Optional[CampaignResult]  # None when interrupted before the end
    state: CampaignState
    interrupted: bool = False
    signal_name: Optional[str] = None
    resumed_from_epoch: Optional[int] = None
    result_file: Optional[Path] = None

    @property
    def completed(self) -> bool:
        return self.result is not None


def _epoch_rng(seed: int, epoch: int, channel: str) -> np.random.Generator:
    """A per-(epoch, channel) numpy stream, PYTHONHASHSEED-stable."""
    digest = hashlib.sha256(f"{seed}:{epoch}:{channel}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class EpochSamples:
    """One epoch's SHM sample block, assembled exactly once.

    Both consumers -- the checkpointed state accumulation and the
    telemetry-store export -- read from this object, so they can never
    disagree about what an epoch produced.
    """

    epoch: int
    storm: bool
    hours: np.ndarray
    acceleration: np.ndarray
    stress_mpa: np.ndarray
    counts: np.ndarray

    def accumulate(self, state: CampaignState) -> None:
        """Fold this epoch's series into the checkpointed state."""
        state.hours.extend(float(v) for v in self.hours)
        state.acceleration.extend(float(v) for v in self.acceleration)
        state.stress_mpa.extend(float(v) for v in self.stress_mpa)


class Campaign:
    """A long-running, checkpointed pilot simulation.

    Args:
        config: What to simulate (see :class:`CampaignConfig`).
        state_dir: Where checkpoints, the epoch log and the final
            result live.  None runs fully in memory -- no persistence,
            no resume, but identical results (the experiment-registry
            entry uses this mode).
        epoch_hook: Test/CI seam called once per epoch *inside* the
            watchdog deadline, before the epoch body; may sleep (to
            give a kill window or trip the watchdog) but must not
            perturb any RNG.
        store_dir: When set, every epoch's telemetry (structure-level
            series plus the survey's sensor reports) is exported to the
            :class:`~repro.store.TelemetryStore` at this path.  Purely
            additive: the campaign result is byte-identical with or
            without a store attached.
        record_obs: When True (requires ``store_dir``), an obs ->
            store :class:`~repro.obs.pipeline.MetricsRecorder` ticks at
            every epoch boundary, appending the campaign's own health
            metrics (epoch wall time, checkpoint/export latency,
            degradations, timeouts, RSS) as ``_obs/campaign`` series.
            Same contract as the store itself: zero effect on the
            result bytes -- the recorder never draws from experiment
            RNG streams, and its timestamps are the deterministic
            epoch-boundary hours.
        store_building: Building component for exported series (and the
            ``_obs`` wall for the recorder).  Fleet workers set this to
            their shard's building name so many campaigns can share one
            store root without colliding partitions.
        store_wall: Wall component for exported series.
    """

    def __init__(
        self,
        config: CampaignConfig,
        state_dir: Optional[Union[str, Path]] = None,
        epoch_hook: Optional[Callable[[int], None]] = None,
        store_dir: Optional[Union[str, Path]] = None,
        record_obs: bool = False,
        store_building: str = STORE_BUILDING,
        store_wall: str = STORE_WALL,
    ):
        self.config = config
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.epoch_hook = epoch_hook
        self.store_building = store_building
        self.store_wall = store_wall
        self.store: Optional[CheckpointStore] = None
        self.log: Optional[EpochLog] = None
        self.telemetry: Optional[TelemetryStore] = None
        self.recorder: Optional[MetricsRecorder] = None
        #: Epochs whose ``--store`` export failed recoverably (ENOSPC,
        #: persistent write faults): the campaign kept computing, the
        #: degradation is recorded here and in the epoch log.
        self.export_failures: List[int] = []
        if self.state_dir is not None:
            # The state dir is single-owner by contract, so any *.tmp
            # here was leaked by a dead predecessor (crash between
            # mkstemp and rename, or a dropped rename).
            reclaim_tmp_files(self.state_dir, recursive=True, scope="campaign")
            self.store = CheckpointStore(
                self.state_dir / CHECKPOINT_DIRNAME, keep=config.checkpoint_keep
            )
            self.log = EpochLog(self.state_dir / EPOCH_LOG_FILENAME)
        if store_dir is not None:
            self.telemetry = TelemetryStore(store_dir)
        if record_obs:
            if self.telemetry is None:
                raise CampaignError(
                    "record_obs requires a telemetry store (store_dir)"
                )
            self.recorder = MetricsRecorder(
                self.telemetry,
                source=self.store_building,
                flush_every=OBS_FLUSH_EPOCHS,
            )

    # ------------------------------------------------------------------
    # Construction / resume
    # ------------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        state_dir: Union[str, Path],
        epoch_hook: Optional[Callable[[int], None]] = None,
        store_dir: Optional[Union[str, Path]] = None,
        record_obs: bool = False,
        store_building: str = STORE_BUILDING,
        store_wall: str = STORE_WALL,
    ) -> Tuple["Campaign", CampaignState]:
        """Reload a campaign from its newest good checkpoint.

        Corrupt checkpoints are quarantined and rolled past; raises
        :class:`~repro.errors.CheckpointError` when no usable
        checkpoint survives and :class:`~repro.errors.CampaignError`
        when the directory has never hosted a campaign.

        An attached telemetry store is healed the same way the epoch
        log is: exports from epochs past the checkpoint boundary (they
        will be replayed and re-exported) are truncated, and stale
        rollups are cleared for the next ``compact``.
        """
        store = CheckpointStore(Path(state_dir) / CHECKPOINT_DIRNAME)
        payload = store.load_latest()
        if payload is None:
            raise CampaignError(
                f"nothing to resume: no checkpoints under {state_dir}"
            )
        config = CampaignConfig.from_dict(payload["config"])
        state = CampaignState.from_dict(payload["state"])
        campaign = cls(
            config, state_dir=state_dir, epoch_hook=epoch_hook,
            store_dir=store_dir, record_obs=record_obs,
            store_building=store_building, store_wall=store_wall,
        )
        campaign._sync_log(state)
        if campaign.telemetry is not None:
            # Heal exactly this campaign's partition: its experiment
            # series and its own _obs heartbeat wall (both stamped on
            # deterministic epoch hours).  Every other building -- a
            # fleet sibling sharing the store root, or a serve-tier
            # recorder writing wall-clock hours -- must not lose its
            # history to *this* campaign's resume.
            campaign.telemetry.truncate_from(
                state.epoch * float(config.hours_per_epoch),
                keys=[
                    key for key in campaign.telemetry.keys()
                    if key.building == campaign.store_building
                    or (
                        key.building == OBS_BUILDING
                        and key.wall == campaign.store_building
                    )
                ],
            )
        obs_counter("campaign.resumes").inc()
        obs_event(
            "info", "campaign.resumed",
            epoch=state.epoch, state_dir=str(state_dir),
        )
        return campaign, state

    def _sync_log(self, state: CampaignState) -> None:
        """Heal the epoch log: truncate torn tails and stale records.

        The log may end mid-line (SIGKILL during append) or run ahead
        of the checkpoint (checkpoint_interval > 1); both are cut back
        so the replayed epochs re-append cleanly.
        """
        if self.log is None:
            return
        records = self.log.recover()
        fresh = [r for r in records if r.get("epoch", 0) < state.epoch]
        if len(fresh) != len(records):
            self.log.rewrite(fresh)

    # ------------------------------------------------------------------
    # The epoch body
    # ------------------------------------------------------------------

    def _build_wall(
        self, state: CampaignState
    ) -> Tuple[PowerUpLink, List[PlacedNode]]:
        """This epoch's deployment, drawn from the master RNG stream.

        Environmental drift (temperature, humidity, strain) comes from
        ``state.rng`` -- the serialized master stream -- so deployments
        evolve continuously across epochs *and* across resumes.
        """
        config = self.config
        concrete = get_concrete("UHPC")
        wall = StructureGeometry(
            "campaign wall",
            length=config.wall_length,
            thickness=0.20,
            medium=concrete.medium,
        )
        budget = PowerUpLink(wall)
        reach = min(
            config.wall_length / 2.0,
            0.85 * budget.max_range(config.tx_voltage),
        )
        if reach <= 0.3:
            raise CampaignError(
                f"tx voltage {config.tx_voltage} V cannot charge past 0.3 m"
            )
        rng = state.rng
        placed: List[PlacedNode] = []
        for node_id in range(1, config.nodes + 1):
            env = Environment(
                temperature=rng.uniform(18.0, 32.0),
                humidity=rng.uniform(55.0, 90.0),
                strain=rng.uniform(-200.0, 300.0),
            )
            placed.append(
                PlacedNode(
                    capsule=EcoCapsule(
                        node_id=node_id,
                        environment=env,
                        seed=self.config.seed + node_id,
                    ),
                    distance=rng.uniform(0.3, reach),
                )
            )
        return budget, placed

    def _epoch_series(
        self, epoch: int, storm: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One epoch of SHM samples: (hours, acceleration, stress, counts)."""
        config = self.config
        n = config.hours_per_epoch * config.samples_per_hour
        start_hour = float(epoch * config.hours_per_epoch)
        hours = start_hour + np.arange(n) / config.samples_per_hour
        load = JulyTimeSeriesGenerator._pedestrian_load(hours)
        diurnal = JulyTimeSeriesGenerator._diurnal(hours)

        accel_rng = _epoch_rng(config.seed, epoch, "acceleration")
        envelope = 0.012 * (0.3 + load) * (2.5 if storm else 1.0)
        acceleration = accel_rng.normal(0.0, 1.0, size=n) * envelope

        stress_rng = _epoch_rng(config.seed, epoch, "stress")
        swing = 10.0
        stress = (
            -60.0
            + swing * diurnal
            - 0.35 * swing * load
            + stress_rng.normal(0.0, swing * 0.08, size=n)
        )
        if storm:
            stress = stress + (
                -1.4 * swing
                + 0.8 * swing * np.sin(2.0 * np.pi * hours / 18.0)
            )

        count_rng = _epoch_rng(config.seed, epoch, "pedestrians")
        lam = 60 * 0.22 * load * (0.25 if storm else 1.0)
        counts = count_rng.poisson(np.maximum(lam, 0.0))
        return hours, acceleration, stress, counts

    def _epoch_samples(self, epoch: int, storm: bool) -> EpochSamples:
        """The single source of one epoch's SHM samples.

        Both the checkpoint path (:meth:`EpochSamples.accumulate`) and
        the store-export path (:meth:`_export_epoch`) consume this one
        object -- the series are assembled exactly once per epoch.
        """
        hours, acceleration, stress, counts = self._epoch_series(epoch, storm)
        return EpochSamples(
            epoch=epoch,
            storm=storm,
            hours=hours,
            acceleration=acceleration,
            stress_mpa=stress,
            counts=counts,
        )

    def _export_epoch(self, samples: EpochSamples, session_result: Any) -> None:
        """Export one completed epoch's telemetry to the attached store.

        One flush per epoch: each touched series gains exactly one
        block spanning this epoch's hours, so a resume can cut replayed
        epochs on an exact boundary.  Survey reports are stamped at the
        epoch's first hour (the monitoring visit's time).
        """
        if self.telemetry is None:
            return
        started = time.perf_counter()
        visit_hour = float(samples.epoch * self.config.hours_per_epoch)
        building, wall = self.store_building, self.store_wall
        try:
            with self.telemetry.writer() as writer:
                ingest_series(
                    writer, building, wall, "acceleration",
                    samples.hours, samples.acceleration,
                )
                ingest_series(
                    writer, building, wall, "stress_mpa",
                    samples.hours, samples.stress_mpa,
                )
                ingest_session(
                    writer, session_result, building, wall,
                    visit_hour,
                )
        except PartitionLockError:
            # A live foreign writer on our partition is a deployment
            # error (two campaigns racing one building), never a disk
            # fault -- stay loud.
            raise
        except (OSError, StoreError) as exc:
            # The store is an *additive* export: a full or failing disk
            # under it must not take the pilot down.  Record the
            # degradation (epoch log + obs) and keep computing; a later
            # resume heals the gap via truncate_from + replay.
            self.export_failures.append(samples.epoch)
            obs_counter("io.export_failures").inc()
            obs_event(
                "warning", "campaign.export_degraded",
                epoch=samples.epoch, error=str(exc),
            )
            return
        obs_counter("campaign.store_epochs").inc()
        obs_histogram("campaign.export_s").observe(
            time.perf_counter() - started
        )

    def _epoch_grade(self, epoch: int, counts: np.ndarray) -> str:
        """The bridge-level PAO grade for this epoch's busiest hour."""
        bridge = Footbridge()
        total = int(np.max(counts)) if counts.size else 0
        weight_rng = _epoch_rng(self.config.seed, epoch, "sections")
        weights = weight_rng.dirichlet(np.ones(len(SECTION_NAMES)))
        section_counts = {
            s: int(round(total * w)) for s, w in zip(SECTION_NAMES, weights)
        }
        speeds = {}
        for section, count in section_counts.items():
            area = bridge.section_area(section)
            density = count / area
            speeds[section] = (
                max(0.0, 1.4 * (1.0 - density / 0.9)) if count else 0.0
            )
        areas = {s: bridge.section_area(s) for s in SECTION_NAMES}
        healths = grade_sections(areas, section_counts, speeds, "hong_kong")
        return worst_grade(healths)

    def _stuck_injector(
        self, state: CampaignState, rate: float
    ) -> Optional[FaultInjector]:
        """The cross-epoch stuck-sensor injector, rehydrated from state.

        Built fresh every epoch from the checkpointed latches, so its
        behaviour is a pure function of (config, boundary state) -- the
        property the resume-determinism contract rests on.  Keys not yet
        in ``state.stuck_latches`` get their one-shot healthy/stuck
        decision here (at this epoch's -- possibly storm-scaled --
        rate); keys already decided pass straight to the latch logic.
        """
        if rate <= 0.0 and not state.stuck_latches:
            return None
        injector = FaultInjector(
            FaultPlan(seed=self.config.seed, stuck_sensor_rate=max(rate, 1e-12))
        )
        injector.restore_state(
            {
                "streams": {},
                "stuck": [
                    [int(key.split(":", 1)[0]), key.split(":", 1)[1], latched]
                    for key, latched in sorted(state.stuck_latches.items())
                ],
                "counts": {},
            }
        )
        return injector

    def _run_epoch(self, state: CampaignState) -> Dict[str, Any]:
        """Advance ``state`` by one epoch; returns the epoch record."""
        config = self.config
        epoch = state.epoch
        storm = config.is_storm_epoch(epoch)
        if self.epoch_hook is not None:
            self.epoch_hook(epoch)

        plan = config.epoch_fault_plan(epoch)
        stuck_rate = plan.stuck_sensor_rate if plan is not None else 0.0
        if plan is not None:
            # Stuck sensors are campaign-scoped (a latched sensor stays
            # latched for the rest of the pilot), handled by the
            # cross-epoch injector below -- not re-drawn per session.
            plan = dataclasses.replace(plan, stuck_sensor_rate=0.0)
            if not plan.active:
                plan = None

        budget, placed = self._build_wall(state)
        session = WallSession(
            budget=budget,
            nodes=placed,
            tx_voltage=config.tx_voltage,
            initial_q=3,
            seed=config.seed * 7_919 + epoch,
            faults=plan,
        )
        session_result = session.run(max_rounds=12)

        stuck = self._stuck_injector(state, stuck_rate)
        stuck_reads = 0
        if stuck is not None:
            for node_id in sorted(session_result.reports):
                session_result.reports[node_id] = [
                    stuck.latch_stuck(report)
                    for report in session_result.reports[node_id]
                ]
            stuck_reads = stuck.counts.get("stuck_reads", 0)
            exported = stuck.export_state()
            state.stuck_latches = {
                f"{node_id}:{channel}": latched
                for node_id, channel, latched in exported["stuck"]
            }

        samples = self._epoch_samples(epoch, storm)
        samples.accumulate(state)
        self._export_epoch(samples, session_result)

        grade = self._epoch_grade(epoch, samples.counts)
        state.grade_counts[grade] = state.grade_counts.get(grade, 0) + 1

        fault_counts = dict(session_result.fault_counts)
        if stuck_reads:
            fault_counts["stuck_reads"] = (
                fault_counts.get("stuck_reads", 0) + stuck_reads
            )
        state.absorb_faults(fault_counts)

        return {
            "epoch": epoch,
            "status": "ok",
            "storm": storm,
            "coverage": session_result.coverage,
            "read_fraction": len(session_result.reports) / config.nodes,
            "reports": sum(
                len(r) for r in session_result.reports.values()
            ),
            "retries": session_result.retries,
            "rounds_used": session_result.rounds_used,
            "charge_attempts": session_result.charge_attempts,
            "degraded": session_result.degraded,
            "grade": grade,
            "fault_counts": fault_counts,
        }

    # ------------------------------------------------------------------
    # The supervised loop
    # ------------------------------------------------------------------

    def _checkpoint(self, state: CampaignState) -> None:
        if self.store is not None:
            started = time.perf_counter()
            self.store.save(
                state.epoch, self.config.to_dict(), state.to_dict()
            )
            obs_histogram("campaign.checkpoint_s").observe(
                time.perf_counter() - started
            )

    def _pre_register_obs(self) -> None:
        """Touch every heartbeat metric once, so the recorder's first
        tick writes the full ``_obs/campaign`` series set (at zero) even
        for a short clean run -- dashboards and the ``obs report`` verb
        can rely on the series existing, not just on lucky incidents.
        """
        if not obs_enabled():
            return
        obs_counter("campaign.epochs_run")
        obs_counter("campaign.degradations")
        obs_counter("campaign.epoch_timeouts")
        obs_counter("campaign.retries")
        obs_counter("campaign.store_epochs")
        obs_gauge("campaign.epoch")
        obs_gauge("campaign.epoch_wall_s")
        obs_histogram("campaign.epoch_s")
        obs_histogram("campaign.checkpoint_s")
        obs_histogram("campaign.export_s")

    def _supervised_epoch(self, state: CampaignState) -> None:
        """One epoch under the watchdog: run, record, log, checkpoint,
        heartbeat.  Mutates ``state`` in place."""
        config = self.config
        epoch = state.epoch
        boundary_rng = state.rng.getstate()
        boundary_latches = dict(state.stuck_latches)
        started = time.perf_counter()
        try:
            with obs_span(
                "campaign.epoch", epoch=epoch,
                storm=config.is_storm_epoch(epoch),
            ):
                with epoch_deadline(config.epoch_timeout_s):
                    record = self._run_epoch(state)
        except EpochTimeout:
            # Roll the mutable streams back to the epoch boundary so
            # the *next* epoch sees exactly the state it would have
            # seen had this epoch never drawn anything.
            state.rng.setstate(boundary_rng)
            state.stuck_latches = boundary_latches
            record = {
                "epoch": epoch,
                "status": "epoch_timeout",
                "storm": config.is_storm_epoch(epoch),
                "degraded": True,
            }
            state.timeouts.append(epoch)
            obs_counter("campaign.epoch_timeouts").inc()
            obs_event(
                "warning", "campaign.epoch_timeout",
                epoch=epoch, budget_s=config.epoch_timeout_s,
            )
        state.epoch_records.append(record)
        state.epoch = epoch + 1
        elapsed = time.perf_counter() - started
        obs_counter("campaign.epochs_run").inc()
        if record.get("degraded"):
            obs_counter("campaign.degradations").inc()
        obs_counter("campaign.retries").inc(record.get("retries", 0))
        obs_gauge("campaign.epoch").set(state.epoch)
        obs_gauge("campaign.epoch_wall_s").set(elapsed)
        obs_histogram("campaign.epoch_s").observe(elapsed)
        if self.log is not None:
            # Wall time and export degradation are audit-log-only: they
            # must never reach state.epoch_records, which feed the
            # byte-stable result.json (an io-faulted run hashes
            # identically to a clean one).
            extra: Dict[str, Any] = {"elapsed_s": round(elapsed, 6)}
            if epoch in self.export_failures:
                extra["export_degraded"] = True
            self.log.append({**record, **extra})
        if (
            state.epoch % config.checkpoint_interval == 0
            or state.epoch == config.epochs
        ):
            self._checkpoint(state)
        if self.recorder is not None:
            # Heartbeat stamped at the completed epoch's START hour
            # (after the log/checkpoint so their latencies land in this
            # tick): resume truncation cuts t >= boundary *
            # hours_per_epoch, which then removes exactly the replayed
            # epochs' ticks and no others.
            self.recorder.record(t=epoch * float(config.hours_per_epoch))

    def run(self, state: Optional[CampaignState] = None) -> CampaignOutcome:
        """Drive the campaign from ``state`` (or epoch zero) to the end.

        Returns a :class:`CampaignOutcome`; when a SIGINT/SIGTERM
        arrived the outcome is ``interrupted`` with a final checkpoint
        already flushed, and a later :meth:`resume` continues it.
        """
        config = self.config
        if state is None:
            state = CampaignState.fresh(config.seed)
            self._checkpoint(state)  # epoch-0 anchor for early kills
        resumed_from = state.epoch if state.epoch else None
        interrupted = False
        signal_name: Optional[str] = None
        self._pre_register_obs()

        try:
            with ShutdownGuard() as guard:
                while state.epoch < config.epochs:
                    if guard.stop_requested:
                        interrupted, signal_name = True, guard.signal_name
                        break
                    self._supervised_epoch(state)
        finally:
            if self.recorder is not None:
                # Buffered heartbeat ticks reach the store even when an
                # exception (or KeyboardInterrupt) unwinds the loop;
                # anything past the last checkpoint is truncated and
                # replayed on resume anyway.
                self.recorder.flush()
        if interrupted:
            self._checkpoint(state)
            obs_counter("campaign.interrupts").inc()
            obs_event(
                "warning", "campaign.interrupted",
                epoch=state.epoch, signal=signal_name or "?",
            )
            return CampaignOutcome(
                result=None,
                state=state,
                interrupted=True,
                signal_name=signal_name,
                resumed_from_epoch=resumed_from,
            )

        result = self._finalize(state)
        result_file = None
        if self.state_dir is not None:
            # The terminal artifact is read back and compared after the
            # rename: a dropped rename or torn result would otherwise be
            # the one silent failure nothing downstream could detect.
            result_file = write_json_atomic_verified(
                self.state_dir / RESULT_FILENAME,
                {
                    "schema": CAMPAIGN_RESULT_SCHEMA,
                    "sha256": result_hash(result),
                    "result": result,
                },
            )
        return CampaignOutcome(
            result=result,
            state=state,
            resumed_from_epoch=resumed_from,
            result_file=result_file,
        )

    # ------------------------------------------------------------------
    # Analytics
    # ------------------------------------------------------------------

    def _finalize(self, state: CampaignState) -> CampaignResult:
        """Run the Fig. 21 analytics over the accumulated campaign."""
        config = self.config
        hours = np.asarray(state.hours, dtype=float)
        acceleration = np.asarray(state.acceleration, dtype=float)
        stress = np.asarray(state.stress_mpa, dtype=float)
        if hours.size == 0:
            raise CampaignError(
                "campaign accumulated no samples (every epoch timed out?)"
            )

        accel_windows = detect_anomalies(hours, acceleration)
        stress_dev = stress - float(np.median(stress))
        stress_windows = detect_anomalies(hours, stress_dev)

        storm_epochs = tuple(
            e for e in config.storm_epochs() if e < state.epoch
        )
        storms_detected = 0
        for epoch in storm_epochs:
            window = AnomalyWindow(
                epoch * float(config.hours_per_epoch),
                (epoch + 1) * float(config.hours_per_epoch),
            )
            if any(w.overlaps(window) for w in accel_windows) and any(
                w.overlaps(window) for w in stress_windows
            ):
                storms_detected += 1

        compliance = check_compliance(
            Footbridge().limits, acceleration, stress
        )
        total_graded = sum(state.grade_counts.values())
        grade_fractions = {
            g: c / total_graded
            for g, c in sorted(state.grade_counts.items())
        }

        return CampaignResult(
            epochs=config.epochs,
            epochs_run=state.epoch,
            storm_epochs=storm_epochs,
            epoch_records=list(state.epoch_records),
            hours=hours,
            acceleration=acceleration,
            stress_mpa=stress,
            acceleration_anomalies=accel_windows,
            stress_anomalies=stress_windows,
            sensors_mutually_verified=cross_validate(
                accel_windows, stress_windows
            ),
            storms_detected=storms_detected,
            compliance=compliance,
            grade_fractions=grade_fractions,
            fault_totals=dict(sorted(state.fault_totals.items())),
            timeouts=list(state.timeouts),
        )


# ----------------------------------------------------------------------
# Module-level conveniences (the CLI's verbs)
# ----------------------------------------------------------------------

def run_campaign(
    config: CampaignConfig,
    state_dir: Optional[Union[str, Path]] = None,
    epoch_hook: Optional[Callable[[int], None]] = None,
    store_dir: Optional[Union[str, Path]] = None,
    record_obs: bool = False,
    store_building: str = STORE_BUILDING,
    store_wall: str = STORE_WALL,
) -> CampaignOutcome:
    """Start a fresh campaign (``campaign run``)."""
    return Campaign(
        config, state_dir=state_dir, epoch_hook=epoch_hook,
        store_dir=store_dir, record_obs=record_obs,
        store_building=store_building, store_wall=store_wall,
    ).run()


def resume_campaign(
    state_dir: Union[str, Path],
    epoch_hook: Optional[Callable[[int], None]] = None,
    store_dir: Optional[Union[str, Path]] = None,
    record_obs: bool = False,
    store_building: str = STORE_BUILDING,
    store_wall: str = STORE_WALL,
) -> CampaignOutcome:
    """Continue a campaign from its last good checkpoint
    (``campaign resume``)."""
    campaign, state = Campaign.resume(
        state_dir, epoch_hook=epoch_hook, store_dir=store_dir,
        record_obs=record_obs,
        store_building=store_building, store_wall=store_wall,
    )
    return campaign.run(state)


def campaign_status(state_dir: Union[str, Path]) -> Dict[str, Any]:
    """A non-mutating snapshot of a campaign directory's health."""
    state_dir = Path(state_dir)
    store = CheckpointStore(state_dir / CHECKPOINT_DIRNAME)
    log = EpochLog(state_dir / EPOCH_LOG_FILENAME)
    records = log.records()
    quarantined = (
        sorted(p.name for p in store.quarantine_dir.iterdir())
        if store.quarantine_dir.is_dir()
        else []
    )
    last = records[-1] if records else None
    status: Dict[str, Any] = {
        "state_dir": str(state_dir),
        "latest_checkpoint_epoch": store.latest_epoch(),
        "log_records": len(records),
        "log_last_epoch": last["epoch"] if last else None,
        # Operational read of the audit log: how the pilot is *running*
        # (wall time, degradations, watchdog trips), not just where.
        "last_epoch_wall_s": last.get("elapsed_s") if last else None,
        "degraded_epochs": sum(1 for r in records if r.get("degraded")),
        "export_degraded_epochs": [
            r["epoch"] for r in records if r.get("export_degraded")
        ],
        "epoch_timeouts": [
            r["epoch"] for r in records if r.get("status") == "epoch_timeout"
        ],
        "total_retries": sum(r.get("retries", 0) for r in records),
        "quarantined": quarantined,
        "complete": (state_dir / RESULT_FILENAME).exists(),
    }
    # Verify without quarantining: status must never mutate the store
    # (resume is the verb that acts on what it finds).
    payload = None
    corrupt: List[str] = []
    for path, _epoch in store._candidates():
        try:
            payload = store.verify(path)
            break
        except CheckpointError as exc:
            corrupt.append(str(exc))
    if corrupt:
        status["corrupt_checkpoints"] = corrupt
    if payload is not None:
        status["verified_epoch"] = payload["epoch"]
        status["epochs_total"] = payload["config"].get("epochs")
        status["timeouts"] = list(payload["state"].get("timeouts", []))
    elif store.latest_epoch() is not None:
        status["checkpoint_error"] = (
            "every checkpoint on disk fails verification; "
            "resume would quarantine them all and fail"
        )
    return status
