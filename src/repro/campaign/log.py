"""Append-only JSONL epoch log with torn-tail truncation recovery.

Checkpoints are the campaign's *recovery* artifact; the epoch log is
its *audit* artifact: one JSON line per completed epoch, appended and
fsynced as the campaign runs, so an operator (or the ``status`` verb)
can see what a dead campaign was doing without deserializing state.

Appends are not atomic -- a SIGKILL or power cut mid-append leaves a
torn final line.  Recovery is deliberately simple and loss-bounded:
each line carries its own CRC32 over its record payload; on open,
:meth:`EpochLog.recover` scans for the longest valid prefix and
truncates the file to it.  A torn tail costs at most the one record
that was being written (which the next checkpoint replay regenerates);
an *interior* invalid line marks everything after it suspect and is
truncated too, counted separately, because a log that lies in the
middle is worse than a short one.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

from ..faults.io import io_fsync, io_replace, io_write, retry_io
from ..obs import obs_counter, obs_event

#: Schema tag stamped into every log line.
EPOCH_LOG_SCHEMA = "repro/campaign-epoch-log/v1"


def _line_crc(record_json: str) -> int:
    return zlib.crc32(record_json.encode("utf-8")) & 0xFFFFFFFF


def encode_line(record: Mapping[str, Any]) -> str:
    """One log line: ``{"schema":..., "crc":..., "record":...}``."""
    record_json = json.dumps(
        dict(record), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    envelope = {
        "schema": EPOCH_LOG_SCHEMA,
        "crc": _line_crc(record_json),
        "record": json.loads(record_json),
    }
    return json.dumps(envelope, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> Dict[str, Any]:
    """The record inside one log line; raises ``ValueError`` when torn."""
    envelope = json.loads(line)
    if not isinstance(envelope, dict) or envelope.get("schema") != EPOCH_LOG_SCHEMA:
        raise ValueError("wrong epoch-log schema tag")
    record = envelope.get("record")
    if not isinstance(record, dict):
        raise ValueError("epoch-log line has no record object")
    record_json = json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    if envelope.get("crc") != _line_crc(record_json):
        raise ValueError("epoch-log line failed its CRC")
    return record


class EpochLog:
    """The append-only per-epoch audit log of one campaign."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one epoch record, flushed and fsynced.

        Transient EIO is retried with bounded backoff; before each
        retry the file is healed back to its pre-append length, so a
        torn first attempt can never merge with the retried line.
        """
        line = encode_line(record)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        base_size = self.path.stat().st_size if self.path.exists() else 0

        def heal(_attempt: int, _exc: OSError) -> None:
            if self.path.exists() and self.path.stat().st_size > base_size:
                with self.path.open("r+b") as handle:
                    handle.truncate(base_size)
                    handle.flush()
                    os.fsync(handle.fileno())

        def attempt() -> None:
            with self.path.open("a") as handle:
                io_write(handle, line + "\n")
                handle.flush()
                io_fsync(handle.fileno(), self.path)

        retry_io(attempt, f"epoch_log_append:{self.path.name}", on_retry=heal)

    def recover(self) -> List[Dict[str, Any]]:
        """Validate the log, truncate any torn/corrupt tail, return records.

        Returns the longest valid record prefix.  When truncation was
        needed the event is counted (``campaign.log_truncations``) and
        logged with the byte offset, so silent data loss never happens.
        """
        if not self.path.exists():
            return []
        raw = self.path.read_bytes()
        records: List[Dict[str, Any]] = []
        good_bytes = 0
        cursor = 0
        while cursor < len(raw):
            newline = raw.find(b"\n", cursor)
            if newline < 0:
                break  # torn tail: final line never got its newline
            line = raw[cursor:newline]
            try:
                records.append(decode_line(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                break  # this line and everything after it is suspect
            cursor = newline + 1
            good_bytes = cursor
        if good_bytes < len(raw):
            with self.path.open("r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            obs_counter("campaign.log_truncations").inc()
            obs_event(
                "warning", "campaign.log_truncated",
                path=str(self.path), kept_records=len(records),
                kept_bytes=good_bytes, dropped_bytes=len(raw) - good_bytes,
            )
        return records

    def rewrite(self, records: List[Mapping[str, Any]]) -> None:
        """Replace the log's contents atomically (resume log-sync path).

        Used when a checkpoint is older than the log tail: replayed
        epochs will re-append their records, so the stale tail is cut
        back to the checkpoint's epoch first.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".jsonl.tmp")

        def attempt() -> None:
            with tmp.open("w") as handle:
                for record in records:
                    io_write(handle, encode_line(record) + "\n")
                handle.flush()
                io_fsync(handle.fileno(), tmp)
            io_replace(tmp, self.path)

        try:
            retry_io(attempt, f"epoch_log_rewrite:{self.path.name}")
        except BaseException:
            if tmp.exists():
                tmp.unlink()
            raise

    def records(self) -> List[Dict[str, Any]]:
        """All currently-valid records (without truncating the file)."""
        if not self.path.exists():
            return []
        records: List[Dict[str, Any]] = []
        for line in self.path.read_text().splitlines():
            try:
                records.append(decode_line(line))
            except ValueError:
                break
        return records
