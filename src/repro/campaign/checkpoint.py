"""Crash-safe, versioned campaign checkpoints with quarantine + rollback.

A checkpoint is one JSON file ``checkpoints/epoch-NNNNNN.json`` written
through the runtime's fsync-then-rename path
(:func:`repro.runtime.serialize.write_json_atomic`), so a reader never
observes a half-written file.  What atomic rename cannot protect
against -- a torn write inside a previously-good file, bit rot, a
truncating copy -- is caught on *load*: every checkpoint embeds a
SHA-256 over the canonical JSON of its body, and ``load_latest``
verifies it before trusting anything.

A checkpoint that fails verification is moved into ``.quarantine/``
(never deleted: it is forensic evidence) and the store rolls back to
the next-newest good checkpoint.  Only when every checkpoint is corrupt
or absent does the store give up with an explicit
:class:`~repro.errors.CheckpointError` -- the failure mode is always
"resume from an older epoch" or "loud error", never "silently wrong".
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..errors import CheckpointError
from ..faults.io import io_read_text
from ..obs import obs_counter, obs_event
from ..runtime.serialize import canonical_json, write_json_atomic

#: Schema tag for campaign checkpoints.
CHECKPOINT_SCHEMA = "repro/campaign-checkpoint/v1"

#: Subdirectory (inside the checkpoint dir) holding corrupt files.
QUARANTINE_DIRNAME = ".quarantine"

_CHECKPOINT_NAME = re.compile(r"^epoch-(\d{6})\.json$")


def checkpoint_digest(body: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON of a checkpoint body."""
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


class CheckpointStore:
    """Versioned checkpoint files for one campaign state directory.

    Args:
        directory: The checkpoint directory (created on first save).
        keep: Good checkpoints retained; older ones are pruned after a
            successful save so rollback always has history to fall to.
    """

    def __init__(self, directory: Union[str, Path], keep: int = 5):
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIRNAME

    def path_for(self, epoch: int) -> Path:
        return self.directory / f"epoch-{epoch:06d}.json"

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------

    def save(
        self,
        epoch: int,
        config: Mapping[str, Any],
        state: Mapping[str, Any],
    ) -> Path:
        """Atomically persist the boundary state after ``epoch`` epochs."""
        body: Dict[str, Any] = {
            "schema": CHECKPOINT_SCHEMA,
            "epoch": epoch,
            "config": dict(config),
            "state": dict(state),
        }
        payload = dict(body)
        payload["sha256"] = checkpoint_digest(body)
        path = write_json_atomic(self.path_for(epoch), payload)
        obs_counter("campaign.checkpoints_written").inc()
        self._prune()
        return path

    def _prune(self) -> None:
        """Drop good checkpoints beyond the newest ``keep``."""
        for path, _ in self._candidates()[self.keep:]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------

    def _candidates(self) -> List[Tuple[Path, int]]:
        """(path, epoch) for every checkpoint file, newest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.iterdir():
            match = _CHECKPOINT_NAME.match(path.name)
            if match:
                found.append((path, int(match.group(1))))
        return sorted(found, key=lambda item: item[1], reverse=True)

    def verify(self, path: Path) -> Dict[str, Any]:
        """Load + integrity-check one checkpoint file.

        Raises :class:`CheckpointError` describing exactly what is
        wrong: unreadable JSON, wrong schema, missing fields, or a
        content hash that does not match the body (torn/corrupt write).
        """
        try:
            payload = json.loads(io_read_text(path))
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
        except ValueError as exc:
            raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise CheckpointError(f"checkpoint {path} is not an object")
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {path} has schema {payload.get('schema')!r} "
                f"(expected {CHECKPOINT_SCHEMA!r})"
            )
        for key in ("epoch", "config", "state", "sha256"):
            if key not in payload:
                raise CheckpointError(f"checkpoint {path} is missing {key!r}")
        body = {k: v for k, v in payload.items() if k != "sha256"}
        digest = checkpoint_digest(body)
        if digest != payload["sha256"]:
            raise CheckpointError(
                f"checkpoint {path} failed integrity verification "
                f"(stored {payload['sha256'][:12]}, computed {digest[:12]})"
            )
        return payload

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a corrupt checkpoint aside for forensics."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_dir / f"{path.name}.{suffix}"
        try:
            path.replace(target)
        except OSError:  # pragma: no cover - racing deletion
            return None
        obs_counter("campaign.checkpoints_quarantined").inc()
        obs_event(
            "warning", "campaign.checkpoint_quarantined",
            path=str(path), quarantined_to=str(target), reason=reason,
        )
        return target

    def load_latest(self) -> Optional[Dict[str, Any]]:
        """The newest checkpoint that passes verification, or None.

        Corrupt checkpoints encountered on the way are quarantined and
        the search rolls back to older ones (counted as
        ``campaign.rollbacks``).  Returns None only when no checkpoint
        file exists at all; raises :class:`CheckpointError` when files
        exist but every one of them is corrupt.
        """
        candidates = self._candidates()
        if not candidates:
            return None
        rolled_back = 0
        for path, _epoch in candidates:
            try:
                payload = self.verify(path)
            except CheckpointError as exc:
                self.quarantine(path, str(exc))
                rolled_back += 1
                continue
            if rolled_back:
                obs_counter("campaign.rollbacks").inc(rolled_back)
            return payload
        raise CheckpointError(
            f"all {len(candidates)} checkpoint(s) in {self.directory} are "
            f"corrupt (quarantined under {self.quarantine_dir}); the campaign "
            "must be restarted from scratch"
        )

    def latest_epoch(self) -> Optional[int]:
        """Epoch of the newest on-disk checkpoint file (unverified)."""
        candidates = self._candidates()
        return candidates[0][1] if candidates else None
