"""Crash-safe campaign runtime: the checkpointed multi-month pilot.

Simulates the paper's 17-month footbridge pilot as a long-running,
epoch-stepped process -- one wall charging session + TDMA inventory +
SHM accumulation per weekly visit -- that survives being killed at any
point: state lives in versioned, hash-verified checkpoints
(``repro/campaign-checkpoint/v1``) plus an append-only CRC'd epoch log,
and ``campaign resume`` continues to a final result byte-identical to
an uninterrupted run.  See ``docs/CAMPAIGN.md`` for the checkpoint
format, resume semantics and the corruption-recovery matrix.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA,
    QUARANTINE_DIRNAME,
    CheckpointStore,
    checkpoint_digest,
)
from .config import (
    CAMPAIGN_CONFIG_SCHEMA,
    DEFAULT_CAMPAIGN_FAULTS,
    EPOCHS_PER_MONTH,
    PILOT_MONTHS,
    CampaignConfig,
    pilot_epochs,
)
from .driver import (
    CAMPAIGN_RESULT_SCHEMA,
    CHECKPOINT_DIRNAME,
    EPOCH_LOG_FILENAME,
    RESULT_FILENAME,
    STORE_BUILDING,
    STORE_WALL,
    Campaign,
    CampaignOutcome,
    CampaignResult,
    EpochSamples,
    campaign_status,
    result_hash,
    resume_campaign,
    run_campaign,
)
from .log import EPOCH_LOG_SCHEMA, EpochLog
from .state import CAMPAIGN_STATE_SCHEMA, CampaignState
from .watchdog import (
    EpochTimeout,
    ShutdownGuard,
    epoch_deadline,
    watchdog_available,
)

__all__ = [
    "CAMPAIGN_CONFIG_SCHEMA",
    "CAMPAIGN_RESULT_SCHEMA",
    "CAMPAIGN_STATE_SCHEMA",
    "CHECKPOINT_DIRNAME",
    "CHECKPOINT_SCHEMA",
    "Campaign",
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignResult",
    "CampaignState",
    "CheckpointStore",
    "DEFAULT_CAMPAIGN_FAULTS",
    "EPOCHS_PER_MONTH",
    "EPOCH_LOG_FILENAME",
    "EPOCH_LOG_SCHEMA",
    "EpochLog",
    "EpochSamples",
    "EpochTimeout",
    "PILOT_MONTHS",
    "QUARANTINE_DIRNAME",
    "RESULT_FILENAME",
    "STORE_BUILDING",
    "STORE_WALL",
    "ShutdownGuard",
    "campaign_status",
    "checkpoint_digest",
    "epoch_deadline",
    "pilot_epochs",
    "result_hash",
    "resume_campaign",
    "run_campaign",
    "watchdog_available",
]
