"""Mutable campaign state: everything a checkpoint must carry.

The determinism contract of the campaign runtime is that *state at
epoch boundary N* plus *the config* fully determine every later epoch.
:class:`CampaignState` is that boundary state: the epoch cursor, the
master RNG stream (``random.Random`` with its exact Mersenne state),
the cross-epoch fault-injector memory (stuck-sensor latches and fault
totals), the accumulated SHM time series and the per-epoch summary
records.  ``to_dict``/``from_dict`` round-trip all of it through JSON
losslessly -- including the RNG state tuple -- which is what makes a
kill-and-resume run byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import CampaignError

#: Schema tag for the state block inside a checkpoint.
CAMPAIGN_STATE_SCHEMA = "repro/campaign-state/v1"


def encode_rng_state(state: Tuple[Any, ...]) -> List[Any]:
    """``random.Random.getstate()`` as JSON-able nested lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(payload: Any) -> Tuple[Any, ...]:
    """Rebuild the ``setstate`` tuple from :func:`encode_rng_state`."""
    try:
        version, internal, gauss_next = payload
        return (version, tuple(int(v) for v in internal), gauss_next)
    except (TypeError, ValueError) as exc:
        raise CampaignError(f"malformed RNG state in checkpoint: {exc}")


@dataclass
class CampaignState:
    """The resumable state of a campaign at an epoch boundary.

    Attributes:
        epoch: The next epoch to run (== completed epoch count).
        rng: Master campaign RNG (drives per-epoch deployment drift);
            its Mersenne state is serialized exactly, so a resumed
            campaign continues the same stream mid-sequence.
        stuck_latches: Cross-epoch stuck-sensor memory keyed
            ``"node:channel"`` -- a sensor that latched in epoch 3 is
            still latched in epoch 40, across any number of resumes.
        fault_totals: Accumulated fault counts across all epochs.
        hours: Accumulated SHM time base (hours since campaign start).
        acceleration: Accumulated deck acceleration series (m/s^2).
        stress_mpa: Accumulated steel stress series (MPa).
        grade_counts: Bridge-grade histogram over completed epochs.
        epoch_records: One summary dict per completed epoch (status,
            coverage, retries, fault counts, storm flag, grade).
        timeouts: Epochs the watchdog had to abandon.
    """

    epoch: int = 0
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    stuck_latches: Dict[str, Optional[int]] = field(default_factory=dict)
    fault_totals: Dict[str, int] = field(default_factory=dict)
    hours: List[float] = field(default_factory=list)
    acceleration: List[float] = field(default_factory=list)
    stress_mpa: List[float] = field(default_factory=list)
    grade_counts: Dict[str, int] = field(default_factory=dict)
    epoch_records: List[Dict[str, Any]] = field(default_factory=list)
    timeouts: List[int] = field(default_factory=list)

    @classmethod
    def fresh(cls, seed: int) -> "CampaignState":
        """Epoch-zero state for a campaign with master ``seed``."""
        return cls(rng=random.Random(f"campaign:{seed}"))

    def absorb_faults(self, counts: Mapping[str, int]) -> None:
        """Fold one epoch's fault counts into the campaign totals."""
        for name, count in counts.items():
            self.fault_totals[name] = self.fault_totals.get(name, 0) + count

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; round-trips through :meth:`from_dict`."""
        return {
            "schema": CAMPAIGN_STATE_SCHEMA,
            "epoch": self.epoch,
            "rng_state": encode_rng_state(self.rng.getstate()),
            "stuck_latches": dict(self.stuck_latches),
            "fault_totals": dict(self.fault_totals),
            "hours": list(self.hours),
            "acceleration": list(self.acceleration),
            "stress_mpa": list(self.stress_mpa),
            "grade_counts": dict(self.grade_counts),
            "epoch_records": list(self.epoch_records),
            "timeouts": list(self.timeouts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignState":
        """Rebuild a state; raises :class:`CampaignError` on bad shape."""
        if not isinstance(payload, Mapping):
            raise CampaignError("campaign state must be an object")
        schema = payload.get("schema")
        if schema != CAMPAIGN_STATE_SCHEMA:
            raise CampaignError(
                f"unsupported campaign-state schema {schema!r} "
                f"(expected {CAMPAIGN_STATE_SCHEMA!r})"
            )
        try:
            rng = random.Random()
            rng.setstate(decode_rng_state(payload["rng_state"]))
            return cls(
                epoch=int(payload["epoch"]),
                rng=rng,
                stuck_latches=dict(payload["stuck_latches"]),
                fault_totals={
                    k: int(v) for k, v in payload["fault_totals"].items()
                },
                hours=[float(v) for v in payload["hours"]],
                acceleration=[float(v) for v in payload["acceleration"]],
                stress_mpa=[float(v) for v in payload["stress_mpa"]],
                grade_counts={
                    k: int(v) for k, v in payload["grade_counts"].items()
                },
                epoch_records=[dict(r) for r in payload["epoch_records"]],
                timeouts=[int(v) for v in payload["timeouts"]],
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CampaignError(f"malformed campaign state: {exc!r}")
