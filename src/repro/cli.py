"""Command-line interface for the EcoCapsule reproduction library.

Subcommands mirror the operator workflows the paper describes::

    python -m repro.cli prism --concrete NC
    python -m repro.cli range --structure S3 --voltage 250
    python -m repro.cli shell --height 120
    python -m repro.cli survey --nodes 8 --length 8 --voltage 250
    python -m repro.cli pilot

plus the experiment runtime (registry + parallel runner + cache)::

    python -m repro.cli experiments list
    python -m repro.cli experiments run --all --jobs 4 --out results
    python -m repro.cli experiments run --only fig15 fig17 --force
    python -m repro.cli experiments run --only fig15 --obs -v
    python -m repro.cli experiments run --only fault_sweep --faults plan.json
    python -m repro.cli experiments validate results/<run_id>
    python -m repro.cli experiments stats results/<run_id>
    python -m repro.cli experiments trace results/<run_id> --out trace.json

and the crash-safe campaign runtime (checkpoint + resume + status)::

    python -m repro.cli campaign run --state-dir pilot --epochs 74
    python -m repro.cli campaign resume --state-dir pilot
    python -m repro.cli campaign status --state-dir pilot

and the supervised multi-building fleet runtime (shard + restart +
quarantine, byte-deterministic)::

    python -m repro.cli fleet run --fleet-dir city --buildings 16 \
        --workers 4 --store telemetry
    python -m repro.cli fleet resume --fleet-dir city
    python -m repro.cli fleet status --fleet-dir city

and the embedded telemetry store (ingest + rollups + query + HTTP)::

    python -m repro.cli campaign run --state-dir pilot --store telemetry
    python -m repro.cli store ingest --store telemetry pilot/result.json
    python -m repro.cli store compact --store telemetry
    python -m repro.cli store query --store telemetry --metric strain \
        --agg mean --resolution hourly --group-by wall
    python -m repro.cli store health --store telemetry --building campaign
    python -m repro.cli store stats --store telemetry
    python -m repro.cli store serve --store telemetry --port 8080

and the storage-fault chaos drills (recovered or loud, never silently
wrong)::

    python -m repro.cli chaos run --dir drills/c1 --scenario campaign \
        --enospc-write-rate 0.05 --torn-write-rate 0.05
    python -m repro.cli chaos verify --dir drills/c1
"""

from __future__ import annotations

import argparse
import math
import random
import sys
from pathlib import Path
from typing import Any, List, Optional

from .acoustics import StructureGeometry, WavePrism, paper_structures
from .link import PlacedNode, PowerUpLink, WallSession, plan_stations
from .materials import PLA, get_concrete
from .node import EcoCapsule, Environment, resin_shell, steel_shell


def _cmd_prism(args: argparse.Namespace) -> int:
    concrete = get_concrete(args.concrete)
    prism = WavePrism(PLA, concrete.medium)
    low, high = prism.critical_angles
    best = prism.recommend_angle()
    print(f"Concrete: {concrete.name} (Cp {concrete.cp:.0f}, Cs {concrete.cs:.0f} m/s)")
    print(
        f"S-only window: [{math.degrees(low):.1f}, {math.degrees(high):.1f}] deg"
    )
    print(f"Recommended incident angle: {math.degrees(best):.1f} deg")
    quality = prism.injection_quality(best)
    print(f"Injected energy at the optimum: {quality.injected_energy:.0%}")
    return 0


def _resolve_structure(name: str) -> StructureGeometry:
    for structure in paper_structures():
        if structure.name.lower().startswith(name.lower()):
            return structure
    raise SystemExit(
        f"unknown structure {name!r}; options: "
        + ", ".join(s.name.split()[0] for s in paper_structures())
    )


def _cmd_range(args: argparse.Namespace) -> int:
    structure = _resolve_structure(args.structure)
    budget = PowerUpLink(structure)
    reach = budget.max_range(args.voltage)
    print(f"Structure: {structure.name} ({structure.thickness * 100:.0f} cm thick)")
    print(f"Max power-up range at {args.voltage:.0f} V: {reach:.2f} m")
    plan = plan_stations(budget, tx_voltage=args.voltage)
    print(
        f"Stations to cover {structure.length:.0f} m: {len(plan.stations)} "
        f"at positions " + ", ".join(f"{s.position:.1f} m" for s in plan.stations)
    )
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    for shell, label in ((resin_shell(), "SLA resin"), (steel_shell(), "alloy steel")):
        verdict = "OK" if shell.survives(args.height) else "FAILS"
        print(
            f"{label:12s} dP_max {shell.max_pressure / 1e6:6.1f} MPa  "
            f"h_max {shell.max_height():7.0f} m  at {args.height:.0f} m: {verdict}"
        )
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    concrete = get_concrete(args.concrete)
    wall = StructureGeometry(
        "cli wall", length=args.length, thickness=args.thickness,
        medium=concrete.medium,
    )
    budget = PowerUpLink(wall)
    rng = random.Random(args.seed)
    nodes = [
        PlacedNode(
            capsule=EcoCapsule(
                node_id=i + 1,
                environment=Environment(
                    temperature=rng.uniform(18.0, 32.0),
                    humidity=rng.uniform(55.0, 90.0),
                    strain=rng.uniform(-200.0, 300.0),
                ),
                seed=args.seed + i,
            ),
            distance=rng.uniform(0.2, args.length * 0.4),
        )
        for i in range(args.nodes)
    ]
    plan = _load_fault_plan(args.faults) if args.faults else None
    session = WallSession(
        budget=budget, nodes=nodes, tx_voltage=args.voltage, seed=args.seed,
        faults=plan,
    )
    result = session.run()
    print(
        f"Powered {len(result.powered_nodes)}/{args.nodes} nodes "
        f"({result.coverage:.0%}); session took {result.elapsed:.2f} s over "
        f"{result.slots_used} slots in {result.rounds_used} round(s)"
    )
    for node_id in sorted(result.reports):
        values = {r.channel: r.value for r in result.reports[node_id]}
        print(
            f"  node {node_id:2d}: "
            + "  ".join(f"{k}={v:.1f}" for k, v in sorted(values.items()))
        )
    if result.dark_nodes:
        print(f"  dark nodes (out of range): {result.dark_nodes}")
    if result.degraded:
        print(
            f"  DEGRADED: unheard nodes {result.unheard_nodes}"
            + (" (charging failed)" if result.charge_failed else "")
        )
    if result.retries or result.charge_attempts > 1:
        print(
            f"  recovery: {result.retries} command retries, "
            f"{result.charge_attempts} charge attempt(s), "
            f"{result.backoff_s:.2f} s backoff, {result.recharges} recharge(s)"
        )
    if result.fault_counts:
        faults = ", ".join(
            f"{k}={v}" for k, v in sorted(result.fault_counts.items())
        )
        print(f"  injected faults: {faults}")
    return 0


def _cmd_pilot(args: argparse.Namespace) -> int:
    from .experiments import fig21_pilot_study

    result = fig21_pilot_study.run(samples_per_hour=args.samples_per_hour)
    print("Pilot study (synthetic July 2021):")
    print(f"  storm detected in both channels: {result.storm_detected_in_both}")
    print(f"  sensors mutually verified: {result.sensors_mutually_verified}")
    print(
        f"  compliance: |a|max {result.compliance.max_abs_acceleration:.3f} m/s^2, "
        f"|s|max {result.compliance.max_abs_stress_mpa:.0f} MPa -> "
        f"{'OK' if result.compliance.compliant else 'VIOLATION'}"
    )
    grades = ", ".join(f"{g}: {f:.0%}" for g, f in result.grade_fractions.items())
    print(f"  bridge grades over the month: {grades}")
    for health in result.section_health:
        print(
            f"  section {health.section}: No.{health.pedestrians} "
            f"Health {health.grade} Speed {health.mean_speed:.1f} m/s"
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .reporting import EXPORTERS, export_all

    figures = args.figures if args.figures else None
    written = export_all(args.directory, figures=figures, fmt=args.format)
    for path in written:
        print(f"wrote {path}")
    if not args.figures:
        print(f"({len(written)} figures: {', '.join(sorted(EXPORTERS))})")
    return 0


def _cmd_experiments_list(args: argparse.Namespace) -> int:
    from .runtime import experiment_registry

    for spec in experiment_registry().values():
        quick = " [quick]" if spec.quick_params else ""
        print(f"{spec.name:22s} seed={spec.seed:<6d} {spec.title}{quick}")
    return 0


def _format_profile(profile) -> str:
    parts = [f"wall={profile['wall_s']:.3f}s", f"cpu={profile['cpu_s']:.3f}s"]
    if profile.get("max_rss_kb") is not None:
        parts.append(f"rss={profile['max_rss_kb'] / 1024.0:.1f}MB")
    if profile.get("py_alloc_peak_kb") is not None:
        parts.append(f"pyalloc={profile['py_alloc_peak_kb'] / 1024.0:.1f}MB")
    return " ".join(parts)


def _load_fault_plan(path: str):
    """Load a CLI ``--faults`` plan or exit with the config error."""
    from .errors import FaultConfigError
    from .faults import FaultPlan

    try:
        return FaultPlan.from_json_file(path)
    except FaultConfigError as exc:
        raise SystemExit(f"--faults: {exc}")


def _fault_overrides(names, plan):
    """Per-experiment overrides injecting ``plan`` where it is accepted."""
    from .runtime import experiment_registry

    registry = experiment_registry()
    selected = list(registry) if names is None else names
    accepting = [
        name
        for name in selected
        if name in registry and "fault_plan" in registry[name].default_params
    ]
    if not accepting:
        raise SystemExit(
            "--faults: none of the selected experiments accept a fault_plan "
            "parameter (try --only fault_sweep)"
        )
    return {name: {"fault_plan": plan.to_dict()} for name in accepting}


def _cmd_experiments_run(args: argparse.Namespace) -> int:
    from .runtime import run_experiments

    if not args.all and not args.only:
        raise SystemExit("experiments run: pass --all or --only NAME [NAME ...]")
    names = None if args.all else args.only
    overrides = None
    if args.faults:
        overrides = _fault_overrides(names, _load_fault_plan(args.faults))
    report = run_experiments(
        names=names,
        jobs=args.jobs,
        out_dir=args.out,
        force=args.force,
        timeout_s=args.timeout,
        cache_dir=args.cache_dir,
        overrides=overrides,
        quick=args.quick,
        obs=args.obs,
        retries=args.retries,
    )
    for outcome in report.outcomes:
        line = (
            f"{outcome.name:22s} {outcome.status:7s} cache={outcome.cache:6s} "
            f"{outcome.elapsed_s:6.2f}s"
        )
        if outcome.error:
            line += f"  {outcome.error.strip().splitlines()[-1]}"
        print(line)
        if args.verbose:
            detail = (
                f"{'':22s} seed={outcome.seed} "
                f"key={outcome.cache_key[:12]}"
            )
            if outcome.profile is not None:
                detail += f"  {_format_profile(outcome.profile)}"
            print(detail)
    totals = report.manifest["totals"]
    summary = (
        f"{totals['ok']}/{totals['experiments']} ok "
        f"({report.cache_hits} cache hit(s), {report.fresh_ok} fresh)"
    )
    if report.failures:
        summary += f", {report.failures} failed"
    if report.timeouts:
        summary += f", {report.timeouts} timed out"
    print(f"{summary}, {totals['elapsed_s']:.2f}s total")
    print(f"manifest: {report.run_dir / 'manifest.json'}")
    if args.obs:
        print(f"metrics:  {report.run_dir / 'metrics.json'}")
        print(f"trace:    {report.run_dir / 'trace.json'}")
    if report.interrupted:
        print("sweep interrupted (SIGINT/SIGTERM); partial manifest written")
        return 3
    return 0 if report.ok else 1


def _cmd_experiments_validate(args: argparse.Namespace) -> int:
    from .errors import ManifestError
    from .runtime import RESULT_SCHEMA, load_manifest, read_json

    try:
        manifest = load_manifest(args.run_dir)
    except ManifestError as exc:
        print(f"INVALID: {exc}")
        return 1
    problems = []
    run_dir = Path(args.run_dir)
    for entry in manifest["experiments"]:
        if entry["status"] != "ok":
            continue
        path = run_dir / entry["result_file"]
        try:
            payload = read_json(path)
        except (OSError, ValueError) as exc:
            problems.append(f"{entry['name']}: unreadable result ({exc})")
            continue
        if payload.get("schema") != RESULT_SCHEMA:
            problems.append(f"{entry['name']}: wrong result schema")
        elif "result" not in payload:
            problems.append(f"{entry['name']}: result file has no result")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    totals = manifest["totals"]
    print(
        f"valid manifest: run {manifest['run_id']}, "
        f"{totals['ok']}/{totals['experiments']} ok, "
        f"{totals['cache_hits']} cache hit(s)"
    )
    return 0


def _load_obs_artifact(run_dir: Path, filename: str):
    """Read one obs export from a run directory, or None with a hint."""
    from .runtime import read_json

    path = run_dir / filename
    if not path.exists():
        print(
            f"no {filename} in {run_dir}; re-run the sweep with "
            "`experiments run --obs` to collect observability data"
        )
        return None
    try:
        return read_json(path)
    except (OSError, ValueError) as exc:
        print(f"INVALID: unreadable {filename}: {exc}")
        return None


def _cmd_experiments_stats(args: argparse.Namespace) -> int:
    import json as json_module

    from .obs import render_snapshot_text
    from .runtime import load_manifest
    from .errors import ManifestError

    run_dir = Path(args.run_dir)
    payload = _load_obs_artifact(run_dir, "metrics.json")
    if payload is None:
        return 1
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"metrics for run {payload.get('run_id', run_dir.name)}:")
    print(render_snapshot_text(payload), end="")
    events = payload.get("events", {})
    records = events.get("events", [])
    if records:
        print(f"events ({len(records)} recorded, {events.get('dropped', 0)} dropped):")
        for event in records:
            fields = " ".join(f"{k}={v}" for k, v in event["fields"].items())
            print(f"  [{event['level']}] {event['name']} {fields}")
    try:
        manifest = load_manifest(run_dir)
    except ManifestError:
        manifest = None
    if manifest is not None:
        profiled = [
            e for e in manifest["experiments"] if e.get("profile") is not None
        ]
        if profiled:
            print("per-experiment profiles:")
            for entry in profiled:
                print(
                    f"  {entry['name']:22s} {_format_profile(entry['profile'])}"
                )
    return 0


def _cmd_experiments_trace(args: argparse.Namespace) -> int:
    import json as json_module
    import shutil

    from .obs import validate_chrome_trace

    run_dir = Path(args.run_dir)
    trace = _load_obs_artifact(run_dir, "trace.json")
    if trace is None:
        return 1
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    events = trace["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(run_dir / "trace.json", out_path)
        print(f"wrote {out_path} ({spans} span(s))")
    else:
        print(
            f"valid chrome trace: {spans} span(s), "
            f"{len(events)} event(s) -- load {run_dir / 'trace.json'} "
            "in chrome://tracing or https://ui.perfetto.dev"
        )
        if args.json:
            print(json_module.dumps(trace, indent=2, sort_keys=True))
    return 0


def _campaign_hook(args: argparse.Namespace):
    """The (hidden) per-epoch delay used by CI to stage mid-epoch kills."""
    sleep_s = getattr(args, "epoch_sleep_s", 0.0)
    if sleep_s <= 0.0:
        return None
    import time

    def hook(epoch: int) -> None:
        time.sleep(sleep_s)

    return hook


def _print_campaign_outcome(args: argparse.Namespace, outcome) -> int:
    if outcome.interrupted:
        print(
            f"interrupted by {outcome.signal_name or 'signal'} at epoch "
            f"{outcome.state.epoch}; checkpoint flushed"
        )
        print(
            f"continue with: python -m repro.cli campaign resume "
            f"--state-dir {args.state_dir}"
        )
        return 3
    result = outcome.result
    from .campaign import result_hash

    resumed = (
        f" (resumed from epoch {outcome.resumed_from_epoch})"
        if outcome.resumed_from_epoch
        else ""
    )
    print(f"campaign complete: {result.epochs_run} epoch(s){resumed}")
    print(
        f"storms: {result.storms_detected}/{len(result.storm_epochs)} "
        f"detected in both channels; mutual verification: "
        f"{'yes' if result.sensors_mutually_verified else 'NO'}"
    )
    grades = ", ".join(
        f"{g}={frac:.0%}" for g, frac in result.grade_fractions.items()
    )
    print(f"health grades: {grades}; compliant: "
          f"{'yes' if result.compliance.compliant else 'NO'}")
    if result.fault_totals:
        worst = sorted(
            result.fault_totals.items(), key=lambda kv: -kv[1]
        )[:4]
        print("top faults: " + ", ".join(f"{k}={v}" for k, v in worst))
    if result.timeouts:
        print(f"watchdog timeouts at epoch(s): {result.timeouts}")
    print(f"result sha256: {result_hash(result)}")
    if outcome.result_file is not None:
        print(f"result file:   {outcome.result_file}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import (
        CHECKPOINT_DIRNAME,
        CampaignConfig,
        CheckpointStore,
        run_campaign,
    )

    if args.state_dir:
        store = CheckpointStore(Path(args.state_dir) / CHECKPOINT_DIRNAME)
        if store.latest_epoch() is not None:
            raise SystemExit(
                f"{args.state_dir} already holds a campaign (checkpoint at "
                f"epoch {store.latest_epoch()}); use `campaign resume`, or "
                "point --state-dir at a fresh directory"
            )
    config = CampaignConfig(
        epochs=args.epochs,
        nodes=args.nodes,
        wall_length=args.wall_length,
        tx_voltage=args.tx_voltage,
        hours_per_epoch=args.hours_per_epoch,
        samples_per_hour=args.samples_per_hour,
        seed=args.seed,
        fault_rates=None if args.no_faults else dict(_default_faults()),
        fault_intensity=args.fault_intensity,
        storm_period_epochs=args.storm_period,
        storm_duration_epochs=args.storm_duration,
        storm_fault_intensity=args.storm_intensity,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_keep=args.checkpoint_keep,
        epoch_timeout_s=args.epoch_timeout_s,
    )
    outcome = _run_supervised(
        args, lambda hook: run_campaign(
            config, state_dir=args.state_dir or None, epoch_hook=hook,
            store_dir=args.store or None,
            record_obs=bool(args.obs and args.store),
        )
    )
    return _print_campaign_outcome(args, outcome)


def _default_faults():
    from .campaign import DEFAULT_CAMPAIGN_FAULTS

    return DEFAULT_CAMPAIGN_FAULTS


def _run_supervised(args: argparse.Namespace, runner):
    """Run a campaign callable under optional --obs instrumentation."""
    from .obs import activate_obs, obs_registry, render_snapshot_text, restore_obs

    scope = activate_obs(process_label="campaign") if args.obs else None
    try:
        return runner(_campaign_hook(args))
    finally:
        if scope is not None:
            print("campaign metrics:")
            print(render_snapshot_text(obs_registry().snapshot()), end="")
            restore_obs(scope)


def _usage_exit(message: str) -> SystemExit:
    """One-line operator error on stderr, exit code 2 (not a traceback)."""
    print(message, file=sys.stderr)
    return SystemExit(2)


def _require_campaign_dir(state_dir: str, verb: str) -> None:
    """Exit 2 unless ``state_dir`` actually hosts a campaign."""
    from .campaign import CHECKPOINT_DIRNAME, EPOCH_LOG_FILENAME

    path = Path(state_dir)
    if not path.is_dir():
        raise _usage_exit(
            f"campaign {verb}: no such directory: {state_dir}"
        )
    markers = (CHECKPOINT_DIRNAME, EPOCH_LOG_FILENAME, "result.json")
    if not any((path / marker).exists() for marker in markers):
        raise _usage_exit(
            f"campaign {verb}: {state_dir} holds no campaign "
            f"(expected {CHECKPOINT_DIRNAME}/, {EPOCH_LOG_FILENAME} "
            f"or result.json)"
        )


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from .campaign import resume_campaign
    from .errors import CampaignError

    _require_campaign_dir(args.state_dir, "resume")
    try:
        outcome = _run_supervised(
            args, lambda hook: resume_campaign(
                args.state_dir, epoch_hook=hook,
                store_dir=args.store or None,
                record_obs=bool(args.obs and args.store),
            )
        )
    except CampaignError as exc:
        raise _usage_exit(f"campaign resume: {exc}")
    return _print_campaign_outcome(args, outcome)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import json as json_module

    from .campaign import campaign_status

    _require_campaign_dir(args.state_dir, "status")
    status = campaign_status(args.state_dir)
    if args.json:
        print(json_module.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"campaign state in {status['state_dir']}:")
    if status["latest_checkpoint_epoch"] is None:
        print("  no checkpoints (nothing to resume)")
    else:
        print(f"  latest checkpoint epoch: {status['latest_checkpoint_epoch']}")
    if "verified_epoch" in status:
        total = status.get("epochs_total")
        print(
            f"  verified resume point:   epoch {status['verified_epoch']}"
            + (f" of {total}" if total else "")
        )
        if status.get("timeouts"):
            print(f"  watchdog timeouts:       {status['timeouts']}")
    if "checkpoint_error" in status:
        print(f"  CHECKPOINT ERROR: {status['checkpoint_error']}")
    print(f"  epoch log records:       {status['log_records']}")
    if status["last_epoch_wall_s"] is not None:
        print(f"  last epoch wall time:    {status['last_epoch_wall_s']:.3f} s")
    print(f"  degraded epochs (log):   {status['degraded_epochs']}")
    if status["epoch_timeouts"]:
        print(f"  watchdog timeouts (log): {status['epoch_timeouts']}")
    print(f"  TDMA retries (log):      {status['total_retries']}")
    if status["quarantined"]:
        print(
            f"  quarantined checkpoints: {len(status['quarantined'])} "
            f"({', '.join(status['quarantined'])})"
        )
    print(f"  complete: {'yes' if status['complete'] else 'no'}")
    return 1 if "checkpoint_error" in status else 0


def _fleet_supervised(args: argparse.Namespace, runner):
    """Run a fleet callable under optional --obs instrumentation."""
    from .obs import activate_obs, obs_registry, render_snapshot_text, restore_obs

    scope = activate_obs(process_label="fleet") if args.obs else None
    try:
        return runner()
    finally:
        if scope is not None:
            print("fleet metrics:")
            print(render_snapshot_text(obs_registry().snapshot()), end="")
            restore_obs(scope)


def _load_worker_faults(args: argparse.Namespace):
    from .errors import FaultConfigError
    from .faults import WorkerFaultPlan

    if not getattr(args, "worker_faults", None):
        return None
    try:
        return WorkerFaultPlan.from_json_file(args.worker_faults)
    except FaultConfigError as exc:
        raise _usage_exit(f"fleet: bad --worker-faults plan: {exc}")


def _print_fleet_outcome(args: argparse.Namespace, outcome) -> int:
    if outcome.interrupted:
        print(
            f"fleet interrupted by {outcome.signal_name or 'signal'}; "
            f"manifest + shard checkpoints flushed"
        )
        print(
            f"continue with: python -m repro.cli fleet resume "
            f"--fleet-dir {args.fleet_dir}"
        )
        return 3
    totals = outcome.result["totals"]
    print(
        f"fleet complete: {totals['completed']}/{totals['buildings']} "
        f"building(s), {totals['epochs_run']} epoch(s) total "
        f"in {outcome.wall_s:.1f} s"
    )
    if outcome.quarantined:
        for building, reason in sorted(outcome.quarantined.items()):
            print(f"  QUARANTINED {building}: {reason}")
    if totals["degraded_epochs"] or totals["epoch_timeouts"]:
        print(
            f"  degraded epochs: {totals['degraded_epochs']}; "
            f"watchdog timeouts: {totals['epoch_timeouts']}"
        )
    print(f"result sha256: {outcome.sha256}")
    if outcome.result_file is not None:
        print(f"result file:   {outcome.result_file}")
    return 4 if outcome.quarantined else 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from .campaign import CampaignConfig
    from .errors import FleetError
    from .fleet import FleetConfig, building_names, run_fleet

    template = CampaignConfig(
        epochs=args.epochs,
        nodes=args.nodes,
        wall_length=args.wall_length,
        tx_voltage=args.tx_voltage,
        hours_per_epoch=args.hours_per_epoch,
        samples_per_hour=args.samples_per_hour,
        fault_rates=None if args.no_faults else dict(_default_faults()),
        fault_intensity=args.fault_intensity,
        storm_period_epochs=args.storm_period,
        storm_duration_epochs=args.storm_duration,
        storm_fault_intensity=args.storm_intensity,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_keep=args.checkpoint_keep,
        epoch_timeout_s=args.epoch_timeout_s,
    )
    try:
        config = FleetConfig(
            buildings=building_names(args.buildings),
            campaign=template,
            seed=args.seed,
            workers=args.workers,
            max_restarts=args.max_restarts,
            heartbeat_timeout_s=args.heartbeat_timeout_s,
            backoff_base_s=args.backoff_base_s,
            backoff_max_s=args.backoff_max_s,
        )
        outcome = _fleet_supervised(
            args, lambda: run_fleet(
                config,
                args.fleet_dir,
                store_dir=args.store or None,
                worker_faults=_load_worker_faults(args),
                epoch_sleep_s=args.epoch_sleep_s,
                record_obs=bool(args.obs and args.store),
            )
        )
    except FleetError as exc:
        raise _usage_exit(f"fleet run: {exc}")
    return _print_fleet_outcome(args, outcome)


def _cmd_fleet_resume(args: argparse.Namespace) -> int:
    from .errors import FleetError
    from .fleet import resume_fleet

    try:
        outcome = _fleet_supervised(
            args, lambda: resume_fleet(
                args.fleet_dir,
                store_dir=args.store or None,
                epoch_sleep_s=args.epoch_sleep_s,
                record_obs=bool(args.obs and args.store),
            )
        )
    except FleetError as exc:
        raise _usage_exit(f"fleet resume: {exc}")
    return _print_fleet_outcome(args, outcome)


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json as json_module

    from .errors import FleetError
    from .fleet import fleet_status

    try:
        status = fleet_status(args.fleet_dir)
    except FleetError as exc:
        raise _usage_exit(f"fleet status: {exc}")
    if args.json:
        print(json_module.dumps(status, indent=2, sort_keys=True))
        return 0
    summary = status["summary"]
    print(
        f"fleet in {status['fleet_dir']}: {status['buildings']} building(s) "
        f"on {status['workers']} worker(s)"
    )
    print(
        f"  healthy: {summary['healthy']}  recovering: "
        f"{summary['recovering']}  quarantined: {summary['quarantined']}"
    )
    for building, shard in sorted(status["shards"].items()):
        checkpoint = (
            f"epoch {shard['checkpoint_epoch']}/{shard['epochs_total']}"
            if shard["checkpoint_epoch"] is not None
            else "no checkpoint"
        )
        detail = f"  {building}: {shard['status']:<11s} {checkpoint}"
        if shard["failures_total"]:
            detail += f", {shard['failures_total']} failure(s)"
        if shard["heartbeat_age_s"] is not None:
            detail += f", heartbeat {shard['heartbeat_age_s']:.1f}s ago"
        print(detail)
        if shard["quarantine_reason"]:
            print(f"      reason: {shard['quarantine_reason']}")
    supervision = status["supervision"]
    if supervision:
        print(
            f"  supervision: {supervision.get('workers_spawned', 0)} "
            f"spawn(s), {supervision.get('restarts', 0)} restart(s), "
            f"{supervision.get('heartbeat_kills', 0)} heartbeat kill(s)"
        )
    if status["complete"]:
        print(f"  complete: yes (result sha256 {status['result_sha256']})")
    else:
        print(
            "  complete: no"
            + (" (interrupted)" if status["interrupted"] else "")
        )
    return 0


def _open_store(args: argparse.Namespace, create: bool = False):
    """Open the --store directory, exiting cleanly on store errors."""
    from .errors import StoreError
    from .store import TelemetryStore

    try:
        return TelemetryStore(args.store, create=create)
    except StoreError as exc:
        raise _usage_exit(f"store: {exc}")


def _cmd_store_ingest(args: argparse.Namespace) -> int:
    from .errors import StoreError
    from .store import ingest_campaign_result

    store = _open_store(args, create=True)
    try:
        with store.writer() as writer:
            rows = ingest_campaign_result(
                writer, args.result, building=args.building, wall=args.wall
            )
    except StoreError as exc:
        raise SystemExit(f"store ingest: {exc}")
    print(f"ingested {rows} sample(s) from {args.result} into {args.store}")
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    store = _open_store(args)
    summary = store.compact()
    rollups = ", ".join(
        f"{res}={rows}" for res, rows in summary["rollup_rows"].items()
    )
    print(
        f"compacted {summary['series']} series: {summary['raw_rows']} raw "
        f"row(s) -> {rollups}"
    )
    return 0


def _cmd_store_query(args: argparse.Namespace) -> int:
    import json as json_module

    from .errors import StoreError
    from .store import QueryEngine

    engine = QueryEngine(_open_store(args))
    try:
        payload = engine.aggregate(
            metric=args.metric,
            agg=args.agg,
            building=args.building,
            wall=args.wall,
            node_id=args.node,
            t0=args.t0,
            t1=args.t1,
            resolution=args.resolution,
            group_by=args.group_by,
        )
    except StoreError as exc:
        raise SystemExit(f"store query: {exc}")
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    header = (
        f"{payload['agg']}({payload['metric']}) over {payload['series']} "
        f"series at {payload['resolution']} resolution"
    )
    print(header)
    if "groups" in payload:
        for label, value in payload["groups"].items():
            rendered = "no data" if value is None else f"{value:.6g}"
            print(f"  {label}: {rendered}")
    else:
        value = payload["value"]
        print(f"  {'no data' if value is None else f'{value:.6g}'}")
    return 0


def _cmd_store_health(args: argparse.Namespace) -> int:
    import json as json_module

    from .errors import ReproError
    from .store import QueryEngine

    engine = QueryEngine(_open_store(args))
    try:
        report = engine.degradation_report(
            args.building,
            t0=args.t0,
            t1=args.t1,
            stale_hours=args.stale_hours,
        )
    except ReproError as exc:
        raise SystemExit(f"store health: {exc}")
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"building {report['name']}: grade {report['grade']}")
    for wall in report["walls"]:
        print(
            f"  wall {wall['wall']}: {wall['grade']} "
            f"({wall['reachability']:.0%} reachable, "
            f"{len(wall['capsules'])} capsule(s))"
        )
    if report["degraded_walls"]:
        print(f"  DEGRADED: {', '.join(report['degraded_walls'])}")
    for status in report["attention"]:
        drift = (
            f", drift {status['alarm']['drift_estimate']:.2f} ue/day"
            if status["alarm"]
            else ""
        )
        print(
            f"  attention: node {status['node_id']} on {status['wall']} "
            f"({status['grade']}{drift})"
        )
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    import json as json_module

    stats = _open_store(args).stats()
    if args.json:
        print(json_module.dumps(stats, indent=2, sort_keys=True))
        return 0
    totals = stats["totals"]
    print(f"store {stats['root']}: {stats['series_count']} series")
    for res, info in totals.items():
        print(
            f"  {res:7s} {info['rows']:>10d} row(s) in {info['blocks']} "
            f"block(s), {info['bytes']} bytes"
        )
    if stats["quarantined"]:
        print(f"  QUARANTINED segments: {', '.join(stats['quarantined'])}")
    for entry in stats["series"]:
        key = entry["key"]
        label = (
            f"{key['building']}/{key['wall']}/n{key['node_id']}/"
            f"{key['metric']}"
        )
        print(
            f"  {label}: {entry['raw']['rows']} raw, "
            f"{entry['hourly']['rows']} hourly, {entry['daily']['rows']} daily"
        )
    return 0


def _cmd_store_serve(args: argparse.Namespace) -> int:
    import time as time_module

    store = _open_store(args)

    def start_recorder(registry: Any) -> Any:
        if args.self_record <= 0.0:
            return None
        from .obs.pipeline import MetricsRecorder

        return MetricsRecorder(
            store, source="serve", registry=registry,
            clock=lambda: time_module.time() / 3600.0,
        ).start(interval_s=args.self_record)

    def announce(port: int) -> None:
        # The port line is machine-read by CI (ephemeral --port 0);
        # keep it first and flush before blocking.
        print(
            f"serving {args.store} on http://{args.host}:{port}", flush=True
        )
        print(
            "endpoints: /series /aggregate /health /stats /metrics /healthz"
            "  (Ctrl-C to stop)"
        )
        if args.self_record > 0.0:
            print(
                f"self-recording serve metrics into _obs/serve every "
                f"{args.self_record:g} s"
            )

    if args.engine == "async":
        from .serve import AsyncGateway, run_gateway

        gateway = AsyncGateway(
            store, host=args.host, port=args.port,
            workers=args.workers, max_queue=args.max_queue,
            cache_entries=args.cache_entries,
        )
        recorder = None

        def on_ready(gw: "AsyncGateway") -> None:
            nonlocal recorder
            recorder = start_recorder(gw.registry)
            announce(gw.port)
            print(
                f"engine: async ({args.workers} worker(s), queue depth "
                f"{args.max_queue}, {args.cache_entries} cache entries)"
            )

        try:
            run_gateway(gateway, ready=on_ready)
        except KeyboardInterrupt:
            pass
        finally:
            if recorder is not None:
                recorder.stop()
        return 0

    from .store import StoreServer

    server = StoreServer(store, host=args.host, port=args.port)
    recorder = start_recorder(server.registry)
    announce(server.port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if recorder is not None:
            recorder.stop()
        server.server_close()
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json as json_module

    from .errors import ObsError
    from .obs.report import build_report, render_report_markdown

    try:
        report = build_report(_open_store(args))
    except ObsError as exc:
        raise SystemExit(f"obs report: {exc}")
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report_markdown(report), end="")
    return 0


def _cmd_obs_trend(args: argparse.Namespace) -> int:
    import json as json_module

    from .errors import ObsError
    from .obs.trend import (
        evaluate,
        load_bench,
        load_history,
        record_history,
        render_trend_text,
    )

    try:
        readings = load_bench(args.bench_dir)
        history = load_history(args.history)
        verdicts = evaluate(readings, history, tolerance=args.tolerance)
        if args.record:
            record_history(args.history, readings)
    except ObsError as exc:
        raise SystemExit(f"obs trend: {exc}")
    regressed = [v for v in verdicts if v["verdict"] == "regress"]
    if args.json:
        print(json_module.dumps(
            {"verdicts": verdicts, "regressed": len(regressed)},
            indent=2, sort_keys=True,
        ))
    else:
        print(f"bench trends vs {args.history} "
              f"(tolerance {args.tolerance:.0%}):")
        print(render_trend_text(verdicts))
        print(
            f"{len(regressed)} regression(s)" if regressed
            else "no regressions"
        )
    return 1 if regressed else 0


#: ``chaos`` exit codes by verdict status: recovered outcomes succeed,
#: a loud failure is distinguishable from a silent one.
_CHAOS_EXIT_CODES = {"pass": 0, "degraded": 0, "loud": 4, "fail": 1}


def _chaos_plan(args: argparse.Namespace):
    import dataclasses

    from .faults.io import IoFaultPlan

    plan = (
        IoFaultPlan.from_json_file(args.plan)
        if args.plan
        else IoFaultPlan()
    )
    overrides = {
        name: getattr(args, name)
        for name in (
            "enospc_write_rate", "eio_read_rate", "eio_fsync_rate",
            "torn_write_rate", "drop_rename_rate", "bitrot_read_rate",
            "persistence",
        )
        if getattr(args, name) is not None
    }
    if args.fault_seed is not None:
        overrides["seed"] = args.fault_seed
    return dataclasses.replace(plan, **overrides) if overrides else plan


def _print_chaos_verdict(args: argparse.Namespace, verdict) -> int:
    import json as json_module

    if args.json:
        print(json_module.dumps(verdict, indent=2, sort_keys=True))
    else:
        print(f"chaos {verdict['scenario']}: {verdict['status'].upper()}")
        for reason in verdict.get("reasons", []):
            print(f"  - {reason}")
        fired = {k: v for k, v in (verdict.get("io") or {}).items() if v}
        if fired:
            print("  faults fired: " + ", ".join(
                f"{k}={v}" for k, v in sorted(fired.items())
            ))
        if verdict.get("drill_sha256"):
            print(f"  sha256: {verdict['drill_sha256'][:16]}… "
                  f"(clean {str(verdict.get('clean_sha256'))[:16]}…)")
    return _CHAOS_EXIT_CODES.get(verdict["status"], 1)


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    from .errors import ChaosError, FaultConfigError, FaultPlanError
    from .faults.chaos import ChaosConfig, run_drill

    try:
        config = ChaosConfig(
            scenario=args.scenario,
            seed=args.seed,
            epochs=args.epochs,
            nodes=args.nodes,
            hours_per_epoch=args.hours_per_epoch,
            buildings=args.buildings,
            batches=args.batches,
            rows_per_batch=args.rows_per_batch,
            max_attempts=args.max_attempts,
            plan=_chaos_plan(args),
        )
        verdict = run_drill(args.dir, config)
    except (ChaosError, FaultConfigError, FaultPlanError, OSError) as exc:
        raise SystemExit(f"chaos run: {exc}")
    return _print_chaos_verdict(args, verdict)


def _cmd_chaos_verify(args: argparse.Namespace) -> int:
    from .errors import ChaosError
    from .faults.chaos import verify_drill

    try:
        verdict = verify_drill(args.dir)
    except ChaosError as exc:
        raise SystemExit(f"chaos verify: {exc}")
    return _print_chaos_verdict(args, verdict)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EcoCapsule reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    prism = sub.add_parser("prism", help="design the wave prism for a concrete")
    prism.add_argument("--concrete", default="NC", help="NC, UHPC or UHPFRC")
    prism.set_defaults(func=_cmd_prism)

    rng = sub.add_parser("range", help="power-up range for a paper structure")
    rng.add_argument("--structure", default="S3", help="S1, S2, S3 or S4")
    rng.add_argument("--voltage", type=float, default=250.0)
    rng.set_defaults(func=_cmd_range)

    shell = sub.add_parser("shell", help="shell limits vs building height")
    shell.add_argument("--height", type=float, default=120.0, help="metres")
    shell.set_defaults(func=_cmd_shell)

    survey = sub.add_parser("survey", help="simulate a wall survey session")
    survey.add_argument("--nodes", type=int, default=6)
    survey.add_argument("--length", type=float, default=8.0)
    survey.add_argument("--thickness", type=float, default=0.20)
    survey.add_argument("--concrete", default="UHPC")
    survey.add_argument("--voltage", type=float, default=250.0)
    survey.add_argument("--seed", type=int, default=7)
    survey.add_argument(
        "--faults", default=None, metavar="PLAN.JSON",
        help="run the survey under a fault plan (see docs/ROBUSTNESS.md)",
    )
    survey.set_defaults(func=_cmd_survey)

    pilot = sub.add_parser("pilot", help="run the footbridge pilot analytics")
    pilot.add_argument("--samples-per-hour", type=int, default=6)
    pilot.set_defaults(func=_cmd_pilot)

    export = sub.add_parser(
        "export", help="export figure data as CSV/JSON for plotting"
    )
    export.add_argument("--directory", default="figures")
    export.add_argument("--format", choices=("csv", "json"), default="csv")
    export.add_argument(
        "--figures", nargs="*", help="figure ids (default: all tabular figures)"
    )
    export.set_defaults(func=_cmd_export)

    experiments = sub.add_parser(
        "experiments", help="run the paper experiments through the runtime"
    )
    exp_sub = experiments.add_subparsers(dest="experiments_command", required=True)

    exp_list = exp_sub.add_parser("list", help="list registered experiments")
    exp_list.set_defaults(func=_cmd_experiments_list)

    exp_run = exp_sub.add_parser(
        "run", help="run experiments in parallel with result caching"
    )
    exp_run.add_argument("--all", action="store_true", help="run every experiment")
    exp_run.add_argument(
        "--only", nargs="+", metavar="NAME", help="registry ids to run"
    )
    exp_run.add_argument("--jobs", type=int, default=2, help="worker processes")
    exp_run.add_argument("--out", default="results", help="results directory")
    exp_run.add_argument(
        "--force", action="store_true", help="bypass the result cache"
    )
    exp_run.add_argument(
        "--quick", action="store_true",
        help="use the reduced (still seeded) CI parameters",
    )
    exp_run.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-experiment timeout in seconds",
    )
    exp_run.add_argument(
        "--cache-dir", default=None, help="cache location (default <out>/.cache)"
    )
    exp_run.add_argument(
        "--faults", default=None, metavar="PLAN.JSON",
        help="fault-plan JSON injected into experiments that accept a "
        "fault_plan parameter (see docs/ROBUSTNESS.md)",
    )
    exp_run.add_argument(
        "--retries", type=int, default=0,
        help="re-run failed/timed-out experiments up to N extra times "
        "with exponential backoff",
    )
    exp_run.add_argument(
        "--obs",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="collect metrics, trace spans and per-experiment profiles "
        "(--no-obs, the default, runs the no-op instrumentation path)",
    )
    exp_run.add_argument(
        "-v", "--verbose", action="store_true",
        help="per-experiment detail: seed, cache key, profile",
    )
    exp_run.set_defaults(func=_cmd_experiments_run)

    exp_validate = exp_sub.add_parser(
        "validate", help="validate a run directory's manifest and results"
    )
    exp_validate.add_argument("run_dir", help="results/<run_id> directory")
    exp_validate.set_defaults(func=_cmd_experiments_validate)

    exp_stats = exp_sub.add_parser(
        "stats", help="print the metrics collected by a --obs run"
    )
    exp_stats.add_argument("run_dir", help="results/<run_id> directory")
    exp_stats.add_argument(
        "--json", action="store_true", help="dump the raw metrics.json payload"
    )
    exp_stats.set_defaults(func=_cmd_experiments_stats)

    exp_trace = exp_sub.add_parser(
        "trace", help="validate/export the Chrome trace from a --obs run"
    )
    exp_trace.add_argument("run_dir", help="results/<run_id> directory")
    exp_trace.add_argument(
        "--out", default=None, help="copy the trace JSON to this path"
    )
    exp_trace.add_argument(
        "--json", action="store_true", help="print the trace JSON to stdout"
    )
    exp_trace.set_defaults(func=_cmd_experiments_trace)

    campaign = sub.add_parser(
        "campaign",
        help="run the checkpointed multi-month pilot (crash-safe, resumable)",
    )
    camp_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    camp_run = camp_sub.add_parser(
        "run", help="start a campaign (checkpointed when --state-dir is set)"
    )
    camp_run.add_argument(
        "--state-dir", default="",
        help="directory for checkpoints/log/result (empty = in-memory)",
    )
    camp_run.add_argument("--epochs", type=int, default=74,
                          help="weekly visits to simulate (74 = 17 months)")
    camp_run.add_argument("--nodes", type=int, default=8)
    camp_run.add_argument("--wall-length", type=float, default=8.0)
    camp_run.add_argument("--tx-voltage", type=float, default=250.0)
    camp_run.add_argument("--hours-per-epoch", type=int, default=168)
    camp_run.add_argument("--samples-per-hour", type=int, default=1)
    camp_run.add_argument("--seed", type=int, default=2021)
    camp_run.add_argument("--no-faults", action="store_true",
                          help="disable fault injection entirely")
    camp_run.add_argument("--fault-intensity", type=float, default=1.0)
    camp_run.add_argument("--storm-period", type=int, default=26,
                          help="epochs between storm windows")
    camp_run.add_argument("--storm-duration", type=int, default=2)
    camp_run.add_argument("--storm-intensity", type=float, default=3.0,
                          help="fault multiplier during storm epochs")
    camp_run.add_argument("--checkpoint-interval", type=int, default=1)
    camp_run.add_argument("--checkpoint-keep", type=int, default=5)
    camp_run.add_argument("--epoch-timeout-s", type=float, default=120.0,
                          help="watchdog bound per epoch (<=0 disables)")
    camp_run.add_argument("--obs", action="store_true",
                          help="collect campaign.* metrics and print them")
    camp_run.add_argument(
        "--store", default="", metavar="DIR",
        help="export every epoch's telemetry into this store directory",
    )
    camp_run.add_argument("--epoch-sleep-s", type=float, default=0.0,
                          help=argparse.SUPPRESS)  # CI kill-timing seam
    camp_run.set_defaults(func=_cmd_campaign_run)

    camp_resume = camp_sub.add_parser(
        "resume", help="continue a killed campaign from its last checkpoint"
    )
    camp_resume.add_argument("--state-dir", required=True)
    camp_resume.add_argument("--obs", action="store_true")
    camp_resume.add_argument(
        "--store", default="", metavar="DIR",
        help="telemetry store to continue exporting into (replayed "
        "epochs' earlier exports are truncated first)",
    )
    camp_resume.add_argument("--epoch-sleep-s", type=float, default=0.0,
                             help=argparse.SUPPRESS)
    camp_resume.set_defaults(func=_cmd_campaign_resume)

    camp_status = camp_sub.add_parser(
        "status", help="inspect a campaign directory without mutating it"
    )
    camp_status.add_argument("--state-dir", required=True)
    camp_status.add_argument("--json", action="store_true")
    camp_status.set_defaults(func=_cmd_campaign_status)

    fleet = sub.add_parser(
        "fleet",
        help="supervise a sharded multi-building campaign fleet "
        "(crash isolation, quarantine, deterministic completion)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fl_run = fleet_sub.add_parser(
        "run",
        help="start a fleet: N buildings sharded over a worker pool "
        "(exit 0 clean, 4 completed-with-quarantines, 3 interrupted)",
    )
    fl_run.add_argument(
        "--fleet-dir", required=True,
        help="directory for the manifest, shard state and fleet result",
    )
    fl_run.add_argument("--buildings", type=int, default=4,
                        help="number of buildings (named b001..bNNN)")
    fl_run.add_argument("--workers", type=int, default=4,
                        help="max concurrent shard workers")
    fl_run.add_argument("--seed", type=int, default=2021,
                        help="fleet seed; per-building seeds derive from it")
    fl_run.add_argument("--max-restarts", type=int, default=3,
                        help="consecutive failures before quarantine")
    fl_run.add_argument("--heartbeat-timeout-s", type=float, default=30.0,
                        help="kill a worker whose heartbeat is older "
                        "(<=0 disables the liveness watchdog)")
    fl_run.add_argument("--backoff-base-s", type=float, default=0.25)
    fl_run.add_argument("--backoff-max-s", type=float, default=5.0)
    fl_run.add_argument(
        "--worker-faults", default="", metavar="PLAN.JSON",
        help="inject worker-level kill/hang/poison faults "
        "(see docs/FLEET.md)",
    )
    # Campaign template (per-building; seeds are derived, not set here).
    fl_run.add_argument("--epochs", type=int, default=74)
    fl_run.add_argument("--nodes", type=int, default=8)
    fl_run.add_argument("--wall-length", type=float, default=8.0)
    fl_run.add_argument("--tx-voltage", type=float, default=250.0)
    fl_run.add_argument("--hours-per-epoch", type=int, default=168)
    fl_run.add_argument("--samples-per-hour", type=int, default=1)
    fl_run.add_argument("--no-faults", action="store_true",
                        help="disable campaign fault injection entirely")
    fl_run.add_argument("--fault-intensity", type=float, default=1.0)
    fl_run.add_argument("--storm-period", type=int, default=26)
    fl_run.add_argument("--storm-duration", type=int, default=2)
    fl_run.add_argument("--storm-intensity", type=float, default=3.0)
    fl_run.add_argument("--checkpoint-interval", type=int, default=1)
    fl_run.add_argument("--checkpoint-keep", type=int, default=5)
    fl_run.add_argument("--epoch-timeout-s", type=float, default=120.0)
    fl_run.add_argument(
        "--store", default="", metavar="DIR",
        help="shared telemetry store; each building gets its own "
        "locked partition",
    )
    fl_run.add_argument("--obs", action="store_true",
                        help="collect fleet.* metrics and print them")
    fl_run.add_argument("--epoch-sleep-s", type=float, default=0.0,
                        help=argparse.SUPPRESS)  # CI kill-timing seam
    fl_run.set_defaults(func=_cmd_fleet_run)

    fl_resume = fleet_sub.add_parser(
        "resume",
        help="continue a killed fleet from its manifest and checkpoints",
    )
    fl_resume.add_argument("--fleet-dir", required=True)
    fl_resume.add_argument(
        "--store", default="", metavar="DIR",
        help="override the store recorded in the manifest",
    )
    fl_resume.add_argument("--obs", action="store_true")
    fl_resume.add_argument("--epoch-sleep-s", type=float, default=0.0,
                           help=argparse.SUPPRESS)
    fl_resume.set_defaults(func=_cmd_fleet_resume)

    fl_status = fleet_sub.add_parser(
        "status",
        help="health of every shard (healthy/recovering/quarantined)",
    )
    fl_status.add_argument("--fleet-dir", required=True)
    fl_status.add_argument("--json", action="store_true")
    fl_status.set_defaults(func=_cmd_fleet_status)

    store = sub.add_parser(
        "store",
        help="the embedded telemetry store (ingest, rollups, query, HTTP)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def _store_dir(p):
        p.add_argument("--store", required=True, metavar="DIR",
                       help="telemetry store directory")

    st_ingest = store_sub.add_parser(
        "ingest", help="ingest a campaign result.json into a store"
    )
    _store_dir(st_ingest)
    st_ingest.add_argument("result", help="path to a campaign result.json")
    st_ingest.add_argument("--building", default="campaign")
    st_ingest.add_argument("--wall", default="pilot")
    st_ingest.set_defaults(func=_cmd_store_ingest)

    st_compact = store_sub.add_parser(
        "compact", help="regenerate hourly/daily rollups from raw samples"
    )
    _store_dir(st_compact)
    st_compact.set_defaults(func=_cmd_store_compact)

    st_query = store_sub.add_parser(
        "query", help="aggregate one metric over matching series"
    )
    _store_dir(st_query)
    st_query.add_argument("--metric", required=True)
    st_query.add_argument(
        "--agg", default="mean",
        choices=("count", "min", "max", "mean", "sum"),
    )
    st_query.add_argument("--building", default=None)
    st_query.add_argument("--wall", default=None)
    st_query.add_argument("--node", type=int, default=None)
    st_query.add_argument("--t0", type=float, default=None, help="hours")
    st_query.add_argument("--t1", type=float, default=None, help="hours")
    st_query.add_argument(
        "--resolution", default="raw", choices=("raw", "hourly", "daily")
    )
    st_query.add_argument("--group-by", default=None, choices=("node", "wall"))
    st_query.add_argument("--json", action="store_true")
    st_query.set_defaults(func=_cmd_store_query)

    st_health = store_sub.add_parser(
        "health", help="building health / degraded walls from stored strain"
    )
    _store_dir(st_health)
    st_health.add_argument("--building", required=True)
    st_health.add_argument("--t0", type=float, default=None, help="hours")
    st_health.add_argument("--t1", type=float, default=None, help="hours")
    st_health.add_argument(
        "--stale-hours", type=float, default=None,
        help="capsules lagging the newest sample by more are unreachable",
    )
    st_health.add_argument("--json", action="store_true")
    st_health.set_defaults(func=_cmd_store_health)

    st_stats = store_sub.add_parser(
        "stats", help="rows/bytes/blocks per series and resolution"
    )
    _store_dir(st_stats)
    st_stats.add_argument("--json", action="store_true")
    st_stats.set_defaults(func=_cmd_store_stats)

    st_serve = store_sub.add_parser(
        "serve", help="serve the store over JSON/HTTP"
    )
    _store_dir(st_serve)
    st_serve.add_argument("--host", default="127.0.0.1")
    st_serve.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    st_serve.add_argument(
        "--engine", choices=("threaded", "async"), default="threaded",
        help="threaded = stdlib reference server (default); async = "
        "asyncio gateway with keep-alive, rollup cache and load shedding",
    )
    st_serve.add_argument(
        "--workers", type=int, default=8, metavar="N",
        help="async engine: size of the blocking-read worker pool",
    )
    st_serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="async engine: max queued-or-executing requests before "
        "shedding with 503 + Retry-After",
    )
    st_serve.add_argument(
        "--cache-entries", type=int, default=512, metavar="N",
        help="async engine: LRU capacity of the hot-rollup block cache",
    )
    st_serve.add_argument(
        "--self-record", type=float, default=0.0, metavar="SECONDS",
        help="record the server's own request metrics into the store's "
        "_obs/serve series at this cadence (0 disables)",
    )
    st_serve.set_defaults(func=_cmd_store_serve)

    obs = sub.add_parser(
        "obs",
        help="operational telemetry: health dossiers and bench trends",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_report = obs_sub.add_parser(
        "report",
        help="summarize a store's _obs self-telemetry (markdown or JSON)",
    )
    obs_report.add_argument("--store", required=True, metavar="DIR",
                            help="telemetry store directory")
    obs_report.add_argument("--json", action="store_true")
    obs_report.set_defaults(func=_cmd_obs_report)

    obs_trend = obs_sub.add_parser(
        "trend",
        help="gate BENCH_*.json readings against floors and history",
    )
    obs_trend.add_argument(
        "--bench-dir", default=".", metavar="DIR",
        help="directory holding the BENCH_*.json artifacts",
    )
    obs_trend.add_argument(
        "--history", default="BENCH_HISTORY.jsonl", metavar="FILE",
        help="append-only JSONL of past readings (the baseline)",
    )
    obs_trend.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative slide off the history baseline tolerated "
        "(default 0.25)",
    )
    obs_trend.add_argument(
        "--record", action="store_true",
        help="append the current non-smoke readings to the history",
    )
    obs_trend.add_argument("--json", action="store_true")
    obs_trend.set_defaults(func=_cmd_obs_trend)

    chaos = sub.add_parser(
        "chaos",
        help="storage-fault drills: prove recovered-or-loud under "
        "ENOSPC/EIO/torn-rename",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    ch_run = chaos_sub.add_parser(
        "run",
        help="run (or resume) a seeded fault drill and judge its oracle",
    )
    ch_run.add_argument("--dir", required=True, metavar="DIR",
                        help="drill directory (manifest + clean + drill)")
    ch_run.add_argument(
        "--scenario", default="campaign",
        choices=("campaign", "fleet", "store"),
    )
    ch_run.add_argument("--seed", type=int, default=2021,
                        help="workload seed (campaign/fleet/store data)")
    ch_run.add_argument("--epochs", type=int, default=4)
    ch_run.add_argument("--nodes", type=int, default=4)
    ch_run.add_argument("--hours-per-epoch", type=int, default=24)
    ch_run.add_argument("--buildings", type=int, default=3)
    ch_run.add_argument("--batches", type=int, default=6)
    ch_run.add_argument("--rows-per-batch", type=int, default=64)
    ch_run.add_argument(
        "--max-attempts", type=int, default=5,
        help="faulted attempts per work unit before giving up loudly",
    )
    ch_run.add_argument(
        "--plan", default="", metavar="FILE",
        help="repro/io-faults/v1 JSON fault plan (flags override fields)",
    )
    ch_run.add_argument("--fault-seed", type=int, default=None,
                        help="fault-schedule seed (default: plan's)")
    for rate in (
        "enospc-write-rate", "eio-read-rate", "eio-fsync-rate",
        "torn-write-rate", "drop-rename-rate", "bitrot-read-rate",
        "persistence",
    ):
        ch_run.add_argument(f"--{rate}", type=float, default=None)
    ch_run.add_argument("--json", action="store_true")
    ch_run.set_defaults(func=_cmd_chaos_run)

    ch_verify = chaos_sub.add_parser(
        "verify",
        help="recompute a finished drill's verdict from its artifacts "
        "and cross-check the stamped one",
    )
    ch_verify.add_argument("--dir", required=True, metavar="DIR")
    ch_verify.add_argument("--json", action="store_true")
    ch_verify.set_defaults(func=_cmd_chaos_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
