"""Command-line interface for the EcoCapsule reproduction library.

Subcommands mirror the operator workflows the paper describes::

    python -m repro.cli prism --concrete NC
    python -m repro.cli range --structure S3 --voltage 250
    python -m repro.cli shell --height 120
    python -m repro.cli survey --nodes 8 --length 8 --voltage 250
    python -m repro.cli pilot
"""

from __future__ import annotations

import argparse
import math
import random
import sys
from typing import List, Optional

from .acoustics import StructureGeometry, WavePrism, paper_structures
from .link import PlacedNode, PowerUpLink, WallSession, plan_stations
from .materials import PLA, get_concrete
from .node import EcoCapsule, Environment, resin_shell, steel_shell


def _cmd_prism(args: argparse.Namespace) -> int:
    concrete = get_concrete(args.concrete)
    prism = WavePrism(PLA, concrete.medium)
    low, high = prism.critical_angles
    best = prism.recommend_angle()
    print(f"Concrete: {concrete.name} (Cp {concrete.cp:.0f}, Cs {concrete.cs:.0f} m/s)")
    print(
        f"S-only window: [{math.degrees(low):.1f}, {math.degrees(high):.1f}] deg"
    )
    print(f"Recommended incident angle: {math.degrees(best):.1f} deg")
    quality = prism.injection_quality(best)
    print(f"Injected energy at the optimum: {quality.injected_energy:.0%}")
    return 0


def _resolve_structure(name: str) -> StructureGeometry:
    for structure in paper_structures():
        if structure.name.lower().startswith(name.lower()):
            return structure
    raise SystemExit(
        f"unknown structure {name!r}; options: "
        + ", ".join(s.name.split()[0] for s in paper_structures())
    )


def _cmd_range(args: argparse.Namespace) -> int:
    structure = _resolve_structure(args.structure)
    budget = PowerUpLink(structure)
    reach = budget.max_range(args.voltage)
    print(f"Structure: {structure.name} ({structure.thickness * 100:.0f} cm thick)")
    print(f"Max power-up range at {args.voltage:.0f} V: {reach:.2f} m")
    plan = plan_stations(budget, tx_voltage=args.voltage)
    print(
        f"Stations to cover {structure.length:.0f} m: {len(plan.stations)} "
        f"at positions " + ", ".join(f"{s.position:.1f} m" for s in plan.stations)
    )
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    for shell, label in ((resin_shell(), "SLA resin"), (steel_shell(), "alloy steel")):
        verdict = "OK" if shell.survives(args.height) else "FAILS"
        print(
            f"{label:12s} dP_max {shell.max_pressure / 1e6:6.1f} MPa  "
            f"h_max {shell.max_height():7.0f} m  at {args.height:.0f} m: {verdict}"
        )
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    concrete = get_concrete(args.concrete)
    wall = StructureGeometry(
        "cli wall", length=args.length, thickness=args.thickness,
        medium=concrete.medium,
    )
    budget = PowerUpLink(wall)
    rng = random.Random(args.seed)
    nodes = [
        PlacedNode(
            capsule=EcoCapsule(
                node_id=i + 1,
                environment=Environment(
                    temperature=rng.uniform(18.0, 32.0),
                    humidity=rng.uniform(55.0, 90.0),
                    strain=rng.uniform(-200.0, 300.0),
                ),
                seed=args.seed + i,
            ),
            distance=rng.uniform(0.2, args.length * 0.4),
        )
        for i in range(args.nodes)
    ]
    session = WallSession(
        budget=budget, nodes=nodes, tx_voltage=args.voltage, seed=args.seed
    )
    result = session.run()
    print(
        f"Powered {len(result.powered_nodes)}/{args.nodes} nodes "
        f"({result.coverage:.0%}); session took {result.elapsed:.2f} s over "
        f"{result.slots_used} slots in {result.rounds_used} round(s)"
    )
    for node_id in sorted(result.reports):
        values = {r.channel: r.value for r in result.reports[node_id]}
        print(
            f"  node {node_id:2d}: "
            + "  ".join(f"{k}={v:.1f}" for k, v in sorted(values.items()))
        )
    if result.dark_nodes:
        print(f"  dark nodes (out of range): {result.dark_nodes}")
    return 0


def _cmd_pilot(args: argparse.Namespace) -> int:
    from .experiments import fig21_pilot_study

    result = fig21_pilot_study.run(samples_per_hour=args.samples_per_hour)
    print("Pilot study (synthetic July 2021):")
    print(f"  storm detected in both channels: {result.storm_detected_in_both}")
    print(f"  sensors mutually verified: {result.sensors_mutually_verified}")
    print(
        f"  compliance: |a|max {result.compliance.max_abs_acceleration:.3f} m/s^2, "
        f"|s|max {result.compliance.max_abs_stress_mpa:.0f} MPa -> "
        f"{'OK' if result.compliance.compliant else 'VIOLATION'}"
    )
    grades = ", ".join(f"{g}: {f:.0%}" for g, f in result.grade_fractions.items())
    print(f"  bridge grades over the month: {grades}")
    for health in result.section_health:
        print(
            f"  section {health.section}: No.{health.pedestrians} "
            f"Health {health.grade} Speed {health.mean_speed:.1f} m/s"
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .reporting import EXPORTERS, export_all

    figures = args.figures if args.figures else None
    written = export_all(args.directory, figures=figures, fmt=args.format)
    for path in written:
        print(f"wrote {path}")
    if not args.figures:
        print(f"({len(written)} figures: {', '.join(sorted(EXPORTERS))})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EcoCapsule reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    prism = sub.add_parser("prism", help="design the wave prism for a concrete")
    prism.add_argument("--concrete", default="NC", help="NC, UHPC or UHPFRC")
    prism.set_defaults(func=_cmd_prism)

    rng = sub.add_parser("range", help="power-up range for a paper structure")
    rng.add_argument("--structure", default="S3", help="S1, S2, S3 or S4")
    rng.add_argument("--voltage", type=float, default=250.0)
    rng.set_defaults(func=_cmd_range)

    shell = sub.add_parser("shell", help="shell limits vs building height")
    shell.add_argument("--height", type=float, default=120.0, help="metres")
    shell.set_defaults(func=_cmd_shell)

    survey = sub.add_parser("survey", help="simulate a wall survey session")
    survey.add_argument("--nodes", type=int, default=6)
    survey.add_argument("--length", type=float, default=8.0)
    survey.add_argument("--thickness", type=float, default=0.20)
    survey.add_argument("--concrete", default="UHPC")
    survey.add_argument("--voltage", type=float, default=250.0)
    survey.add_argument("--seed", type=int, default=7)
    survey.set_defaults(func=_cmd_survey)

    pilot = sub.add_parser("pilot", help="run the footbridge pilot analytics")
    pilot.add_argument("--samples-per-hour", type=int, default=6)
    pilot.set_defaults(func=_cmd_pilot)

    export = sub.add_parser(
        "export", help="export figure data as CSV/JSON for plotting"
    )
    export.add_argument("--directory", default="figures")
    export.add_argument("--format", choices=("csv", "json"), default="csv")
    export.add_argument(
        "--figures", nargs="*", help="figure ids (default: all tabular figures)"
    )
    export.set_defaults(func=_cmd_export)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
