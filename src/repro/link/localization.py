"""Capsule localization from backscatter round-trip timing.

Sec. 3.2 motivates the prism with "the locations of EcoCapsules inside
concrete are unknown".  Charging solves wake-up without knowing them,
but maintenance workflows (drilling near a capsule, correlating a
strain report with a position) benefit from locating the nodes.  This
module implements the natural extension: ranging each capsule from the
round-trip time of its backscatter response, and triangulating from
multiple reader stations.

Ranging: the reader timestamps the start of its command and the arrival
of the node's reply; subtracting the known protocol turnaround leaves
twice the one-way S-wave travel time.  Triangulation: with two or more
stations along the wall, the node's lateral position is the least-
squares intersection of the range circles (projected onto the wall
axis, since the thickness is small against the distances involved).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError


class LocalizationError(ReproError):
    """Localization had insufficient or inconsistent measurements."""


@dataclass(frozen=True)
class RangingMeasurement:
    """One station's round-trip observation of a node."""

    station_position: float  # m along the wall
    round_trip_time: float  # s, excluding the protocol turnaround
    wave_speed: float  # m/s (the S-wave speed of the host concrete)

    def __post_init__(self) -> None:
        if self.round_trip_time < 0.0:
            raise LocalizationError("round-trip time cannot be negative")
        if self.wave_speed <= 0.0:
            raise LocalizationError("wave speed must be positive")

    @property
    def distance(self) -> float:
        """One-way distance (m) implied by the round trip."""
        return 0.5 * self.round_trip_time * self.wave_speed


def simulate_round_trip(
    station_position: float,
    node_position: float,
    wave_speed: float,
    timing_jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> RangingMeasurement:
    """Synthesize a ranging measurement for a known geometry.

    ``timing_jitter`` is the RMS timestamping error (s); the paper's
    1 MS/s capture bounds it near one microsecond.
    """
    distance = abs(node_position - station_position)
    true_rtt = 2.0 * distance / wave_speed
    if timing_jitter > 0.0:
        if rng is None:
            rng = np.random.default_rng()
        true_rtt = max(0.0, true_rtt + float(rng.normal(0.0, timing_jitter)))
    return RangingMeasurement(
        station_position=station_position,
        round_trip_time=true_rtt,
        wave_speed=wave_speed,
    )


def locate(measurements: Sequence[RangingMeasurement]) -> Tuple[float, float]:
    """Estimate the node's lateral position from >= 2 station rangings.

    Each measurement constrains the node to one of two points
    (station +/- distance); with two or more stations the consistent
    combination is found by scoring every candidate against all
    measurements and refining with a least-squares average.

    Returns:
        (position estimate in m, residual RMS in m).

    Raises:
        LocalizationError: with fewer than two measurements.
    """
    if len(measurements) < 2:
        raise LocalizationError(
            f"need at least two stations, got {len(measurements)}"
        )

    # Candidate positions from the first measurement.
    first = measurements[0]
    candidates = (
        first.station_position - first.distance,
        first.station_position + first.distance,
    )

    def residuals(position: float) -> List[float]:
        return [
            abs(abs(position - m.station_position) - m.distance)
            for m in measurements
        ]

    best_candidate = min(candidates, key=lambda c: sum(r * r for r in residuals(c)))

    # Refine: average the per-station implied positions on the chosen side.
    implied: List[float] = []
    for m in measurements:
        if best_candidate >= m.station_position:
            implied.append(m.station_position + m.distance)
        else:
            implied.append(m.station_position - m.distance)
    estimate = float(np.mean(implied))
    rms = math.sqrt(float(np.mean([r * r for r in residuals(estimate)])))
    return estimate, rms


@dataclass
class WallLocalizer:
    """Locates every capsule in a wall from multi-station rangings.

    Args:
        station_positions: Reader attachment points (m along the wall).
        wave_speed: Host concrete S-wave speed (m/s).
        timing_jitter: RMS timestamp error per measurement (s).
        seed: RNG seed for the jitter.
    """

    station_positions: Sequence[float]
    wave_speed: float
    timing_jitter: float = 1e-6
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.station_positions) < 2:
            raise LocalizationError("need at least two stations")
        if self.wave_speed <= 0.0:
            raise LocalizationError("wave speed must be positive")
        self._rng = np.random.default_rng(self.seed)

    def survey(self, node_positions: Sequence[float]) -> List[Tuple[float, float]]:
        """Range-and-locate each node; returns (estimate, residual) pairs."""
        results: List[Tuple[float, float]] = []
        for node in node_positions:
            measurements = [
                simulate_round_trip(
                    station,
                    node,
                    self.wave_speed,
                    timing_jitter=self.timing_jitter,
                    rng=self._rng,
                )
                for station in self.station_positions
            ]
            results.append(locate(measurements))
        return results

    def expected_accuracy(self) -> float:
        """RMS position error (m) implied by the timing jitter.

        One-way distance error is ``0.5 * jitter * speed`` per station;
        averaging over N stations improves it by sqrt(N).
        """
        per_station = 0.5 * self.timing_jitter * self.wave_speed
        return per_station / math.sqrt(len(self.station_positions))
