"""Link layer: budgets, simulations, adaptation, sessions, deployment."""

from .adaptation import CarrierTuner, ForeignObjectChannel, Notch, TuneResult
from .localization import (
    LocalizationError,
    RangingMeasurement,
    WallLocalizer,
    locate,
    simulate_round_trip,
)
from .budget import DEFAULT_COUPLING, PowerUpLink, harvested_headroom_db
from .deployment import (
    DeploymentError,
    DeploymentPlan,
    ReaderStation,
    SurveyEstimate,
    estimate_survey,
    plan_stations,
)
from .session import PlacedNode, SessionResult, SessionTiming, WallSession
from .simulation import (
    DEFAULT_SIMULATION_SEED,
    DownlinkSimulator,
    SnrBitrateModel,
    UplinkBasebandSimulator,
    UplinkPassbandSimulator,
    UplinkResult,
)

__all__ = [
    "LocalizationError",
    "RangingMeasurement",
    "WallLocalizer",
    "locate",
    "simulate_round_trip",
    "CarrierTuner",
    "ForeignObjectChannel",
    "Notch",
    "TuneResult",
    "DEFAULT_COUPLING",
    "PowerUpLink",
    "harvested_headroom_db",
    "DeploymentError",
    "DeploymentPlan",
    "ReaderStation",
    "SurveyEstimate",
    "estimate_survey",
    "plan_stations",
    "PlacedNode",
    "SessionResult",
    "SessionTiming",
    "WallSession",
    "DEFAULT_SIMULATION_SEED",
    "DownlinkSimulator",
    "SnrBitrateModel",
    "UplinkBasebandSimulator",
    "UplinkPassbandSimulator",
    "UplinkResult",
]
