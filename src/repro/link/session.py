"""Wall-session simulator: charging, inventory and reads with timing/energy.

Ties the whole stack together the way an operator uses it (Fig. 1f):
attach the reader, blast the CBW until the in-range capsules cold-start,
run TDMA inventory rounds, and collect sensor reports -- while tracking
wall-clock time and per-node energy.  This is the engine behind the
deployment planner and the protocol-level ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PowerError, ProtocolError
from ..node import EcoCapsule
from ..obs import obs_counter, obs_enabled, obs_gauge, obs_histogram, obs_span
from ..phy import PieTiming
from ..protocol import TdmaInventory, SensorReport
from .budget import PowerUpLink


@dataclass(frozen=True)
class PlacedNode:
    """A capsule implanted at a distance along the structure."""

    capsule: EcoCapsule
    distance: float  # m from the reader station

    def __post_init__(self) -> None:
        if self.distance < 0.0:
            raise PowerError("distance cannot be negative")


@dataclass
class SessionTiming:
    """Air-interface timing used for the session clock."""

    pie: PieTiming = field(default_factory=PieTiming)
    uplink_bitrate: float = 1e3
    command_bits: int = 24  # mean downlink command length incl. framing
    reply_bits: int = 43  # RN16 (16) or sensor report (43); use the larger
    turnaround: float = 1e-3  # guard time between downlink and uplink

    @property
    def slot_duration(self) -> float:
        """Worst-case duration of one inventory slot (s)."""
        downlink = self.command_bits * self.pie.one_duration
        uplink = self.reply_bits / self.uplink_bitrate
        return downlink + self.turnaround + uplink + self.turnaround


@dataclass
class SessionResult:
    """What a completed wall session produced."""

    powered_nodes: List[int]
    dark_nodes: List[int]
    reports: Dict[int, List[SensorReport]]
    elapsed: float  # s, wall-clock from CBW-on to last report
    slots_used: int
    rounds_used: int
    node_energy: Dict[int, float]  # J consumed per powered node

    @property
    def coverage(self) -> float:
        total = len(self.powered_nodes) + len(self.dark_nodes)
        if total == 0:
            raise ProtocolError("session had no nodes")
        return len(self.powered_nodes) / total

    @property
    def reads_per_second(self) -> float:
        if self.elapsed <= 0.0:
            raise ProtocolError("session consumed no time")
        return sum(len(r) for r in self.reports.values()) / self.elapsed


@dataclass
class WallSession:
    """One reader station serving a set of implanted capsules.

    Args:
        budget: The structure's charging-link budget.
        nodes: The implanted capsules and their distances.
        tx_voltage: Reader drive voltage (V).
        channels: Sensor channels to read per singulated node.
        timing: Air-interface timing for the session clock.
        initial_q: TDMA starting Q.
        seed: RNG seed for the inventory.
    """

    budget: PowerUpLink
    nodes: Sequence[PlacedNode]
    tx_voltage: float = 250.0
    channels: Sequence[str] = ("temperature", "humidity", "strain")
    timing: SessionTiming = field(default_factory=SessionTiming)
    initial_q: int = 2
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tx_voltage <= 0.0:
            raise PowerError("TX voltage must be positive")
        if not self.nodes:
            raise ProtocolError("session needs at least one node")

    def charge(self) -> Tuple[List[PlacedNode], List[PlacedNode], float]:
        """Apply the CBW field to every node.

        Returns:
            (powered nodes, dark nodes, charge time) where charge time is
            the slowest cold start among the powered nodes.
        """
        powered: List[PlacedNode] = []
        dark: List[PlacedNode] = []
        slowest = 0.0
        for placed in self.nodes:
            field_v = self.budget.node_voltage(placed.distance, self.tx_voltage)
            if placed.capsule.apply_field(field_v):
                powered.append(placed)
                slowest = max(slowest, placed.capsule.cold_start_time())
            else:
                dark.append(placed)
        return powered, dark, slowest

    def run(self, max_rounds: int = 20) -> SessionResult:
        """Execute the full session: charge, inventory, read, account."""
        with obs_span("session.charge", nodes=len(self.nodes)):
            powered, dark, charge_time = self.charge()
        if obs_enabled():
            obs_counter("session.nodes_powered").inc(len(powered))
            obs_counter("session.nodes_dark").inc(len(dark))
            obs_histogram("session.charge_s").observe(charge_time)
        if not powered:
            return SessionResult(
                powered_nodes=[],
                dark_nodes=[p.capsule.node_id for p in dark],
                reports={},
                elapsed=charge_time,
                slots_used=0,
                rounds_used=0,
                node_energy={},
            )

        inventory = TdmaInventory(
            nodes=[p.capsule.protocol for p in powered],
            initial_q=self.initial_q,
            channels=self.channels,
            seed=self.seed,
        )
        reports: Dict[int, List[SensorReport]] = {}
        slots_used = 0
        rounds_used = 0
        with obs_span("session.inventory", powered=len(powered)):
            for _ in range(max_rounds):
                round_result = inventory.run_round()
                rounds_used += 1
                slots_used += len(round_result.slots)
                for slot in round_result.slots:
                    if slot.singulated_node_id is not None and slot.reports:
                        # Later rounds re-singulate already-served nodes (they
                        # power-cycle between rounds); keep the first full read.
                        if slot.singulated_node_id not in reports:
                            reports[slot.singulated_node_id] = list(slot.reports)
                if len(reports) == len(powered):
                    break
                for p in powered:
                    p.capsule.protocol.power_cycle()

        elapsed = charge_time + slots_used * self.timing.slot_duration
        energy = {
            p.capsule.node_id: p.capsule.mcu.energy(
                "active", elapsed, self.timing.uplink_bitrate
            )
            for p in powered
        }
        result = SessionResult(
            powered_nodes=sorted(p.capsule.node_id for p in powered),
            dark_nodes=sorted(p.capsule.node_id for p in dark),
            reports=reports,
            elapsed=elapsed,
            slots_used=slots_used,
            rounds_used=rounds_used,
            node_energy=energy,
        )
        if obs_enabled():
            # Session health gauges: last-session view of charging
            # coverage and read throughput (the paper's two headline
            # operator metrics).
            obs_gauge("session.charge_coverage").set(result.coverage)
            if result.elapsed > 0.0:
                obs_gauge("session.reads_per_second").set(
                    result.reads_per_second
                )
            obs_counter("session.reports_collected").inc(
                sum(len(r) for r in reports.values())
            )
            obs_counter("session.runs").inc()
        return result
