"""Wall-session simulator: charging, inventory and reads with timing/energy.

Ties the whole stack together the way an operator uses it (Fig. 1f):
attach the reader, blast the CBW until the in-range capsules cold-start,
run TDMA inventory rounds, and collect sensor reports -- while tracking
wall-clock time and per-node energy.  This is the engine behind the
deployment planner and the protocol-level ablations.

The session degrades instead of failing: give it a
:class:`~repro.faults.FaultPlan` and CBW charge attempts can drop out
(the session retries with bounded exponential backoff before declaring
the wall dark), inventory rounds run over the lossy channel, and the
:class:`SessionResult` reports exactly what was lost --
``unheard_nodes``, ``retries``, ``fault_counts`` and the ``degraded``
flag -- rather than raising mid-survey.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PowerError, ProtocolError
from ..faults import FaultInjector, FaultPlan
from ..node import EcoCapsule
from ..obs import obs_counter, obs_enabled, obs_gauge, obs_histogram, obs_span
from ..phy import PieTiming
from ..protocol import TdmaInventory, SensorReport
from .budget import PowerUpLink


@dataclass(frozen=True)
class PlacedNode:
    """A capsule implanted at a distance along the structure."""

    capsule: EcoCapsule
    distance: float  # m from the reader station

    def __post_init__(self) -> None:
        if self.distance < 0.0:
            raise PowerError("distance cannot be negative")


@dataclass
class SessionTiming:
    """Air-interface timing used for the session clock."""

    pie: PieTiming = field(default_factory=PieTiming)
    uplink_bitrate: float = 1e3
    command_bits: int = 24  # mean downlink command length incl. framing
    reply_bits: int = 43  # RN16 (16) or sensor report (43); use the larger
    turnaround: float = 1e-3  # guard time between downlink and uplink

    @property
    def slot_duration(self) -> float:
        """Worst-case duration of one inventory slot (s)."""
        downlink = self.command_bits * self.pie.one_duration
        uplink = self.reply_bits / self.uplink_bitrate
        return downlink + self.turnaround + uplink + self.turnaround


@dataclass
class SessionResult:
    """What a completed wall session produced -- including the losses.

    A session never raises for an imperfect survey; it reports one of
    these with the damage itemised.  ``degraded`` is True when any
    powered node went unheard or charging failed outright; dark nodes
    (physically out of the charge envelope) do not count as degradation
    because no protocol effort can reach them.
    """

    powered_nodes: List[int]
    dark_nodes: List[int]
    reports: Dict[int, List[SensorReport]]
    elapsed: float  # s, wall-clock from CBW-on to last report
    slots_used: int
    rounds_used: int
    node_energy: Dict[int, float]  # J consumed per powered node
    unheard_nodes: List[int] = field(default_factory=list)
    retries: int = 0  # reader-side command retransmissions
    charge_attempts: int = 1  # CBW attempts incl. the successful one
    backoff_s: float = 0.0  # total time spent backing off between attempts
    recharges: int = 0  # re-charge cycles between inventory rounds
    fault_counts: Dict[str, int] = field(default_factory=dict)
    charge_failed: bool = False  # every CBW attempt dropped out

    @property
    def degraded(self) -> bool:
        """True when powered nodes went unheard or charging failed."""
        return self.charge_failed or bool(self.unheard_nodes)

    @property
    def coverage(self) -> float:
        total = len(self.powered_nodes) + len(self.dark_nodes)
        if total == 0:
            raise ProtocolError("session had no nodes")
        return len(self.powered_nodes) / total

    @property
    def reads_per_second(self) -> float:
        if self.elapsed <= 0.0:
            raise ProtocolError("session consumed no time")
        return sum(len(r) for r in self.reports.values()) / self.elapsed


@dataclass
class WallSession:
    """One reader station serving a set of implanted capsules.

    Args:
        budget: The structure's charging-link budget.
        nodes: The implanted capsules and their distances.
        tx_voltage: Reader drive voltage (V).
        channels: Sensor channels to read per singulated node.
        timing: Air-interface timing for the session clock.
        initial_q: TDMA starting Q.
        seed: RNG seed for the inventory.
        faults: Optional fault plan; the session then charges and
            inventories through the lossy world it describes.
        max_retries: Reader retransmissions per protocol command.
        max_charge_attempts: CBW attempts before giving the wall up as
            dark for this session.
        backoff_initial_s: First retry backoff; doubles per attempt.
        backoff_max_s: Ceiling on a single backoff interval.
    """

    budget: PowerUpLink
    nodes: Sequence[PlacedNode]
    tx_voltage: float = 250.0
    channels: Sequence[str] = ("temperature", "humidity", "strain")
    timing: SessionTiming = field(default_factory=SessionTiming)
    initial_q: int = 2
    seed: Optional[int] = None
    faults: Optional[FaultPlan] = None
    max_retries: int = 2
    max_charge_attempts: int = 3
    backoff_initial_s: float = 0.1
    backoff_max_s: float = 2.0

    def __post_init__(self) -> None:
        if self.tx_voltage <= 0.0:
            raise PowerError("TX voltage must be positive")
        if not self.nodes:
            raise ProtocolError("session needs at least one node")
        if self.max_charge_attempts < 1:
            raise ProtocolError(
                f"need at least one charge attempt, got {self.max_charge_attempts}"
            )
        if self.backoff_initial_s < 0.0 or self.backoff_max_s < 0.0:
            raise ProtocolError("backoff durations cannot be negative")

    def charge(self) -> Tuple[List[PlacedNode], List[PlacedNode], float]:
        """Apply the CBW field to every node.

        The field solve dispatches on the ambient PHY engine (see
        :mod:`repro.phy.batch`): the batch engines evaluate the whole
        wall's link budget in one broadcast
        (:meth:`PowerUpLink.node_voltages`), the scalar engine walks the
        nodes through the reference :meth:`PowerUpLink.node_voltage`.
        The two differ by at most 1 ulp per voltage (documented in
        docs/PERFORMANCE.md); power-up margins are orders of magnitude
        wider.

        Returns:
            (powered nodes, dark nodes, charge time) where charge time is
            the slowest cold start among the powered nodes.
        """
        from ..phy.batch import resolve_engine

        if resolve_engine() == "scalar" or len(self.nodes) == 1:
            voltages = [
                self.budget.node_voltage(placed.distance, self.tx_voltage)
                for placed in self.nodes
            ]
        else:
            voltages = [
                float(v)
                for v in self.budget.node_voltages(
                    [placed.distance for placed in self.nodes],
                    self.tx_voltage,
                )
            ]
        powered: List[PlacedNode] = []
        dark: List[PlacedNode] = []
        slowest = 0.0
        for placed, field_v in zip(self.nodes, voltages):
            if placed.capsule.apply_field(field_v):
                powered.append(placed)
                slowest = max(slowest, placed.capsule.cold_start_time())
            else:
                dark.append(placed)
        return powered, dark, slowest

    def _charge_with_retry(
        self, injector: Optional[FaultInjector]
    ) -> Tuple[List[PlacedNode], List[PlacedNode], float, int, float, bool]:
        """Charge, retrying dropped-out CBW attempts with backoff.

        Returns:
            (powered, dark, charge_time, attempts, backoff_s, failed).
        """
        backoff_s = 0.0
        for attempt in range(1, self.max_charge_attempts + 1):
            if injector is not None and injector.reader_dropout():
                if obs_enabled():
                    obs_counter("session.charge_retries").inc()
                if attempt < self.max_charge_attempts:
                    backoff_s += min(
                        self.backoff_initial_s * 2 ** (attempt - 1),
                        self.backoff_max_s,
                    )
                continue
            powered, dark, charge_time = self.charge()
            return powered, dark, charge_time, attempt, backoff_s, False
        return [], list(self.nodes), 0.0, self.max_charge_attempts, backoff_s, True

    def run(self, max_rounds: int = 20) -> SessionResult:
        """Execute the full session: charge, inventory, read, account.

        Never raises for a hostile wall: an unchargeable or partially
        heard deployment comes back as a ``degraded`` result.
        """
        injector = FaultInjector.from_plan(self.faults)
        with obs_span("session.charge", nodes=len(self.nodes)):
            powered, dark, charge_time, attempts, backoff_s, failed = (
                self._charge_with_retry(injector)
            )
        if obs_enabled():
            obs_counter("session.nodes_powered").inc(len(powered))
            obs_counter("session.nodes_dark").inc(len(dark))
            obs_histogram("session.charge_s").observe(charge_time)
            if failed:
                obs_counter("session.charge_failures").inc()
        if not powered:
            return SessionResult(
                powered_nodes=[],
                dark_nodes=[p.capsule.node_id for p in dark],
                reports={},
                elapsed=charge_time + backoff_s,
                slots_used=0,
                rounds_used=0,
                node_energy={},
                charge_attempts=attempts,
                backoff_s=backoff_s,
                fault_counts=dict(injector.counts) if injector else {},
                charge_failed=failed,
            )

        inventory = TdmaInventory(
            nodes=[p.capsule.protocol for p in powered],
            initial_q=self.initial_q,
            channels=self.channels,
            seed=self.seed,
            faults=self.faults,
            max_retries=self.max_retries,
        )
        with obs_span("session.inventory", powered=len(powered)):
            outcome = inventory.inventory_all(max_rounds=max_rounds)
        reports = outcome.reports

        # Every round after the first begins with a re-charge (the CBW
        # gap between rounds power-cycles the capsules).  The idealised
        # clean clock ignores that cost -- kept for continuity with the
        # paper's timing model -- but fault-mode surveys pay it.
        recharges = max(0, outcome.rounds_used - 1) if injector is not None else 0
        elapsed = (
            backoff_s
            + charge_time * (1 + recharges)
            + outcome.slots_used * self.timing.slot_duration
        )
        energy = {
            p.capsule.node_id: p.capsule.mcu.energy(
                "active", elapsed, self.timing.uplink_bitrate
            )
            for p in powered
        }
        fault_counts = dict(outcome.fault_counts)
        if injector:
            for name, count in injector.counts.items():
                fault_counts[name] = fault_counts.get(name, 0) + count
        result = SessionResult(
            powered_nodes=sorted(p.capsule.node_id for p in powered),
            dark_nodes=sorted(p.capsule.node_id for p in dark),
            reports=reports,
            elapsed=elapsed,
            slots_used=outcome.slots_used,
            rounds_used=outcome.rounds_used,
            node_energy=energy,
            unheard_nodes=list(outcome.unheard_nodes),
            retries=outcome.retries,
            charge_attempts=attempts,
            backoff_s=backoff_s,
            recharges=recharges,
            fault_counts=fault_counts,
        )
        if obs_enabled():
            # Session health gauges: last-session view of charging
            # coverage and read throughput (the paper's two headline
            # operator metrics).
            obs_gauge("session.charge_coverage").set(result.coverage)
            if result.elapsed > 0.0:
                obs_gauge("session.reads_per_second").set(
                    result.reads_per_second
                )
            obs_counter("session.reports_collected").inc(
                sum(len(r) for r in reports.values())
            )
            obs_counter("session.runs").inc()
            if result.degraded:
                obs_counter("session.degraded").inc()
        return result
