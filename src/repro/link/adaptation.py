"""Channel adaptation: carrier fine-tuning against foreign objects.

Sec. 3.5(2) of the paper: rebar, gravel and casting cavities inside the
concrete reflect and diffract the acoustic wave, occasionally carving
deep frequency-selective notches into the channel -- and "fine-tuning
the frequency can significantly improve the channel when the channel
deteriorates due to foreign objects".

This module implements both halves of that observation:

* :class:`ForeignObjectChannel` -- a frequency-selective channel model:
  the smooth concrete response multiplied by a set of random notches
  whose depth/width follow the scatterer population;
* :class:`CarrierTuner` -- the reader-side adaptation loop: probe a
  small set of candidate frequencies inside the carrier band, track the
  best one, and re-tune when the current carrier's quality drops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..acoustics import CARRIER_BAND, ConcreteBlock, FrequencyResponse
from ..errors import AcousticsError
from ..units import db_amplitude


@dataclass(frozen=True)
class Notch:
    """One interference notch carved by a foreign object."""

    frequency: float  # centre (Hz)
    depth_db: float  # attenuation at the centre (positive dB)
    width: float  # -3 dB half width (Hz)

    def gain(self, frequency: float) -> float:
        """Linear amplitude factor (<= 1) of this notch at ``frequency``."""
        x = (frequency - self.frequency) / self.width
        rejection_db = self.depth_db / (1.0 + x * x)
        return 10.0 ** (-rejection_db / 20.0)


@dataclass
class ForeignObjectChannel:
    """A concrete channel degraded by embedded scatterers.

    Args:
        block: The host concrete block (sets the smooth response).
        n_objects: Number of scatterer notches inside the band.
        max_depth_db: Deepest possible notch.
        seed: RNG seed for the notch draw.
        band: Frequency band the notches land in; defaults to a widened
            carrier band so band-edge behaviour is realistic.
    """

    block: ConcreteBlock
    n_objects: int = 3
    max_depth_db: float = 18.0
    seed: Optional[int] = None
    band: Tuple[float, float] = (180e3, 270e3)
    notches: List[Notch] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_objects < 0:
            raise AcousticsError("n_objects cannot be negative")
        if self.max_depth_db < 0.0:
            raise AcousticsError("max depth cannot be negative")
        low, high = self.band
        if low >= high:
            raise AcousticsError(f"invalid band {self.band}")
        self._response = FrequencyResponse(self.block)
        if not self.notches:
            rng = np.random.default_rng(self.seed)
            self.notches = [
                Notch(
                    frequency=float(rng.uniform(low, high)),
                    depth_db=float(rng.uniform(6.0, self.max_depth_db)),
                    width=float(rng.uniform(1.5e3, 6e3)),
                )
                for _ in range(self.n_objects)
            ]

    def gain(self, frequency: float) -> float:
        """Linear amplitude gain: smooth response x all notches."""
        total = self._response.gain(frequency)
        for notch in self.notches:
            total *= notch.gain(frequency)
        return total

    def gain_db(self, frequency: float) -> float:
        gain = self.gain(frequency)
        if gain <= 0.0:
            return -math.inf
        return db_amplitude(gain)

    def degradation_db(self, frequency: float) -> float:
        """How many dB the notches cost at ``frequency`` (>= 0)."""
        smooth = self._response.gain(frequency)
        if smooth <= 0.0:
            raise AcousticsError("smooth response collapsed to zero")
        return db_amplitude(smooth / max(self.gain(frequency), 1e-30))


@dataclass
class TuneResult:
    """Outcome of one adaptation pass."""

    carrier: float
    gain_db: float
    probed: List[Tuple[float, float]]  # (frequency, gain dB)
    retuned: bool

    @property
    def improvement_db(self) -> float:
        """Gain over the worst probed candidate (a lower bound on what
        fine-tuning saved versus an unlucky fixed carrier)."""
        worst = min(g for _, g in self.probed)
        return self.gain_db - worst


@dataclass
class CarrierTuner:
    """Reader-side carrier fine-tuning loop.

    Probes ``n_candidates`` frequencies across the carrier band (plus the
    current carrier), measures each channel gain, and switches when the
    best candidate beats the current carrier by at least ``hysteresis_db``
    (hysteresis avoids ping-ponging between near-equal tones).

    The paper's default operating point (230 kHz) is the initial carrier.
    """

    band: Tuple[float, float] = CARRIER_BAND
    n_candidates: int = 11
    hysteresis_db: float = 1.0
    carrier: float = 230e3

    def __post_init__(self) -> None:
        low, high = self.band
        if low >= high:
            raise AcousticsError(f"invalid band {self.band}")
        if not low <= self.carrier <= high:
            raise AcousticsError(
                f"carrier {self.carrier} outside the band {self.band}"
            )
        if self.n_candidates < 2:
            raise AcousticsError("need at least two candidates")
        if self.hysteresis_db < 0.0:
            raise AcousticsError("hysteresis cannot be negative")

    def candidates(self) -> List[float]:
        """The probe grid: evenly spaced tones plus the current carrier."""
        low, high = self.band
        grid = [
            low + (high - low) * i / (self.n_candidates - 1)
            for i in range(self.n_candidates)
        ]
        if self.carrier not in grid:
            grid.append(self.carrier)
        return sorted(grid)

    def tune(self, channel: ForeignObjectChannel) -> TuneResult:
        """One adaptation pass against ``channel``."""
        probed = [(f, channel.gain_db(f)) for f in self.candidates()]
        current_gain = channel.gain_db(self.carrier)
        best_freq, best_gain = max(probed, key=lambda p: p[1])
        retuned = best_gain > current_gain + self.hysteresis_db
        if retuned:
            self.carrier = best_freq
            current_gain = best_gain
        return TuneResult(
            carrier=self.carrier,
            gain_db=current_gain,
            probed=probed,
            retuned=retuned,
        )

    def track(
        self, channels: Sequence[ForeignObjectChannel]
    ) -> List[TuneResult]:
        """Adapt across a sequence of channel states (ageing concrete)."""
        return [self.tune(channel) for channel in channels]
