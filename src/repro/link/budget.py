"""Power-up link budget and range solver (paper Sec. 5.2, Fig. 12).

Maps a reader drive voltage to the CBW field at a node ``d`` metres
away, and solves for the maximum power-up range:

    V_node(d) = K * V_tx * (r_ref / d)^e * 10^(-a(f) d / 20)

* ``K`` -- the system coupling constant, folding the matching network,
  PZT conversion, prism injection and contact coupling (calibrated to
  the S3-wall anchors of Fig. 12);
* ``e`` -- the guidance exponent of the structure (thin walls guide the
  S-reflections, widening range; see ``guidance_exponent``);
* ``a(f)`` -- the medium's attenuation power law.

The node powers up when ``V_node`` clears the harvester's activation
voltage (0.5 V, Fig. 14); ranges cap at the structure length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..acoustics import SpreadingModel, StructureGeometry, guidance_exponent
from ..circuits import EnergyHarvester
from ..errors import AcousticsError, PowerError

#: System coupling constant calibrated against Fig. 12's S3 anchors
#: (134 cm at 50 V, ~5 m at 200 V).
DEFAULT_COUPLING = 0.052


@dataclass
class PowerUpLink:
    """Charging-link budget for one structure.

    Args:
        structure: The structure geometry and medium.
        frequency: CBW frequency (Hz).
        coupling: System coupling constant K.
        harvester: The node's harvesting chain (activation threshold).
        spreading_exponent: Override for the guidance exponent; derived
            from the structure when None.
    """

    structure: StructureGeometry
    frequency: float = 230e3
    coupling: float = DEFAULT_COUPLING
    harvester: EnergyHarvester = field(default_factory=EnergyHarvester)
    spreading_exponent: Optional[float] = None

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise AcousticsError("frequency must be positive")
        if self.coupling <= 0.0:
            raise AcousticsError("coupling must be positive")
        if self.spreading_exponent is None:
            medium = self.structure.medium
            speed = medium.cs if not medium.is_fluid else medium.cp
            self.spreading_exponent = guidance_exponent(
                self.structure.thickness, speed / self.frequency
            )
        self._spreading = SpreadingModel(exponent=self.spreading_exponent)

    def node_voltage(self, distance: float, tx_voltage: float) -> float:
        """CBW peak voltage (V) at a node ``distance`` metres from the reader."""
        if tx_voltage <= 0.0:
            raise PowerError("TX voltage must be positive")
        if distance < 0.0:
            raise PowerError("distance cannot be negative")
        gain = self._spreading.amplitude_gain(distance)
        absorption_db = self.structure.medium.attenuation_db(self.frequency, distance)
        return self.coupling * tx_voltage * gain * 10.0 ** (-absorption_db / 20.0)

    def node_voltages(self, distances, tx_voltage: float) -> "np.ndarray":
        """Batched :meth:`node_voltage` over an array of distances.

        One broadcast evaluates the whole wall; results match the scalar
        budget to 1 ulp (vectorized ``**`` differs from scalar ``**`` in
        the last bit -- see docs/PERFORMANCE.md).  Power-up decisions
        sit far from the activation threshold relative to that error.
        """
        import numpy as np

        from ..acoustics.batch import attenuation_db_batch, spreading_gains

        if tx_voltage <= 0.0:
            raise PowerError("TX voltage must be positive")
        distances = np.asarray(distances, dtype=float)
        if (distances < 0.0).any():
            raise PowerError("distance cannot be negative")
        gain = spreading_gains(self._spreading, distances)
        absorption_db = attenuation_db_batch(
            self.structure.medium, self.frequency, distances
        )
        return self.coupling * tx_voltage * gain * 10.0 ** (-absorption_db / 20.0)

    def powers_up(self, distance: float, tx_voltage: float) -> bool:
        """True when a node at ``distance`` wakes at ``tx_voltage``."""
        if distance > self.structure.length:
            return False
        return self.harvester.can_power_up(self.node_voltage(distance, tx_voltage))

    def max_range(self, tx_voltage: float, resolution: float = 1e-3) -> float:
        """Maximum power-up distance (m) at ``tx_voltage`` (Fig. 12).

        Bisects the monotone budget; the result caps at the structure
        length (Fig. 12's S1/S2 curves terminate at their lengths).
        Returns 0.0 when even contact range fails.
        """
        threshold = self.harvester.activation_voltage
        reference = self._spreading.reference_distance
        if self.node_voltage(reference, tx_voltage) < threshold:
            return 0.0
        limit = self.structure.length
        if self.node_voltage(limit, tx_voltage) >= threshold:
            return limit
        low, high = reference, limit
        while high - low > resolution:
            mid = 0.5 * (low + high)
            if self.node_voltage(mid, tx_voltage) >= threshold:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def minimum_voltage(self, distance: float, max_voltage: float = 250.0) -> float:
        """Lowest TX voltage (V) that powers a node at ``distance``.

        Raises:
            PowerError: when even ``max_voltage`` cannot reach it.
        """
        if distance > self.structure.length:
            raise PowerError(
                f"distance {distance} m exceeds the structure length "
                f"{self.structure.length} m"
            )
        # V_node is linear in V_tx, so solve directly.
        unit = self.node_voltage(distance, 1.0)
        if unit <= 0.0:
            raise PowerError("channel gain collapsed to zero")
        needed = self.harvester.activation_voltage / unit
        if needed > max_voltage:
            raise PowerError(
                f"node at {distance} m needs {needed:.0f} V, above the "
                f"{max_voltage:.0f} V rail"
            )
        return needed

    def range_curve(
        self, voltages: List[float]
    ) -> List[Tuple[float, float]]:
        """(voltage, max range) pairs -- one Fig. 12 series."""
        return [(v, self.max_range(v)) for v in voltages]


def harvested_headroom_db(
    link: PowerUpLink, distance: float, tx_voltage: float
) -> float:
    """How many dB above the activation threshold the node field sits."""
    voltage = link.node_voltage(distance, tx_voltage)
    threshold = link.harvester.activation_voltage
    if voltage <= 0.0:
        return -math.inf
    return 20.0 * math.log10(voltage / threshold)
