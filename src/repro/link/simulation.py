"""End-to-end link simulations: uplink BER/SNR/throughput, downlink SNR.

Three simulators back the paper's link experiments:

* ``UplinkBasebandSimulator`` -- Monte-Carlo FM0 decoding at complex
  baseband (the post-downconversion view) with a packet-level sync
  stage; produces the BER-vs-SNR waterfall of Fig. 15.
* ``UplinkPassbandSimulator`` -- the full carrier-level chain (CBW ->
  impedance switch -> multipath channel -> receiver DSP) for waveform-
  accurate figures (Fig. 22 demodulated signal, Fig. 24 spectrum).
* ``DownlinkSimulator`` -- PIE over FSK vs OOK through a concrete
  block's frequency response, including the ring tail (Fig. 20).

Plus ``SnrBitrateModel``, the narrowband-carrier model behind Fig. 16:
higher bitrates widen the occupied band; when the band approaches the
transducer/concrete resonance bandwidth, SNR collapses -- at ~13 kbps
for EcoCapsule's 230 kHz carrier, ~3 kbps for PAB's 15 kHz one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..acoustics import (
    ConcreteBlock,
    FrequencyResponse,
    RingdownModel,
    fsk_symbol_waveform,
    low_edge_residual,
    ook_symbol_waveform,
)
from ..errors import AcousticsError, DecodingError
from ..obs import obs_counter, obs_enabled, obs_span
from ..phy import (
    Fm0Decoder,
    LinkStatistics,
    bipolar,
    fm0_encode_baseband,
)
from ..phy.batch import (
    Fm0BatchDecoder,
    encode_baseband_batch,
    resolve_engine,
)
from ..phy.modem import BackscatterModulator
from ..units import db_amplitude

#: Default RNG seed for the Monte-Carlo simulators.  A fixed value (not
#: ``None``) so that out-of-the-box runs are reproducible and the
#: experiment runtime can record the seed in run manifests; pass
#: ``seed=None`` explicitly to opt back into OS-entropy draws.
DEFAULT_SIMULATION_SEED = 0x5EC0  # "SEnsing COncrete"


@dataclass(frozen=True)
class UplinkResult:
    """Outcome of one simulated uplink transfer."""

    bits_sent: int
    bit_errors: int
    duration: float
    snr_db: float
    synced: bool

    @property
    def ber(self) -> float:
        if self.bits_sent == 0:
            raise DecodingError("no bits in the result")
        return self.bit_errors / self.bits_sent

    @property
    def throughput(self) -> float:
        """Correct bits per second (the paper's Fig. 17 metric)."""
        return (self.bits_sent - self.bit_errors) / self.duration


@dataclass
class UplinkBasebandSimulator:
    """Monte-Carlo FM0 uplink at baseband.

    The ``snr_db`` argument of :meth:`run` is Eb/N0 in dB -- equivalent
    to the in-band SNR measured in a bandwidth equal to the bitrate,
    which is how the paper's spectrum-based measurement behaves.

    The ``snr_db`` fed to :meth:`run` is the *spectrum-measured* in-band
    SNR, as the paper's receiver reports it; the decoder's matched
    filter recovers ``processing_gain_db`` on top of it before symbol
    decisions.

    Two mechanisms guard each packet, reproducing the paper's
    observation that the reader "can tolerate a minimum SNR of
    approximately 2 dB, where the BER is nearly 0.5":

    * a carrier/timing detection stage whose success probability is a
      sharp logistic in the measured SNR (below ~3.5 dB the receiver
      cannot even locate the packet in the capture);
    * a known-preamble correlation check; a failed correlation also
      aborts the lock.

    An unlocked packet decodes as coin flips.

    ``engine`` selects the decode implementation for the batch-capable
    entry points (:meth:`measure_ber`, :meth:`run_batch`): ``None``
    defers to the ambient :func:`repro.phy.batch.default_engine`;
    ``"scalar"`` forces the per-packet reference path; ``"batch"``
    produces bit-identical results via the vectorized kernels;
    ``"batch-float32"`` is the tolerance-documented fast path.  The RNG
    draw order is identical across engines, so a given seed yields the
    same packet stream regardless of engine.
    """

    samples_per_symbol: int = 10
    preamble: Sequence[int] = (1, 0, 1, 0, 1, 1, 0, 0)
    sync_threshold: float = 0.5
    processing_gain_db: float = 6.0
    detection_center_db: float = 3.5
    detection_scale_db: float = 0.45
    seed: Optional[int] = DEFAULT_SIMULATION_SEED
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.samples_per_symbol < 2 or self.samples_per_symbol % 2:
            raise DecodingError("samples_per_symbol must be even and >= 2")
        if not 0.0 < self.sync_threshold < 1.0:
            raise DecodingError("sync threshold must be in (0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def noise_sigma(self, snr_db: float, amplitude: float = 1.0) -> float:
        """Per-sample noise sigma for a measured in-band SNR of ``snr_db``.

        The decoder operates at Eb/N0 = snr + processing gain; with
        Eb = n A^2 (n samples of +/-A per bit) and N0/2 = sigma^2 per
        sample, Eb/N0 = n A^2 / (2 sigma^2).
        """
        ebn0 = 10.0 ** ((snr_db + self.processing_gain_db) / 10.0)
        n = self.samples_per_symbol
        return amplitude * math.sqrt(n / (2.0 * ebn0))

    def detection_probability(self, snr_db: float) -> float:
        """Probability the receiver locates and locks onto the packet."""
        x = (snr_db - self.detection_center_db) / self.detection_scale_db
        # Clamp to avoid overflow for very low/high SNRs.
        if x < -40.0:
            return 0.0
        if x > 40.0:
            return 1.0
        return 1.0 / (1.0 + math.exp(-x))

    def run(
        self, payload: Sequence[int], bitrate: float, snr_db: float
    ) -> UplinkResult:
        """Send ``payload`` once at ``bitrate`` and Eb/N0 ``snr_db``."""
        if bitrate <= 0.0:
            raise DecodingError("bitrate must be positive")
        payload = list(payload)
        if not payload:
            raise DecodingError("payload cannot be empty")

        bits = list(self.preamble) + payload
        n = self.samples_per_symbol
        clean = bipolar(fm0_encode_baseband(bits, n))
        sigma = self.noise_sigma(snr_db)
        received = clean + self._rng.normal(0.0, sigma, size=clean.size)

        # Detection stage: can the receiver locate the packet at all?
        detected = self._rng.random() < self.detection_probability(snr_db)

        # Sync stage: correlate the known preamble waveform.
        p_len = len(self.preamble) * n
        template = clean[:p_len]
        correlation = float(np.dot(received[:p_len], template))
        normaliser = float(np.dot(template, template))
        synced = detected and correlation >= self.sync_threshold * normaliser

        duration = len(payload) / bitrate
        if not synced:
            # The receiver never locks; the payload is effectively random.
            flips = int(self._rng.binomial(len(payload), 0.5))
            result = UplinkResult(
                bits_sent=len(payload),
                bit_errors=flips,
                duration=duration,
                snr_db=snr_db,
                synced=False,
            )
        else:
            decoder = Fm0Decoder(samples_per_symbol=n)
            decoded = decoder.decode(received)
            errors = sum(
                1 for a, b in zip(decoded[len(self.preamble):], payload)
                if a != b
            )
            result = UplinkResult(
                bits_sent=len(payload),
                bit_errors=errors,
                duration=duration,
                snr_db=snr_db,
                synced=True,
            )
        if obs_enabled():
            obs_counter("link.uplink.packets").inc()
            obs_counter("link.uplink.bits_sent").inc(result.bits_sent)
            obs_counter("link.uplink.bit_errors").inc(result.bit_errors)
            obs_counter("link.uplink.symbols_simulated").inc(clean.size)
            if not result.synced:
                obs_counter("link.uplink.sync_failures").inc()
        return result

    def run_batch(
        self,
        payloads: Sequence[Sequence[int]],
        bitrate: float,
        snr_db: float,
        engine: Optional[str] = None,
    ) -> "list[UplinkResult]":
        """Send several payloads, decoding synced packets in one batch.

        Equivalent to ``[self.run(p, bitrate, snr_db) for p in payloads]``
        -- same RNG draw order, same results -- but all synced packets
        are decoded with one batched matched-filter pass.  The batch
        engines require equal-length payloads (the scalar engine does
        not).
        """
        resolved = resolve_engine(engine if engine is not None else self.engine)
        payloads = [list(p) for p in payloads]
        if resolved == "scalar":
            return [self.run(p, bitrate, snr_db) for p in payloads]
        if bitrate <= 0.0:
            raise DecodingError("bitrate must be positive")
        if any(not p for p in payloads):
            raise DecodingError("payload cannot be empty")
        if len({len(p) for p in payloads}) > 1:
            raise DecodingError(
                "run_batch requires equal-length payloads under the batch "
                "engines; use engine='scalar' for ragged frames"
            )
        dtype = np.float32 if resolved == "batch-float32" else np.float64
        results: list[Optional[UplinkResult]] = [None] * len(payloads)
        synced_rows = []
        synced_indices = []
        total_symbols = 0
        sync_failures = 0
        for index, payload in enumerate(payloads):
            transfer = self._transfer_draws(payload, snr_db)
            total_symbols += transfer["samples"]
            duration = len(payload) / bitrate
            if transfer["synced"]:
                synced_rows.append(transfer["received"])
                synced_indices.append(index)
            else:
                sync_failures += 1
                results[index] = UplinkResult(
                    bits_sent=len(payload),
                    bit_errors=transfer["flips"],
                    duration=duration,
                    snr_db=snr_db,
                    synced=False,
                )
        if synced_rows:
            decoded = Fm0BatchDecoder(
                samples_per_symbol=self.samples_per_symbol, dtype=dtype
            ).decode(np.stack(synced_rows))
            payload_bits = decoded[:, len(self.preamble):]
            for row, index in enumerate(synced_indices):
                payload = payloads[index]
                errors = int(
                    np.count_nonzero(payload_bits[row] != np.asarray(payload))
                )
                results[index] = UplinkResult(
                    bits_sent=len(payload),
                    bit_errors=errors,
                    duration=len(payload) / bitrate,
                    snr_db=snr_db,
                    synced=True,
                )
        final = [result for result in results if result is not None]
        if obs_enabled() and final:
            obs_counter("link.uplink.packets").inc(len(final))
            obs_counter("link.uplink.bits_sent").inc(
                sum(r.bits_sent for r in final)
            )
            obs_counter("link.uplink.bit_errors").inc(
                sum(r.bit_errors for r in final)
            )
            obs_counter("link.uplink.symbols_simulated").inc(total_symbols)
            if sync_failures:
                obs_counter("link.uplink.sync_failures").inc(sync_failures)
        return final

    def _transfer_draws(self, payload: Sequence[int], snr_db: float) -> dict:
        """One packet's RNG draws + sync decision, decode deferred.

        Consumes ``self._rng`` in exactly the order :meth:`run` does
        (noise normal -> detection uniform -> coin-flip binomial when
        unsynced), so scalar and batch engines see identical streams.
        """
        n = self.samples_per_symbol
        bits = np.concatenate(
            [np.asarray(self.preamble, dtype=np.int64),
             np.asarray(payload, dtype=np.int64)]
        )
        clean = bipolar(encode_baseband_batch(bits, n)[0])
        sigma = self.noise_sigma(snr_db)
        received = clean + self._rng.normal(0.0, sigma, size=clean.size)
        detected = self._rng.random() < self.detection_probability(snr_db)
        p_len = len(self.preamble) * n
        template = clean[:p_len]
        correlation = float(np.dot(received[:p_len], template))
        normaliser = float(np.dot(template, template))
        synced = detected and correlation >= self.sync_threshold * normaliser
        flips = 0
        if not synced:
            flips = int(self._rng.binomial(len(payload), 0.5))
        return {
            "received": received,
            "synced": synced,
            "flips": flips,
            "samples": clean.size,
        }

    def measure_ber(
        self,
        snr_db: float,
        bitrate: float = 1e3,
        total_bits: int = 20_000,
        packet_bits: int = 200,
    ) -> float:
        """Monte-Carlo BER at one SNR point (Fig. 15 harness).

        Dispatches on the resolved engine (see the class docstring):
        the default batch engine produces bit-identical BERs to the
        scalar reference with the decode vectorized across packets.
        """
        if total_bits <= 0 or packet_bits <= 0:
            raise DecodingError("bit counts must be positive")
        engine = resolve_engine(self.engine)
        with obs_span(
            "link.measure_ber", snr_db=snr_db, total_bits=total_bits
        ):
            if engine == "scalar":
                ber = self._measure_ber_scalar(
                    snr_db, bitrate, total_bits, packet_bits
                )
            else:
                ber = self._measure_ber_batch(
                    snr_db,
                    bitrate,
                    total_bits,
                    packet_bits,
                    dtype=np.float32
                    if engine == "batch-float32"
                    else np.float64,
                )
        obs_counter("link.uplink.ber_points").inc()
        return ber

    def _measure_ber_scalar(
        self, snr_db: float, bitrate: float, total_bits: int, packet_bits: int
    ) -> float:
        """Reference implementation: one :meth:`run` per packet."""
        stats = LinkStatistics()
        sent = 0
        while sent < total_bits:
            payload = list(self._rng.integers(0, 2, size=packet_bits))
            result = self.run(payload, bitrate, snr_db)
            stats.bits_sent += result.bits_sent
            stats.bits_correct += result.bits_sent - result.bit_errors
            stats.trials += 1
            stats.elapsed += result.duration
            sent += packet_bits
        return stats.ber

    def _measure_ber_batch(
        self,
        snr_db: float,
        bitrate: float,
        total_bits: int,
        packet_bits: int,
        dtype: type = np.float64,
    ) -> float:
        """Batched engine: per-packet RNG draws, one deferred batch decode.

        Draw order per packet matches the scalar path exactly (payload
        integers -> noise normal -> detection uniform -> coin-flip
        binomial when unsynced); only the matched-filter decode of the
        synced packets is deferred and batched, and the float64 kernels
        are bit-identical to the scalar decoder, so the returned BER is
        byte-identical to the scalar engine at the same seed.
        """
        if bitrate <= 0.0:
            raise DecodingError("bitrate must be positive")
        stats = LinkStatistics()
        synced_rows = []
        synced_payloads = []
        total_symbols = 0
        sync_failures = 0
        errors = 0
        sent = 0
        duration = packet_bits / bitrate
        while sent < total_bits:
            payload = self._rng.integers(0, 2, size=packet_bits)
            transfer = self._transfer_draws(payload, snr_db)
            total_symbols += transfer["samples"]
            if transfer["synced"]:
                synced_rows.append(transfer["received"])
                synced_payloads.append(payload)
            else:
                sync_failures += 1
                errors += transfer["flips"]
            stats.trials += 1
            stats.bits_sent += packet_bits
            stats.elapsed += duration
            sent += packet_bits
        if synced_rows:
            decoded = Fm0BatchDecoder(
                samples_per_symbol=self.samples_per_symbol, dtype=dtype
            ).decode(np.stack(synced_rows))
            payload_bits = decoded[:, len(self.preamble):]
            errors += int(
                np.count_nonzero(payload_bits != np.stack(synced_payloads))
            )
        stats.bits_correct = stats.bits_sent - errors
        if obs_enabled():
            obs_counter("link.uplink.packets").inc(stats.trials)
            obs_counter("link.uplink.bits_sent").inc(stats.bits_sent)
            obs_counter("link.uplink.bit_errors").inc(errors)
            obs_counter("link.uplink.symbols_simulated").inc(total_symbols)
            if sync_failures:
                obs_counter("link.uplink.sync_failures").inc(sync_failures)
        return stats.ber


@dataclass
class SnrBitrateModel:
    """SNR as a function of uplink bitrate (Fig. 16).

    Two effects stack:

    * matched-filter noise bandwidth grows with bitrate:
      ``-10 log10(bitrate / reference_bitrate)``;
    * the occupied band collides with the carrier's usable bandwidth --
      a fraction of the carrier frequency for a resonant PZT system --
      adding ``+20 log10(1 - (bitrate/band_limit)^2)`` which collapses
      at the knee (13 kbps for EcoCapsule, 3 kbps for PAB).

    Attributes:
        snr_at_reference: SNR (dB) at the reference bitrate.
        reference_bitrate: Bitrate anchoring the SNR (bit/s).
        band_limit: Bitrate (bit/s) where the band is exhausted.
    """

    snr_at_reference: float = 18.0
    reference_bitrate: float = 1e3
    band_limit: float = 21.7e3

    def __post_init__(self) -> None:
        if self.reference_bitrate <= 0.0 or self.band_limit <= 0.0:
            raise AcousticsError("bitrates must be positive")
        if self.band_limit <= self.reference_bitrate:
            raise AcousticsError("band limit must exceed the reference bitrate")

    def snr_db(self, bitrate: float) -> float:
        """Predicted SNR (dB) at ``bitrate``; -inf beyond the band limit."""
        if bitrate <= 0.0:
            raise AcousticsError("bitrate must be positive")
        if bitrate >= self.band_limit:
            return -math.inf
        bandwidth_term = -10.0 * math.log10(bitrate / self.reference_bitrate)
        crowding = 1.0 - (bitrate / self.band_limit) ** 2
        crowding_term = 20.0 * math.log10(crowding)
        return self.snr_at_reference + bandwidth_term + crowding_term

    def max_bitrate(self, min_snr_db: float = 3.0) -> float:
        """Highest bitrate (bit/s) keeping SNR above ``min_snr_db``.

        Paper: EcoCapsule's SNR "drops rapidly to 3 dB when the bitrate
        exceeds 13 kbps".
        """
        low, high = self.reference_bitrate, self.band_limit * 0.999
        if self.snr_db(low) < min_snr_db:
            return 0.0
        while high - low > 1.0:
            mid = 0.5 * (low + high)
            if self.snr_db(mid) >= min_snr_db:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)


@dataclass
class UplinkPassbandSimulator:
    """Full carrier-level uplink for waveform-accurate reproductions.

    Drives a CBW through the impedance switch and a channel gain, then
    decodes with the reader's DSP.  Used for the Fig. 22 demodulated
    waveform and the Fig. 24 spectrum; the Monte-Carlo BER experiments
    use the faster baseband simulator.
    """

    carrier: float = 230e3
    sample_rate: float = 1e6
    modulator: BackscatterModulator = field(default_factory=BackscatterModulator)
    channel_gain: float = 0.05
    noise_floor: float = 2e-3
    seed: Optional[int] = DEFAULT_SIMULATION_SEED

    def __post_init__(self) -> None:
        if not 0.0 < self.carrier < self.sample_rate / 2.0:
            raise AcousticsError("carrier must be below Nyquist")
        if self.channel_gain <= 0.0:
            raise AcousticsError("channel gain must be positive")
        self._rng = np.random.default_rng(self.seed)

    def received_waveform(
        self, bits: Sequence[int], cbw_amplitude: float = 1.0
    ) -> np.ndarray:
        """The reader's raw capture for an uplink transfer of ``bits``.

        Contains the (self-interfering) CBW leakage plus the shifted
        backscatter sidebands plus receiver noise -- the Fig. 24 picture.
        """
        n = self.modulator.samples_per_symbol(self.sample_rate)
        total = n * len(bits)
        t = np.arange(total) / self.sample_rate
        cbw = cbw_amplitude * np.sin(2.0 * math.pi * self.carrier * t)
        backscattered = self.modulator.reflect(cbw, bits, self.sample_rate)
        # Leakage: S-reflections and surface waves are ~10x the
        # backscatter at the RX (Sec. 3.4).
        leakage = 10.0 * self.channel_gain * cbw_amplitude
        received = (
            leakage * np.sin(2.0 * math.pi * self.carrier * t)
            + self.channel_gain * backscattered
        )
        noise = self._rng.normal(0.0, self.noise_floor, size=received.size)
        return received + noise

    def demodulate(self, waveform: np.ndarray) -> np.ndarray:
        """Backscatter envelope (the Fig. 22 square wave)."""
        from ..reader import ReaderReceiver

        receiver = ReaderReceiver(
            sample_rate=self.sample_rate, modulator=self.modulator
        )
        return receiver.baseband(waveform, carrier=self.carrier)

    def run(self, bits: Sequence[int]) -> UplinkResult:
        """Transfer ``bits`` and decode them with the reader DSP."""
        from ..reader import ReaderReceiver

        bits = list(bits)
        waveform = self.received_waveform(bits)
        receiver = ReaderReceiver(
            sample_rate=self.sample_rate, modulator=self.modulator
        )
        decoded = receiver.decode(waveform, len(bits), carrier=self.carrier)
        errors = sum(1 for a, b in zip(decoded, bits) if a != b)
        snr = receiver.uplink_snr_db(waveform, carrier=self.carrier)
        if obs_enabled():
            obs_counter("link.uplink.passband_transfers").inc()
            obs_counter("link.uplink.bits_sent").inc(len(bits))
            obs_counter("link.uplink.bit_errors").inc(errors)
        return UplinkResult(
            bits_sent=len(bits),
            bit_errors=errors,
            duration=len(bits) / self.modulator.bitrate,
            snr_db=snr,
            synced=True,
        )


@dataclass
class DownlinkSimulator:
    """PIE-over-FSK vs PIE-over-OOK comparison through a concrete block.

    Produces the per-bitrate downlink SNR of Fig. 20: the OOK low edge
    is polluted by the PZT ring tail (worse as symbols shrink), while
    the FSK low edge is a cleanly suppressed off-resonance tone.
    """

    block: ConcreteBlock
    ringdown: RingdownModel = field(default_factory=RingdownModel)
    sample_rate: float = 4e6
    off_frequency: float = 180e3

    def __post_init__(self) -> None:
        if self.sample_rate <= 0.0:
            raise AcousticsError("sample rate must be positive")
        self._response = FrequencyResponse(self.block)

    def edge_durations(self, bitrate: float) -> float:
        """High/low edge length (s) for a bit-0 symbol at ``bitrate``."""
        if bitrate <= 0.0:
            raise AcousticsError("bitrate must be positive")
        return 0.5 / bitrate

    def symbol_waveform(self, bitrate: float, scheme: str) -> np.ndarray:
        """One received bit-0 symbol under ``scheme`` ('fsk' or 'ook')."""
        edge = self.edge_durations(bitrate)
        if scheme == "ook":
            return ook_symbol_waveform(
                self.ringdown, edge, edge, self.sample_rate
            )
        if scheme == "fsk":
            return fsk_symbol_waveform(
                self.ringdown,
                self._response,
                edge,
                edge,
                self.sample_rate,
                off_frequency=self.off_frequency,
            )
        raise AcousticsError(f"unknown downlink scheme {scheme!r}")

    def symbol_snr_db(self, bitrate: float, scheme: str) -> float:
        """Downlink symbol SNR (dB): high-edge RMS over low-edge residual.

        The PIE decoder distinguishes edges by amplitude, so the relevant
        'noise' is whatever amplitude survives in the low edge -- ring
        tail for OOK, suppressed off-tone for FSK.
        """
        waveform = self.symbol_waveform(bitrate, scheme)
        if obs_enabled():
            obs_counter("link.downlink.symbols_simulated").inc()
            obs_counter(f"link.downlink.symbols.{scheme}").inc()
        edge = self.edge_durations(bitrate)
        residual = low_edge_residual(waveform, edge, self.sample_rate)
        if residual <= 0.0:
            return math.inf
        return db_amplitude(1.0 / residual)

    def fsk_gain(self, bitrate: float) -> float:
        """Linear SNR improvement factor of FSK over OOK (paper: 3-5x)."""
        ook = self.symbol_snr_db(bitrate, "ook")
        fsk = self.symbol_snr_db(bitrate, "fsk")
        return 10.0 ** ((fsk - ook) / 20.0)
