"""Deployment planning: reader-station placement and capsule density.

The operator-facing planning layer the paper's Fig. 1(f) workflow
implies: given a structure and a fleet of implanted capsules, how many
reader stations cover the wall, where do they go, and how long does a
full survey take?  Built on the charging budget and the wall-session
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ReproError
from .budget import PowerUpLink


class DeploymentError(ReproError):
    """Infeasible deployment request."""


@dataclass(frozen=True)
class ReaderStation:
    """One reader attachment point along the structure."""

    position: float  # m along the structure
    reach: float  # m of one-sided coverage at the planned voltage

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.position - self.reach, self.position + self.reach)

    def covers(self, location: float) -> bool:
        low, high = self.interval
        return low <= location <= high


@dataclass
class DeploymentPlan:
    """A station layout with its coverage accounting."""

    stations: List[ReaderStation]
    structure_length: float
    tx_voltage: float

    def covered(self, location: float) -> bool:
        return any(s.covers(location) for s in self.stations)

    def coverage_fraction(self, samples: int = 200) -> float:
        """Fraction of the structure length inside some station's reach."""
        if samples < 2:
            raise DeploymentError("samples must be >= 2")
        hits = 0
        for i in range(samples):
            x = self.structure_length * i / (samples - 1)
            if self.covered(x):
                hits += 1
        return hits / samples

    def uncovered_gaps(self, samples: int = 400) -> List[Tuple[float, float]]:
        """Contiguous uncovered intervals (m) along the structure."""
        gaps: List[Tuple[float, float]] = []
        start: Optional[float] = None
        for i in range(samples):
            x = self.structure_length * i / (samples - 1)
            if not self.covered(x):
                if start is None:
                    start = x
            elif start is not None:
                gaps.append((start, x))
                start = None
        if start is not None:
            gaps.append((start, self.structure_length))
        return gaps


def plan_stations(
    budget: PowerUpLink,
    tx_voltage: float = 250.0,
    margin: float = 0.9,
) -> DeploymentPlan:
    """Place the minimum number of stations covering the whole structure.

    Stations are spaced ``2 * reach * margin`` apart; ``margin`` < 1 keeps
    capsules near coverage edges comfortably above the activation
    threshold.

    Raises:
        DeploymentError: when even one station cannot reach anything.
    """
    if not 0.0 < margin <= 1.0:
        raise DeploymentError(f"margin must be in (0, 1], got {margin}")
    reach = budget.max_range(tx_voltage) * margin
    if reach <= 0.0:
        raise DeploymentError(
            f"no coverage at {tx_voltage} V: the budget reaches nothing"
        )
    length = budget.structure.length
    spacing = 2.0 * reach
    count = max(1, math.ceil(length / spacing))
    stations = []
    for i in range(count):
        # Centre stations in equal segments of the structure.
        position = length * (2 * i + 1) / (2 * count)
        stations.append(ReaderStation(position=position, reach=reach))
    return DeploymentPlan(
        stations=stations, structure_length=length, tx_voltage=tx_voltage
    )


@dataclass(frozen=True)
class SurveyEstimate:
    """Time/energy estimate for a full survey of a deployment."""

    stations: int
    nodes: int
    slot_duration: float
    expected_slots: float
    walk_time_per_station: float

    @property
    def air_time(self) -> float:
        """Protocol airtime (s) across every station."""
        return self.expected_slots * self.slot_duration

    @property
    def total_time(self) -> float:
        return self.air_time + self.stations * self.walk_time_per_station


def estimate_survey(
    plan: DeploymentPlan,
    nodes_per_station: Sequence[int],
    slot_duration: float,
    reads_per_node: int = 3,
    aloha_efficiency: float = 0.35,
    walk_time_per_station: float = 60.0,
) -> SurveyEstimate:
    """Estimate how long a full survey takes.

    Slotted ALOHA singulates at most ~1/e of slots; each singulation
    carries ``reads_per_node`` sensor exchanges.

    Args:
        plan: The station layout.
        nodes_per_station: Capsule count each station must serve.
        slot_duration: Duration of one inventory slot (s).
        reads_per_node: Sensor channels read per singulated node.
        aloha_efficiency: Expected singulations per slot.
        walk_time_per_station: Operator repositioning time (s).
    """
    if len(nodes_per_station) != len(plan.stations):
        raise DeploymentError(
            f"{len(plan.stations)} stations but node counts for "
            f"{len(nodes_per_station)}"
        )
    if not 0.0 < aloha_efficiency <= 1.0:
        raise DeploymentError("ALOHA efficiency must be in (0, 1]")
    if slot_duration <= 0.0:
        raise DeploymentError("slot duration must be positive")
    expected_slots = 0.0
    for count in nodes_per_station:
        if count < 0:
            raise DeploymentError("node counts cannot be negative")
        # Each node needs one singulated slot; non-singulated slots are
        # overhead at 1/efficiency, and each read extends its slot.
        expected_slots += count * reads_per_node / aloha_efficiency
    return SurveyEstimate(
        stations=len(plan.stations),
        nodes=sum(nodes_per_station),
        slot_duration=slot_duration,
        expected_slots=expected_slots,
        walk_time_per_station=walk_time_per_station,
    )
