"""The asyncio query gateway: connection reuse, bounded workers, shedding.

:class:`AsyncGateway` is a small HTTP/1.1 server built on
``asyncio.start_server`` in front of the shared
:class:`~repro.serve.api.EndpointCore`.  Design points:

* **The event loop never touches the disk.**  Every request body is
  computed by ``loop.run_in_executor`` on a bounded thread pool
  (``workers``), so a slow segment read stalls one worker, not the
  accept/parse/write loop.
* **Explicit backpressure.**  At most ``max_queue`` requests may be
  queued-or-executing; request ``max_queue + 1`` is answered *inline*
  with ``503`` + ``Retry-After`` (and counted as ``serve.shed``)
  instead of joining an unbounded pile-up.  A shed request costs the
  event loop microseconds, which is the point: under overload the
  gateway stays responsive and tells clients when to come back.
* **Connection reuse.**  HTTP/1.1 keep-alive by default (the legacy
  threaded server is HTTP/1.0, one TCP handshake + thread per
  request); bodies past ``stream_chunk_bytes`` are written with
  chunked transfer encoding so long windows stream in bounded pieces.
* **Graceful drain.**  :func:`run_gateway` installs SIGINT/SIGTERM
  handlers that stop accepting, wait up to ``drain_grace_s`` for
  in-flight requests, then close -- a deploy never kills a response
  mid-body.

Instrumentation (all on the gateway's registry, scrapeable from its
own ``/metrics``): per-endpoint ``serve.requests``/``serve.request_s``
via the core, plus ``serve.shed``, ``serve.connections`` and the
``serve.in_flight`` gauge; the rollup cache mirrors
``serve.cache_hits|misses|evictions|invalidations``.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..errors import StoreError
from ..obs import MetricsRegistry, obs_registry
from ..store.store import TelemetryStore
from .api import EndpointCore, Response, encode_json
from .cache import DEFAULT_CACHE_ENTRIES, RollupCache

#: Reason phrases for the statuses the core can produce.
_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest request body the gateway will drain (GETs have none; this
#: only bounds a misbehaving client before the 405 goes out).
_MAX_REQUEST_BODY = 1 << 20

#: The shed response body (shared; rendered once).
_SHED_BODY = encode_json(
    {"error": "server overloaded; retry after the Retry-After delay"}
)


class AsyncGateway:
    """One asyncio gateway bound to one store; port 0 is ephemeral."""

    def __init__(
        self,
        store: TelemetryStore,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        workers: int = 8,
        max_queue: int = 64,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        stream_chunk_bytes: int = 64 * 1024,
        drain_grace_s: float = 5.0,
        retry_after_s: int = 1,
    ):
        if workers < 1:
            raise StoreError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise StoreError(f"max_queue must be >= 1, got {max_queue}")
        self.host = host
        self.requested_port = port
        self.workers = workers
        self.max_queue = max_queue
        self.stream_chunk_bytes = int(stream_chunk_bytes)
        self.drain_grace_s = float(drain_grace_s)
        self.retry_after_s = int(retry_after_s)
        self.registry = (
            registry if registry is not None
            else (obs_registry() or MetricsRegistry())
        )
        self.cache = RollupCache(cache_entries, registry=self.registry)
        self.core = EndpointCore(store, registry=self.registry, cache=self.cache)
        self._port: Optional[int] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._in_flight = 0
        self._writers: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._port is None:
            raise StoreError("gateway is not started")
        return self._port

    @property
    def store(self) -> TelemetryStore:
        return self.core.store

    async def start(self) -> None:
        """Bind and start accepting (call from inside a running loop)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-worker"
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.requested_port
        )
        self._port = int(self._server.sockets[0].getsockname()[1])
        self._started.set()

    async def wait_stopped(self) -> None:
        await self._stop.wait()

    def request_shutdown(self) -> None:
        """Ask the gateway to drain and stop (safe from any thread)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    shutdown = request_shutdown

    async def drain(self) -> None:
        """Stop accepting, wait for in-flight work, then tear down."""
        if self._stop is not None:
            self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.drain_grace_s
        while self._in_flight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    async def run(
        self,
        install_signals: bool = False,
        ready: Optional[Callable[["AsyncGateway"], None]] = None,
    ) -> None:
        """start -> (announce) -> serve until stopped -> drain."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self._stop.set)
                except (NotImplementedError, RuntimeError):
                    pass  # non-Unix loop / nested loop: Ctrl-C still works
        if ready is not None:
            ready(self)
        await self.wait_stopped()
        await self.drain()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.registry.counter("serve.connections").inc()
        self._writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, version, headers = request
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                    and not (self._stop is not None and self._stop.is_set())
                )
                if method == "":
                    await self._write_response(
                        writer, "GET",
                        Response(400, encode_json(
                            {"error": "malformed request line"}
                        )),
                        keep_alive=False,
                    )
                    break
                parsed = urlsplit(target)
                params = dict(parse_qsl(parsed.query))
                started = time.perf_counter()
                if self._in_flight >= self.max_queue:
                    # Shed inline: the worker pool is saturated and the
                    # queue is full -- refuse loudly instead of queueing.
                    self.registry.counter("serve.shed").inc()
                    response = Response(
                        503, _SHED_BODY,
                        headers=(("Retry-After", str(self.retry_after_s)),),
                    )
                    self.core.observe_request(
                        parsed.path, response.status,
                        time.perf_counter() - started,
                    )
                    await self._write_response(
                        writer, method, response, keep_alive
                    )
                else:
                    # In-flight covers executor time *and* the response
                    # write, so a graceful drain never closes a writer
                    # that still owes bytes.
                    self._in_flight += 1
                    self.registry.gauge("serve.in_flight").set(self._in_flight)
                    try:
                        response = await asyncio.get_running_loop().run_in_executor(
                            self._executor,
                            self.core.handle,
                            method,
                            parsed.path,
                            params,
                            headers.get("if-none-match"),
                        )
                        self.core.observe_request(
                            parsed.path, response.status,
                            time.perf_counter() - started,
                        )
                        await self._write_response(
                            writer, method, response, keep_alive
                        )
                    finally:
                        self._in_flight -= 1
                        self.registry.gauge("serve.in_flight").set(
                            self._in_flight
                        )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, Dict[str, str]]]:
        """One parsed request, ``("", ...)`` if malformed, None on EOF."""
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            return ("", "/", "HTTP/1.0", {})
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        bad = len(parts) != 3
        method, target, version = (
            ("", "/", "HTTP/1.0") if bad else (parts[0], parts[1], parts[2])
        )
        headers: Dict[str, str] = {}
        while True:
            try:
                header_line = await reader.readline()
            except (ValueError, ConnectionError):
                return ("", "/", "HTTP/1.0", {})
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            body_length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            body_length = 0
        if 0 < body_length <= _MAX_REQUEST_BODY:
            with contextlib.suppress(asyncio.IncompleteReadError):
                await reader.readexactly(body_length)  # drained, ignored
        elif body_length > _MAX_REQUEST_BODY:
            return ("", target, version, headers)
        return (method, target, version, headers)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        response: Response,
        keep_alive: bool,
    ) -> None:
        body = b"" if method == "HEAD" else response.body
        chunked = (
            keep_alive
            and body
            and len(body) > self.stream_chunk_bytes
        )
        headers = [("Content-Type", response.content_type)]
        headers.extend(response.headers)
        if chunked:
            headers.append(("Transfer-Encoding", "chunked"))
        else:
            # HEAD advertises the GET body's length with an empty body.
            headers.append(("Content-Length", str(len(response.body))))
        headers.append(
            ("Connection", "keep-alive" if keep_alive else "close")
        )
        reason = _REASONS.get(response.status, "OK")
        head = f"HTTP/1.1 {response.status} {reason}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers
        ) + "\r\n"
        writer.write(head.encode("latin-1"))
        if chunked:
            step = self.stream_chunk_bytes
            for start in range(0, len(body), step):
                piece = body[start:start + step]
                writer.write(f"{len(piece):x}\r\n".encode("ascii"))
                writer.write(piece)
                writer.write(b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
        else:
            writer.write(body)
        await writer.drain()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def run_gateway(
    gateway: AsyncGateway,
    ready: Optional[Callable[[AsyncGateway], None]] = None,
) -> None:
    """Run a gateway in the current thread until SIGINT/SIGTERM.

    The CLI's blocking entry point: installs signal handlers, calls
    ``ready(gateway)`` once the port is bound (the CLI announces the
    URL there), and returns after a graceful drain.
    """
    asyncio.run(gateway.run(install_signals=True, ready=ready))


def gateway_background(
    store: TelemetryStore,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    **kwargs: Any,
) -> Tuple[AsyncGateway, threading.Thread]:
    """Start a gateway on a daemon thread; caller owns ``.shutdown()``.

    The asyncio mirror of :func:`repro.store.serve.serve_background`,
    for tests and in-process benchmarks.
    """
    gateway = AsyncGateway(
        store, host=host, port=port, registry=registry, **kwargs
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(gateway.run()),
        name="serve-gateway", daemon=True,
    )
    thread.start()
    if not gateway._started.wait(timeout=10.0):
        raise StoreError("gateway failed to start within 10 s")
    return gateway, thread
