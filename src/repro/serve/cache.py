"""Hot-rollup LRU cache with generation-counter invalidation.

The gateway's cache of query results, keyed by the caller (typically
``(kind, series label, window, resolution)``).  Every entry is stamped
with the store *generation* current when the value was computed; the
store bumps its generation on :meth:`~repro.store.store.TelemetryStore.compact`
and on ``truncate_from`` (both rewrite rollup bytes in place), so a
lookup against a newer generation drops the stale entry instead of
serving pre-compaction data.  That is the entire invalidation contract:
no TTLs, no background sweeper -- staleness is impossible by
construction, proved in ``tests/test_serve_gateway.py``.

Counter accounting is exact and scripted-test-friendly:

* ``hits``          -- entry present at the current generation;
* ``misses``        -- every lookup that returns None (including ones
  caused by an invalidation);
* ``invalidations`` -- entry present but generation-stale (dropped);
* ``evictions``     -- LRU entries pushed out by capacity.

When a :class:`~repro.obs.metrics.MetricsRegistry` is attached, the
same four counts are mirrored live as ``serve.cache_hits`` /
``serve.cache_misses`` / ``serve.cache_invalidations`` /
``serve.cache_evictions`` so a ``/metrics`` scrape sees them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from ..errors import StoreError
from ..obs.metrics import MetricsRegistry

#: Default number of cached blocks; sized for "hot dashboards" (a few
#: hundred distinct (series, window, resolution) combinations), not for
#: holding a whole store in memory.
DEFAULT_CACHE_ENTRIES = 512


class RollupCache:
    """Thread-safe LRU of ``key -> (generation, value)`` entries."""

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_ENTRIES,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1:
            raise StoreError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self._registry = registry
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _count(self, what: str) -> None:
        if self._registry is not None:
            self._registry.counter(f"serve.cache_{what}").inc()

    def get(self, key: Hashable, generation: int) -> Optional[Any]:
        """The cached value, or None on a miss (stale entries dropped)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == generation:
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("hits")
                return entry[1]
            if entry is not None:
                # Present but computed against an older store generation:
                # a compaction (or truncate) rewrote rollup bytes since.
                del self._entries[key]
                self.invalidations += 1
                self._count("invalidations")
            self.misses += 1
            self._count("misses")
            return None

    def put(self, key: Hashable, generation: int, value: Any) -> None:
        """Insert (or refresh) an entry; LRU-evicts past capacity."""
        with self._lock:
            self._entries[key] = (generation, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("evictions")

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """JSON-ready counter snapshot (what the benchmark records)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }
