"""The shared endpoint core behind both store HTTP servers.

Everything that decides *what bytes a query answers with* lives here --
parameter parsing/validation, routing, error mapping, the JSON
encoding, ETags, cursor pagination, and the optional hot-rollup cache
-- so the legacy threaded server (:mod:`repro.store.serve`) and the
asyncio gateway (:mod:`repro.serve.gateway`) provably serve identical
response bodies, including error payloads.  The servers themselves
only own transport concerns (threads vs event loop, keep-alive,
chunking, load shedding).

Endpoints (GET/HEAD only; any other method is 405 + ``Allow``):

* ``/health``     -- :meth:`QueryEngine.degradation_report`.
* ``/series``     -- one series' samples; supports ``limit``/``cursor``
  pagination and ETag/If-None-Match.
* ``/aggregate``  -- :meth:`QueryEngine.aggregate`; ETag/If-None-Match.
* ``/stats``      -- :meth:`TelemetryStore.stats`.
* ``/metrics``    -- the registry in Prometheus text exposition format.
* ``/healthz``    -- liveness (200 ok / 503 degraded on quarantine).

Bad queries return 400 with ``{"error": ...}``; unknown paths 404;
anything else 500.  Non-finite ``t0``/``t1``/``stale_hours`` values
(``nan``/``inf``) are rejected with 400 -- they would silently poison
every window comparison downstream.

Imports deliberately target ``repro.store`` *submodules* (never the
package) because ``repro.store.serve`` imports this module while the
``repro.store`` package is still initialising.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import math
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError, StoreError
from ..obs import MetricsRegistry, obs_registry, render_prometheus_text
from ..store.keys import OBS_BUILDING, STRUCTURE_NODE_ID, SeriesKey
from ..store.query import QueryEngine
from ..store.segment import RAW
from ..store.store import TelemetryStore
from .cache import RollupCache

#: Endpoints the core reports per-path metrics for.  Unknown paths
#: collapse into one ``other`` label so a URL-scanning client cannot
#: inflate the registry with unbounded label values.
KNOWN_ENDPOINTS = (
    "/aggregate", "/health", "/healthz", "/metrics", "/series", "/stats",
)

#: Endpoints that carry an ETag and honour ``If-None-Match``.
CONDITIONAL_ENDPOINTS = ("/aggregate", "/series")

#: The only methods this read-only API serves.
ALLOWED_METHODS = ("GET", "HEAD")

#: The ``Allow`` header value sent with every 405.
ALLOW_HEADER = "GET, HEAD"

JSON_CONTENT_TYPE = "application/json"
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def encode_json(payload: Any) -> bytes:
    """The one JSON encoding both servers use (byte-level contract)."""
    return json.dumps(payload).encode("utf-8")


def etag_for(body: bytes) -> str:
    """A strong ETag derived from the exact response bytes."""
    return '"' + hashlib.sha256(body).hexdigest()[:32] + '"'


def encode_cursor(offset: int) -> str:
    """An opaque pagination cursor for ``offset`` (base64url JSON)."""
    raw = json.dumps({"o": int(offset)}).encode("ascii")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def decode_cursor(cursor: str) -> int:
    """Invert :func:`encode_cursor`; malformed cursors are a 400."""
    try:
        payload = json.loads(base64.urlsafe_b64decode(cursor.encode("ascii")))
        offset = payload["o"]
    except (ValueError, KeyError, TypeError, binascii.Error):
        raise StoreError(f"malformed pagination cursor {cursor!r}")
    if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
        raise StoreError(f"malformed pagination cursor {cursor!r}")
    return offset


def _opt_float(params: Dict[str, str], name: str) -> Optional[float]:
    if name not in params:
        return None
    try:
        value = float(params[name])
    except ValueError:
        raise StoreError(f"query parameter {name!r} must be a number")
    if not math.isfinite(value):
        raise StoreError(
            f"query parameter {name!r} must be finite, "
            f"got {params[name]!r}"
        )
    return value


def _opt_positive_int(params: Dict[str, str], name: str) -> Optional[int]:
    if name not in params:
        return None
    try:
        value = int(params[name])
    except ValueError:
        raise StoreError(f"query parameter {name!r} must be an integer")
    if value < 1:
        raise StoreError(f"query parameter {name!r} must be >= 1")
    return value


def _require(params: Dict[str, str], name: str) -> str:
    try:
        return params[name]
    except KeyError:
        raise StoreError(f"missing required query parameter {name!r}")


def _int(params: Dict[str, str], name: str) -> int:
    raw = _require(params, name)
    try:
        return int(raw)
    except ValueError:
        raise StoreError(f"query parameter {name!r} must be an integer")


@dataclass
class Response:
    """One finished HTTP response, transport-agnostic.

    ``body`` is always the full GET body; a server answering HEAD sends
    the same status/headers (including ``Content-Length``) and omits
    the bytes.
    """

    status: int
    body: bytes
    content_type: str = JSON_CONTENT_TYPE
    headers: Tuple[Tuple[str, str], ...] = ()


class _Block:
    """A cached query result with its lazily rendered body/ETag.

    The cache holds the *decoded* rollup block (numpy columns or the
    aggregate payload); the first unpaginated request renders and pins
    the JSON bytes so subsequent hot hits skip both the segment read
    and the encode.  Rendering twice under a benign race produces the
    same bytes, so no lock is needed.
    """

    __slots__ = ("value", "body", "etag")

    def __init__(self, value: Any):
        self.value = value
        self.body: Optional[bytes] = None
        self.etag: Optional[str] = None

    def render(self, payload: Any) -> bytes:
        if self.body is None:
            body = encode_json(payload)
            self.etag = etag_for(body)
            self.body = body
        return self.body


class EndpointCore:
    """Routing + response construction shared by both servers.

    Args:
        store: The telemetry store to serve.
        registry: Metrics registry for the per-endpoint request
            counters/histograms.  Defaults to the live obs registry,
            else a private one -- ``/metrics`` always has something
            real to expose.
        cache: Optional :class:`RollupCache`.  The legacy threaded
            server runs without one (the uncached reference
            implementation); the gateway attaches one.  Only hourly/
            daily resolutions are cached -- raw windows are unbounded
            and already ride the segment block index.
    """

    def __init__(
        self,
        store: TelemetryStore,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[RollupCache] = None,
    ):
        self.store = store
        self.engine = QueryEngine(store)
        self.registry = (
            registry if registry is not None
            else (obs_registry() or MetricsRegistry())
        )
        self.cache = cache
        self.started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # The request entry point
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        if_none_match: Optional[str] = None,
    ) -> Response:
        """Answer one request; never raises (errors become responses)."""
        method = method.upper()
        if method not in ALLOWED_METHODS:
            return Response(
                405,
                encode_json({
                    "error": (
                        f"method {method} not allowed; "
                        "this API is read-only (GET, HEAD)"
                    )
                }),
                headers=(("Allow", ALLOW_HEADER),),
            )
        try:
            if path == "/metrics":
                # Rendered before observe_request, so the scrape a
                # client reads never includes the scrape itself --
                # each sample shows up from the *next* scrape on.
                return Response(
                    200,
                    self.metrics_text().encode("utf-8"),
                    content_type=METRICS_CONTENT_TYPE,
                )
            if path == "/healthz":
                payload, status = self.healthz()
                return Response(status, encode_json(payload))
            body = self._routed_body(path, params)
            if path in CONDITIONAL_ENDPOINTS:
                etag = etag_for(body)
                if if_none_match is not None and etag in (
                    tag.strip() for tag in if_none_match.split(",")
                ):
                    return Response(304, b"", headers=(("ETag", etag),))
                return Response(200, body, headers=(("ETag", etag),))
            return Response(200, body)
        except LookupError:
            return Response(
                404, encode_json({"error": f"no such endpoint {path!r}"})
            )
        except (StoreError, ReproError) as exc:
            return Response(400, encode_json({"error": str(exc)}))
        except Exception as exc:  # pragma: no cover - defensive
            return Response(
                500, encode_json({"error": f"internal error: {exc!r}"})
            )

    def observe_request(
        self, path: str, status: int, elapsed_s: float
    ) -> None:
        """Fold one handled request into the registry."""
        endpoint = path if path in KNOWN_ENDPOINTS else "other"
        self.registry.counter("serve.requests").labels(
            path=endpoint, status=status
        ).inc()
        self.registry.histogram("serve.request_s").labels(
            path=endpoint
        ).observe(elapsed_s)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _routed_body(self, path: str, params: Dict[str, str]) -> bytes:
        if path == "/series":
            return self._series_body(params)
        if path == "/aggregate":
            return self._aggregate_body(params)
        return encode_json(self.route(path, params))

    def route(self, path: str, params: Dict[str, str]) -> Dict[str, Any]:
        """Path + params -> JSON-ready payload (uncached, unpaginated).

        Kept as the payload-level seam the legacy server historically
        exposed; ``/series`` here answers without pagination.
        """
        if path == "/stats":
            return self.store.stats()
        if path == "/health":
            return self.engine.degradation_report(
                _require(params, "building"),
                t0=_opt_float(params, "t0"),
                t1=_opt_float(params, "t1"),
                strain_metric=params.get("metric", "strain"),
                stale_hours=_opt_float(params, "stale_hours"),
            )
        if path == "/series":
            return json.loads(self._series_body(params))
        if path == "/aggregate":
            return json.loads(self._aggregate_body(params))
        raise LookupError(path)

    # ------------------------------------------------------------------
    # /series (cache + pagination)
    # ------------------------------------------------------------------

    def _series_body(self, params: Dict[str, str]) -> bytes:
        key = SeriesKey(
            building=_require(params, "building"),
            wall=_require(params, "wall"),
            node_id=_int(params, "node"),
            metric=_require(params, "metric"),
        )
        resolution = params.get("resolution", RAW)
        t0 = _opt_float(params, "t0")
        t1 = _opt_float(params, "t1")
        limit = _opt_positive_int(params, "limit")
        if limit is None and "cursor" in params:
            raise StoreError(
                "query parameter 'cursor' requires 'limit' (pagination)"
            )
        block = self._series_block(key, t0, t1, resolution)
        data = block.value
        total = int(data["t"].size)
        if limit is None:
            payload = {
                "key": key.to_dict(),
                "resolution": resolution,
                "rows": total,
                "columns": {
                    name: column.tolist() for name, column in data.items()
                },
            }
            return block.render(payload)
        offset = (
            decode_cursor(params["cursor"]) if "cursor" in params else 0
        )
        end = min(offset + limit, total)
        next_offset = end if end < total else None
        payload = {
            "key": key.to_dict(),
            "resolution": resolution,
            "rows": max(0, end - offset),
            "total_rows": total,
            "page": {
                "limit": limit,
                "offset": offset,
                "next_cursor": (
                    None if next_offset is None
                    else encode_cursor(next_offset)
                ),
            },
            "columns": {
                name: column[offset:end].tolist()
                for name, column in data.items()
            },
        }
        return encode_json(payload)

    def _series_block(
        self,
        key: SeriesKey,
        t0: Optional[float],
        t1: Optional[float],
        resolution: str,
    ) -> _Block:
        if self.cache is None or resolution == RAW:
            return _Block(
                self.engine.series(key, t0=t0, t1=t1, resolution=resolution)
            )
        # The generation is read *before* the segment read: if a
        # compaction lands in between, the entry is stamped with the
        # old generation and the next lookup invalidates it.
        generation = self.store.generation
        cache_key = ("series", key.label(), t0, t1, resolution)
        block = self.cache.get(cache_key, generation)
        if block is None:
            block = _Block(
                self.engine.series(key, t0=t0, t1=t1, resolution=resolution)
            )
            self.cache.put(cache_key, generation, block)
        return block

    # ------------------------------------------------------------------
    # /aggregate (cache)
    # ------------------------------------------------------------------

    def _aggregate_body(self, params: Dict[str, str]) -> bytes:
        resolution = params.get("resolution", RAW)
        if self.cache is None or resolution == RAW:
            return encode_json(self._aggregate_payload(params))
        generation = self.store.generation
        cache_key = ("aggregate",) + tuple(sorted(params.items()))
        block = self.cache.get(cache_key, generation)
        if block is None:
            block = _Block(self._aggregate_payload(params))
            self.cache.put(cache_key, generation, block)
        return block.render(block.value)

    def _aggregate_payload(self, params: Dict[str, str]) -> Dict[str, Any]:
        node = params.get("node")
        return self.engine.aggregate(
            metric=_require(params, "metric"),
            agg=params.get("agg", "mean"),
            building=params.get("building"),
            wall=params.get("wall"),
            node_id=None if node is None else _int(params, "node"),
            t0=_opt_float(params, "t0"),
            t1=_opt_float(params, "t1"),
            resolution=params.get("resolution", RAW),
            group_by=params.get("group_by"),
        )

    # ------------------------------------------------------------------
    # Operational endpoints
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return render_prometheus_text(self.registry.snapshot())

    def healthz(self) -> Tuple[Dict[str, Any], int]:
        """Liveness payload and its HTTP status (200 ok / 503 degraded).

        ``ok`` means the store is readable and nothing is quarantined.
        When a campaign heartbeat exists under ``_obs/campaign`` its
        last epoch/tick ride along, so one probe answers both "is the
        store serving" and "is the pilot still advancing".
        """
        quarantined = (
            sum(1 for _ in self.store.quarantine_dir.iterdir())
            if self.store.quarantine_dir.is_dir()
            else 0
        )
        payload: Dict[str, Any] = {
            "status": "ok" if quarantined == 0 else "degraded",
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "series_count": len(self.store.keys()),
            "quarantined_segments": quarantined,
        }
        heartbeat = SeriesKey(
            building=OBS_BUILDING, wall="campaign",
            node_id=STRUCTURE_NODE_ID, metric="campaign.epoch",
        )
        try:
            latest = self.engine.latest(heartbeat)
        except (StoreError, ReproError):
            latest = None
        if latest is not None:
            payload["campaign"] = {
                "last_epoch": latest["value"],
                "last_tick_hours": latest["t"],
            }
        return payload, (200 if payload["status"] == "ok" else 503)
