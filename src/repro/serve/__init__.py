"""repro.serve: the production serving tier over the telemetry store.

The store's HTTP story has two implementations sharing one endpoint
core (:mod:`repro.serve.api`), so they provably serve identical JSON:

* the legacy stdlib ``ThreadingHTTPServer`` in :mod:`repro.store.serve`
  -- the reference implementation, one thread per connection, no
  caching; and
* :class:`AsyncGateway` (:mod:`repro.serve.gateway`) -- an asyncio
  HTTP/1.1 gateway with connection reuse, a bounded worker pool over
  segment reads, explicit load shedding (503 + ``Retry-After`` instead
  of unbounded queueing), an LRU cache of hot rollup blocks invalidated
  by the store's compaction generation counter, ETag/If-None-Match,
  cursor pagination with chunked streaming for long windows, and
  graceful drain on SIGINT/SIGTERM.

See ``docs/SERVING.md`` for the architecture and the cache-invalidation
contract, and ``benchmarks/test_serve_bench.py`` for the closed-loop
load benchmark that pins the qps/p99 trajectory (``BENCH_serve.json``).
"""

from .api import (
    CONDITIONAL_ENDPOINTS,
    KNOWN_ENDPOINTS,
    EndpointCore,
    Response,
    decode_cursor,
    encode_cursor,
    encode_json,
)
from .cache import RollupCache
from .gateway import AsyncGateway, gateway_background, run_gateway

__all__ = [
    "AsyncGateway",
    "CONDITIONAL_ENDPOINTS",
    "EndpointCore",
    "KNOWN_ENDPOINTS",
    "Response",
    "RollupCache",
    "decode_cursor",
    "encode_cursor",
    "encode_json",
    "gateway_background",
    "run_gateway",
]
