"""Result export: experiment outputs to CSV/JSON for plotting tools.

The experiment modules return structured dataclasses; this module
flattens the figure-shaped ones into rows and writes them as CSV or
JSON so the paper's plots can be regenerated in any plotting stack
(matplotlib, gnuplot, a spreadsheet) without importing the library.

``export_all`` writes one file per supported figure into a directory --
the one-command path from a fresh checkout to plottable data.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from .errors import ReproError


class ReportingError(ReproError):
    """Export received an unsupported result or destination."""


Row = Dict[str, Union[str, float, int]]


def write_csv(path: Union[str, Path], rows: Sequence[Row]) -> Path:
    """Write dict-rows to ``path`` as CSV; returns the written path."""
    rows = list(rows)
    if not rows:
        raise ReportingError("no rows to write")
    path = Path(path)
    fieldnames = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != fieldnames:
            raise ReportingError("rows have inconsistent columns")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(path: Union[str, Path], rows: Sequence[Row]) -> Path:
    """Write dict-rows to ``path`` as a JSON array."""
    rows = list(rows)
    if not rows:
        raise ReportingError("no rows to write")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(rows, handle, indent=2)
    return path


# ----------------------------------------------------------------------
# Serialized-run readers (the runtime's results/<run_id>/ layout)
# ----------------------------------------------------------------------


def load_result(path: Union[str, Path]) -> Dict:
    """Read one per-experiment JSON written by the experiment runtime.

    Validates the schema tag so stale or foreign files fail loudly;
    returns the full payload (experiment, params, seed, result).
    """
    from .runtime import RESULT_SCHEMA, read_json

    path = Path(path)
    try:
        payload = read_json(path)
    except (OSError, ValueError) as exc:
        raise ReportingError(f"unreadable result file {path}: {exc}") from None
    if not isinstance(payload, dict) or payload.get("schema") != RESULT_SCHEMA:
        raise ReportingError(
            f"{path} is not a runtime result file (schema {RESULT_SCHEMA!r})"
        )
    return payload


def load_run(run_dir: Union[str, Path]) -> Dict[str, Dict]:
    """Load a whole sweep: experiment name -> result payload.

    Reads the run's manifest (validating it) and every result file it
    points at.  Failed experiments are skipped -- the manifest keeps
    their error records.
    """
    from .runtime import load_manifest

    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    results: Dict[str, Dict] = {}
    for entry in manifest["experiments"]:
        if entry["status"] == "ok" and entry.get("result_file"):
            results[entry["name"]] = load_result(run_dir / entry["result_file"])
    return results


# ----------------------------------------------------------------------
# Flatteners: experiment result -> rows
# ----------------------------------------------------------------------


def fig04_rows() -> List[Row]:
    from .experiments import fig04_mode_amplitudes

    result = fig04_mode_amplitudes.run()
    return [
        {
            "incident_deg": r.incident_deg,
            "p_amplitude": r.p_amplitude,
            "s_amplitude": r.s_amplitude,
            "reflected_energy": r.reflected_energy,
        }
        for r in result.rows
    ]


def fig05_rows() -> List[Row]:
    from .experiments import fig05_frequency_response

    result = fig05_frequency_response.run()
    rows: List[Row] = []
    for label, curve in result.curves.items():
        for frequency, amplitude in curve.points:
            rows.append(
                {
                    "block": label,
                    "frequency_hz": frequency,
                    "rx_amplitude_v": amplitude,
                }
            )
    return rows


def fig12_rows() -> List[Row]:
    from .experiments import fig12_range_vs_voltage

    result = fig12_range_vs_voltage.run()
    rows: List[Row] = []
    for label, curve in result.curves.items():
        for voltage, reach in curve.points:
            rows.append(
                {"structure": label, "voltage_v": voltage, "range_m": reach}
            )
    return rows


def fig13_rows() -> List[Row]:
    from .experiments import fig13_power_consumption

    result = fig13_power_consumption.run()
    return [
        {"bitrate_bps": bitrate, "power_w": power}
        for bitrate, power in result.points
    ]


def fig14_rows() -> List[Row]:
    from .experiments import fig14_cold_start

    result = fig14_cold_start.run()
    return [
        {"input_peak_v": voltage, "cold_start_s": t}
        for voltage, t in result.points
    ]


def fig16_rows() -> List[Row]:
    from .experiments import fig16_snr_vs_bitrate

    result = fig16_snr_vs_bitrate.run()
    rows: List[Row] = []
    for label, curve in result.curves.items():
        for bitrate, snr in curve:
            rows.append({"system": label, "bitrate_bps": bitrate, "snr_db": snr})
    return rows


def fig19_rows() -> List[Row]:
    from .experiments import fig19_prism_effect

    result = fig19_prism_effect.run()
    return [
        {"incident_deg": angle, "snr_db": snr} for angle, snr in result.points
    ]


def fig20_rows() -> List[Row]:
    from .experiments import fig20_fsk_vs_ook

    result = fig20_fsk_vs_ook.run()
    rows: List[Row] = []
    for (bitrate, fsk), (_, ook) in zip(result.fsk, result.ook):
        rows.append({"bitrate_bps": bitrate, "fsk_snr_db": fsk, "ook_snr_db": ook})
    return rows


#: Figure id -> row generator for the tabular figures.
EXPORTERS = {
    "fig04": fig04_rows,
    "fig05": fig05_rows,
    "fig12": fig12_rows,
    "fig13": fig13_rows,
    "fig14": fig14_rows,
    "fig16": fig16_rows,
    "fig19": fig19_rows,
    "fig20": fig20_rows,
}


def export_all(
    directory: Union[str, Path],
    figures: Iterable[str] = None,
    fmt: str = "csv",
) -> List[Path]:
    """Export every (or the selected) tabular figure into ``directory``.

    Args:
        directory: Destination directory (created if missing).
        figures: Figure ids from ``EXPORTERS``; None exports all.
        fmt: 'csv' or 'json'.

    Returns:
        The written paths.
    """
    if fmt not in ("csv", "json"):
        raise ReportingError(f"unsupported format {fmt!r}")
    directory = Path(directory)
    selected = list(EXPORTERS) if figures is None else list(figures)
    written: List[Path] = []
    for figure in selected:
        try:
            exporter = EXPORTERS[figure]
        except KeyError:
            raise ReportingError(
                f"unknown figure {figure!r}; available: {sorted(EXPORTERS)}"
            ) from None
        rows = exporter()
        path = directory / f"{figure}.{fmt}"
        if fmt == "csv":
            write_csv(path, rows)
        else:
            write_json(path, rows)
        written.append(path)
    return written
