"""EcoCapsule reproduction: in-concrete piezoelectric backscatter for SHM.

A simulation-backed reimplementation of "Empowering Smart Buildings with
Self-Sensing Concrete for Structural Health Monitoring" (SIGCOMM 2022).
The physical substrate (concrete acoustics, PZT hardware, harvesting
circuits) is modelled from first principles and calibrated to the
paper's measurements; the algorithmic stack (PIE/FM0 coding, FSK
anti-ring downlink, backscatter uplink, Gen2-style TDMA, SHM analytics)
is implemented for real and runs end-to-end over the simulated channel.

Quick tour::

    from repro import materials, acoustics, link

    wall = acoustics.StructureGeometry(
        "my wall", length=10.0, thickness=0.2,
        medium=materials.get_concrete("NC").medium)
    budget = link.PowerUpLink(wall)
    print(budget.max_range(tx_voltage=250.0))   # metres

See ``examples/quickstart.py`` for a full read-a-sensor walkthrough and
DESIGN.md for the paper-to-module map.
"""

from . import (
    acoustics,
    baselines,
    circuits,
    errors,
    faults,
    link,
    materials,
    node,
    obs,
    phy,
    protocol,
    reader,
    runtime,
    shm,
    store,
    transducer,
    units,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "acoustics",
    "baselines",
    "circuits",
    "errors",
    "faults",
    "link",
    "materials",
    "node",
    "phy",
    "protocol",
    "reader",
    "runtime",
    "shm",
    "store",
    "transducer",
    "units",
    "ReproError",
    "__version__",
]
