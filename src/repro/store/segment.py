"""Append-only columnar segments with per-block CRC32 and a manifest.

One *segment directory* holds everything the store knows about one
series: an append-only binary file per resolution (``raw.seg``,
``hourly.seg``, ``daily.seg``) plus one canonical-JSON ``manifest.json``
(schema ``repro/store-segment/v1``) describing every block in every
file -- offset, length, row count, time range and CRC32.

The durability idioms mirror the campaign runtime's
(:mod:`repro.campaign.checkpoint` / :mod:`repro.campaign.log`):

* data blocks are appended + fsynced *before* the manifest is rewritten
  through fsync-then-rename, so the manifest only ever acknowledges
  bytes that are already on the platters;
* on open-for-append, bytes past the manifest's acknowledged length
  (a torn append, a crash between data-fsync and manifest-rename) are
  truncated away -- loss bounded to the one unacknowledged batch;
* a file *shorter* than its manifest, a block whose CRC32 does not
  match, or an unparseable manifest is real corruption: the segment is
  quarantined to ``.quarantine/`` (forensic evidence, never deleted)
  and the access raises a loud :class:`~repro.errors.SegmentError` --
  the failure mode is always "recovered" or "loud error", never a
  silently wrong query result.

Block frame (all integers little-endian)::

    MAGIC "RSEG" | header_len u32 | header JSON | payload | crc32 u32

where the header is compact sorted-key JSON ``{"columns": [...], "n":
rows}``, the payload is each column's ``n`` float64 values in column
order, and the CRC32 covers header + payload.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SegmentError, StoreError
from ..faults.io import io_fsync, io_read, io_read_text, io_replace, io_write, retry_io
from ..obs import obs_counter, obs_event
from ..runtime.serialize import write_json_atomic

#: Schema tag stamped into every segment manifest.
SEGMENT_SCHEMA = "repro/store-segment/v1"

#: Resolutions a segment directory may hold, coarsest last.
RAW, HOURLY, DAILY = "raw", "hourly", "daily"
RESOLUTIONS = (RAW, HOURLY, DAILY)

#: Column layouts.  The first column is always the time base (hours).
RAW_COLUMNS = ("t", "value")
ROLLUP_COLUMNS = ("t", "min", "mean", "max", "count")

#: Frame constants.
MAGIC = b"RSEG"
_U32 = struct.Struct("<I")
_FLOAT_BYTES = 8

MANIFEST_FILENAME = "manifest.json"


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def columns_for(resolution: str) -> Tuple[str, ...]:
    """The column layout a resolution's blocks carry."""
    if resolution == RAW:
        return RAW_COLUMNS
    if resolution in (HOURLY, DAILY):
        return ROLLUP_COLUMNS
    raise StoreError(
        f"unknown resolution {resolution!r}; options: {RESOLUTIONS}"
    )


def encode_block(
    columns: Sequence[str], arrays: Sequence[np.ndarray]
) -> Tuple[bytes, Dict[str, Any]]:
    """Frame one block; returns ``(frame_bytes, block_meta)``.

    ``block_meta`` is the manifest entry *without* the offset (the
    appender fills that in): ``{"length", "n", "t0", "t1", "crc32"}``.
    """
    if len(columns) != len(arrays) or not columns:
        raise StoreError("need one array per column")
    casted = [np.ascontiguousarray(a, dtype="<f8") for a in arrays]
    n = casted[0].shape[0]
    if n < 1:
        raise StoreError("cannot encode an empty block")
    for name, arr in zip(columns, casted):
        if arr.ndim != 1 or arr.shape[0] != n:
            raise StoreError(f"column {name!r} is not a length-{n} vector")
        if not np.isfinite(arr).all():
            raise StoreError(f"column {name!r} contains non-finite values")
    t = casted[0]
    if n > 1 and bool(np.any(np.diff(t) < 0.0)):
        raise StoreError("block timestamps must be non-decreasing")
    header = json.dumps(
        {"columns": list(columns), "n": n},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    payload = b"".join(arr.tobytes() for arr in casted)
    crc = _crc(header + payload)
    frame = MAGIC + _U32.pack(len(header)) + header + payload + _U32.pack(crc)
    meta = {
        "length": len(frame),
        "n": n,
        "t0": float(t[0]),
        "t1": float(t[-1]),
        "crc32": crc,
    }
    return frame, meta


def decode_block(
    frame: bytes, expected_columns: Sequence[str]
) -> Dict[str, np.ndarray]:
    """Verify + decode one framed block into ``{column: float64 array}``.

    Raises :class:`SegmentError` on any integrity violation: bad magic,
    torn frame, CRC mismatch, or a column layout that disagrees with
    the manifest's resolution.
    """
    if len(frame) < len(MAGIC) + 2 * _U32.size:
        raise SegmentError(f"block frame torn: only {len(frame)} bytes")
    if frame[:4] != MAGIC:
        raise SegmentError(f"bad block magic {frame[:4]!r}")
    (header_len,) = _U32.unpack_from(frame, 4)
    header_end = 8 + header_len
    if header_end + _U32.size > len(frame):
        raise SegmentError("block header overruns the frame")
    try:
        header = json.loads(frame[8:header_end].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SegmentError(f"block header is not valid JSON: {exc}")
    if (
        not isinstance(header, dict)
        or list(header.get("columns", [])) != list(expected_columns)
        or not isinstance(header.get("n"), int)
        or header["n"] < 1
    ):
        raise SegmentError(f"block header malformed: {header!r}")
    n = header["n"]
    payload_end = header_end + n * _FLOAT_BYTES * len(expected_columns)
    if payload_end + _U32.size != len(frame):
        raise SegmentError(
            f"block length mismatch: frame {len(frame)} bytes, "
            f"expected {payload_end + _U32.size}"
        )
    (stored_crc,) = _U32.unpack_from(frame, payload_end)
    if _crc(frame[8:payload_end]) != stored_crc:
        raise SegmentError("block failed its CRC32")
    out: Dict[str, np.ndarray] = {}
    offset = header_end
    for name in expected_columns:
        out[name] = np.frombuffer(
            frame, dtype="<f8", count=n, offset=offset
        ).astype(np.float64)
        offset += n * _FLOAT_BYTES
    return out


def _empty_file_entry(resolution: str) -> Dict[str, Any]:
    return {
        "columns": list(columns_for(resolution)),
        "bytes": 0,
        "rows": 0,
        "blocks": [],
    }


class SegmentDir:
    """One series' on-disk segment directory.

    Args:
        directory: The segment directory (created on first append).
        key_dict: The owning series key as a plain dict, stamped into
            the manifest so a directory is self-describing.
        quarantine_root: Where corrupt segments are moved; usually the
            store's ``.quarantine/`` directory.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        key_dict: Mapping[str, Any],
        quarantine_root: Union[str, Path],
    ):
        self.directory = Path(directory)
        self.key_dict = dict(key_dict)
        self.quarantine_root = Path(quarantine_root)
        self._manifest: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def seg_path(self, resolution: str) -> Path:
        columns_for(resolution)  # validates the name
        return self.directory / f"{resolution}.seg"

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_FILENAME

    def exists(self) -> bool:
        return self.manifest_path.exists()

    def _fresh_manifest(self) -> Dict[str, Any]:
        return {
            "schema": SEGMENT_SCHEMA,
            "key": dict(self.key_dict),
            "files": {res: _empty_file_entry(res) for res in RESOLUTIONS},
        }

    def _load_manifest(self) -> Dict[str, Any]:
        """Read + shape-check the manifest (quarantine + raise if bad)."""
        if self._manifest is not None:
            return self._manifest
        if not self.manifest_path.exists():
            if any(self.seg_path(res).exists() for res in RESOLUTIONS):
                # Data without a manifest: nothing acknowledges those
                # bytes, so nothing can vouch for them.
                self._quarantine("segment files present without a manifest")
            self._manifest = self._fresh_manifest()
            return self._manifest
        try:
            payload = json.loads(io_read_text(self.manifest_path))
        except (OSError, ValueError) as exc:
            self._quarantine(f"unreadable manifest: {exc}")
            raise SegmentError(
                f"segment manifest {self.manifest_path} is corrupt "
                f"(quarantined): {exc}"
            )
        problems = self._manifest_problems(payload)
        if problems:
            self._quarantine(f"malformed manifest: {problems[0]}")
            raise SegmentError(
                f"segment manifest {self.manifest_path} is malformed "
                f"(quarantined): {problems[0]}"
            )
        self._manifest = payload
        return payload

    @staticmethod
    def _manifest_problems(payload: Any) -> List[str]:
        if not isinstance(payload, dict):
            return ["manifest is not an object"]
        if payload.get("schema") != SEGMENT_SCHEMA:
            return [f"wrong schema {payload.get('schema')!r}"]
        files = payload.get("files")
        if not isinstance(files, dict):
            return ["manifest has no files object"]
        for res, entry in files.items():
            if res not in RESOLUTIONS:
                return [f"unknown resolution {res!r}"]
            if not isinstance(entry, dict):
                return [f"{res}: entry is not an object"]
            if list(entry.get("columns", [])) != list(columns_for(res)):
                return [f"{res}: wrong column layout"]
            blocks = entry.get("blocks")
            if not isinstance(blocks, list):
                return [f"{res}: blocks is not a list"]
            offset = 0
            rows = 0
            for block in blocks:
                if not isinstance(block, dict):
                    return [f"{res}: block entry is not an object"]
                for field in ("offset", "length", "n", "t0", "t1", "crc32"):
                    if field not in block:
                        return [f"{res}: block missing {field!r}"]
                if block["offset"] != offset:
                    return [f"{res}: block offsets are not contiguous"]
                offset += block["length"]
                rows += block["n"]
            if entry.get("bytes") != offset:
                return [f"{res}: bytes field disagrees with blocks"]
            if entry.get("rows") != rows:
                return [f"{res}: rows field disagrees with blocks"]
        return []

    def _write_manifest(
        self, manifest: Dict[str, Any], durable: bool = True
    ) -> None:
        write_json_atomic(self.manifest_path, manifest, fsync=durable)
        self._manifest = manifest

    def file_entry(self, resolution: str) -> Dict[str, Any]:
        manifest = self._load_manifest()
        return manifest["files"].setdefault(
            resolution, _empty_file_entry(resolution)
        )

    # ------------------------------------------------------------------
    # Quarantine + recovery
    # ------------------------------------------------------------------

    def _quarantine(self, reason: str) -> Optional[Path]:
        """Move the whole segment directory aside for forensics."""
        if not self.directory.exists():
            return None
        self.quarantine_root.mkdir(parents=True, exist_ok=True)
        stem = "__".join(str(v) for v in self.key_dict.values()) or "segment"
        target = self.quarantine_root / stem
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_root / f"{stem}.{suffix}"
        self.directory.replace(target)
        self._manifest = None
        obs_counter("store.quarantines").inc()
        obs_event(
            "warning", "store.segment_quarantined",
            segment=str(self.directory), quarantined_to=str(target),
            reason=reason,
        )
        return target

    def recover(self) -> int:
        """Cut each segment file back to its manifest-acknowledged length.

        Called before appending.  Returns the number of files that had
        torn (unacknowledged) tails truncated.  A file *shorter* than
        its manifest is corruption, not a torn append: the segment is
        quarantined and a :class:`SegmentError` raised.
        """
        manifest = self._load_manifest()
        truncated = 0
        for resolution, entry in manifest["files"].items():
            path = self.seg_path(resolution)
            size = path.stat().st_size if path.exists() else 0
            acknowledged = entry["bytes"]
            if size < acknowledged:
                self._quarantine(
                    f"{resolution}.seg is {size} bytes but the manifest "
                    f"acknowledges {acknowledged}"
                )
                raise SegmentError(
                    f"segment {self.directory} lost data: {resolution}.seg "
                    f"shorter than its manifest (quarantined)"
                )
            if size > acknowledged:
                with path.open("r+b") as handle:
                    handle.truncate(acknowledged)
                    handle.flush()
                    os.fsync(handle.fileno())
                truncated += 1
                obs_counter("store.truncations").inc()
                obs_event(
                    "warning", "store.segment_truncated",
                    segment=str(path), kept_bytes=acknowledged,
                    dropped_bytes=size - acknowledged,
                )
        return truncated

    # ------------------------------------------------------------------
    # Append / replace
    # ------------------------------------------------------------------

    def append_block(
        self, resolution: str, arrays: Sequence[np.ndarray], durable: bool = True
    ) -> Dict[str, Any]:
        """Append one block and acknowledge it in the manifest.

        ``arrays`` follow the resolution's column order.  Appends must
        advance time: the new block's ``t0`` may not precede the last
        acknowledged ``t1``.

        ``durable=False`` skips both fsyncs (segment file and manifest).
        A *process* crash still heals -- the page cache survives, and
        any torn tail is cut back by :meth:`recover` -- but a power cut
        can lose acknowledged rows (the manifest may reach disk before
        the data, which :meth:`recover` then quarantines loudly).
        Reserved for loss-tolerant series (``_obs`` self-telemetry).
        """
        self.recover()
        entry = self.file_entry(resolution)
        frame, meta = encode_block(columns_for(resolution), arrays)
        if entry["blocks"] and meta["t0"] < entry["blocks"][-1]["t1"]:
            raise StoreError(
                f"out-of-order append to {self.directory.name}/{resolution}: "
                f"block starts at t={meta['t0']} before the segment's "
                f"last t={entry['blocks'][-1]['t1']}"
            )
        path = self.seg_path(resolution)
        self.directory.mkdir(parents=True, exist_ok=True)
        acknowledged = entry["bytes"]

        def heal(_attempt: int, _exc: OSError) -> None:
            # A torn attempt left unacknowledged bytes; cut back to the
            # manifest's length so the retry cannot merge with garbage.
            if path.exists() and path.stat().st_size > acknowledged:
                with path.open("r+b") as handle:
                    handle.truncate(acknowledged)
                    handle.flush()
                    os.fsync(handle.fileno())

        def attempt() -> None:
            with path.open("ab") as handle:
                io_write(handle, frame)
                handle.flush()
                if durable:
                    io_fsync(handle.fileno(), path)

        retry_io(attempt, f"segment_append:{path.name}", on_retry=heal)
        block = {"offset": entry["bytes"], **meta}
        entry["blocks"].append(block)
        entry["bytes"] += meta["length"]
        entry["rows"] += meta["n"]
        self._write_manifest(self._load_manifest(), durable=durable)
        obs_counter("store.blocks_written").inc()
        obs_counter("store.bytes_written").inc(meta["length"])
        return block

    def replace(
        self, resolution: str, arrays: Optional[Sequence[np.ndarray]]
    ) -> None:
        """Atomically rewrite a whole resolution file (compaction path).

        ``None`` (or empty first column) clears the file.  The new file
        is written beside the old one and renamed into place, then the
        manifest is updated -- a crash between the two leaves extra
        acknowledged-or-not bytes that :meth:`recover` reconciles.
        """
        entry = self.file_entry(resolution)
        path = self.seg_path(resolution)
        if arrays is None or len(arrays[0]) == 0:
            if path.exists():
                path.unlink()
            entry.update(_empty_file_entry(resolution))
            self._write_manifest(self._load_manifest())
            return
        frame, meta = encode_block(columns_for(resolution), arrays)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".seg.tmp")

        def attempt() -> None:
            with tmp.open("wb") as handle:
                io_write(handle, frame)
                handle.flush()
                io_fsync(handle.fileno(), tmp)
            io_replace(tmp, path)

        try:
            retry_io(attempt, f"segment_replace:{path.name}")
        except BaseException:
            if tmp.exists():
                tmp.unlink()
            raise
        entry.update(
            {
                "columns": list(columns_for(resolution)),
                "bytes": meta["length"],
                "rows": meta["n"],
                "blocks": [{"offset": 0, **meta}],
            }
        )
        self._write_manifest(self._load_manifest())
        obs_counter("store.blocks_written").inc()
        obs_counter("store.bytes_written").inc(meta["length"])

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def rows(self, resolution: str) -> int:
        return self.file_entry(resolution)["rows"]

    def time_range(self, resolution: str) -> Optional[Tuple[float, float]]:
        blocks = self.file_entry(resolution)["blocks"]
        if not blocks:
            return None
        return blocks[0]["t0"], blocks[-1]["t1"]

    def read(
        self,
        resolution: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> Dict[str, np.ndarray]:
        """Read ``[t0, t1]`` (inclusive, None = open) at ``resolution``.

        Every block touched is CRC-verified; blocks wholly outside the
        range are skipped via the manifest index without touching their
        bytes.  Raises :class:`SegmentError` on any integrity failure.
        """
        entry = self.file_entry(resolution)
        columns = columns_for(resolution)
        wanted = [
            b for b in entry["blocks"]
            if (t1 is None or b["t0"] <= t1) and (t0 is None or b["t1"] >= t0)
        ]
        if not wanted:
            return {name: np.empty(0, dtype=np.float64) for name in columns}
        path = self.seg_path(resolution)

        def attempt() -> List[Dict[str, np.ndarray]]:
            found: List[Dict[str, np.ndarray]] = []
            with path.open("rb") as handle:
                for block in wanted:
                    handle.seek(block["offset"])
                    frame = io_read(handle, block["length"], path)
                    if len(frame) != block["length"]:
                        raise SegmentError(
                            f"{path} torn at offset {block['offset']}"
                        )
                    if _crc(frame[8:-4]) != block["crc32"]:
                        raise SegmentError(
                            f"{path} block at offset {block['offset']} "
                            "disagrees with its manifest CRC32"
                        )
                    found.append(decode_block(frame, columns))
            return found

        try:
            # Transient EIO reads retry with backoff; CRC failures are
            # SegmentErrors (possible bit rot), never retried -- loud.
            parts = retry_io(attempt, f"segment_read:{path.name}")
        except OSError as exc:
            raise SegmentError(f"cannot read {path}: {exc}")
        out = {
            name: np.concatenate([p[name] for p in parts])
            for name in columns
        }
        if t0 is not None or t1 is not None:
            t = out["t"]
            mask = np.ones(t.shape, dtype=bool)
            if t0 is not None:
                mask &= t >= t0
            if t1 is not None:
                mask &= t <= t1
            out = {name: arr[mask] for name, arr in out.items()}
        return out

    # ------------------------------------------------------------------
    # Truncation (campaign resume path)
    # ------------------------------------------------------------------

    def truncate_from(self, t: float) -> int:
        """Drop every raw sample at ``t`` or later; returns rows dropped.

        Used when a resumed campaign replays epochs that were already
        exported: the replay re-appends them, so the stale suffix is
        cut first.  Rollup files are cleared outright (a bucket
        straddling the cut would otherwise keep stale statistics) and
        regenerated by the next ``compact()``.
        """
        entry = self.file_entry(RAW)
        before = entry["rows"]
        if before == 0 or entry["blocks"][-1]["t1"] < t:
            return 0  # nothing at or after t; existing rollups stay valid
        data = self.read(RAW)
        mask = data["t"] < t
        dropped = before - int(mask.sum())
        if dropped == 0:
            return 0
        self.replace(RAW, [data[name][mask] for name in RAW_COLUMNS])
        self.replace(HOURLY, None)
        self.replace(DAILY, None)
        return dropped
