"""Series identity: what one telemetry stream *is* and where it lives.

Every sample in the store belongs to exactly one series, keyed by
``(building, wall, node_id, metric)`` -- the paper's deployment
hierarchy (Fig. 1f): a building has instrumented walls, a wall has
implanted capsules, a capsule reports named channels.  Structure-level
channels that are not tied to a capsule (the campaign's deck
acceleration, steel stress) use the reserved ``node_id`` 0.

Keys map directly onto the on-disk layout::

    <root>/segments/<building>/<wall>/n<node_id:05d>/<metric>/

so the name components double as path components and are validated
accordingly -- a hostile key can never escape the store root.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Any, Dict, Mapping, Tuple

from ..errors import StoreError

#: Reserved node id for structure-level (non-capsule) series.
STRUCTURE_NODE_ID = 0

#: Reserved building namespace for the system's own operational
#: telemetry (the :mod:`repro.obs.pipeline` recorder).  Components
#: starting with an underscore are reserved for such self-telemetry
#: namespaces; experiment data should never use them.
OBS_BUILDING = "_obs"

#: Largest representable node id (the directory name is zero-padded).
MAX_NODE_ID = 99_999

#: Allowed shape of a name component (also a safe path component).
#: A leading underscore marks a reserved namespace (e.g. ``_obs``).
_COMPONENT = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9._-]{0,63}$")

_NODE_DIRNAME = re.compile(r"^n(\d{5})$")


def validate_component(name: str, what: str) -> str:
    """Check one key component is a safe, portable path component."""
    if not isinstance(name, str) or not _COMPONENT.match(name):
        raise StoreError(
            f"invalid {what} {name!r}: need 1-64 chars of "
            "[A-Za-z0-9._-] starting with an alphanumeric "
            "(or an underscore for reserved namespaces)"
        )
    if name in (".", "..") or ".." in name:
        raise StoreError(f"invalid {what} {name!r}: path traversal")
    return name


@dataclass(frozen=True, order=True)
class SeriesKey:
    """The identity of one telemetry time series.

    Attributes:
        building: Deployment-level name (e.g. ``"campaign"``).
        wall: Instrumented wall/span within the building.
        node_id: Capsule id, or :data:`STRUCTURE_NODE_ID` (0) for
            structure-level channels.
        metric: Channel name (``"strain"``, ``"acceleration"``, ...).
    """

    building: str
    wall: str
    node_id: int
    metric: str

    def __post_init__(self) -> None:
        validate_component(self.building, "building")
        validate_component(self.wall, "wall")
        validate_component(self.metric, "metric")
        if not isinstance(self.node_id, int) or isinstance(self.node_id, bool):
            raise StoreError(f"node_id must be an int, got {self.node_id!r}")
        if not 0 <= self.node_id <= MAX_NODE_ID:
            raise StoreError(
                f"node_id {self.node_id} outside [0, {MAX_NODE_ID}]"
            )

    @property
    def node_dirname(self) -> str:
        return f"n{self.node_id:05d}"

    @property
    def relpath(self) -> PurePosixPath:
        """Path of this series' segment directory, relative to the root."""
        return PurePosixPath(
            self.building, self.wall, self.node_dirname, self.metric
        )

    def label(self) -> str:
        """Human-readable ``building/wall/n#/metric`` form."""
        return f"{self.building}/{self.wall}/{self.node_id}/{self.metric}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "building": self.building,
            "wall": self.wall,
            "node_id": self.node_id,
            "metric": self.metric,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SeriesKey":
        if not isinstance(payload, Mapping):
            raise StoreError("series key must be an object")
        try:
            return cls(
                building=payload["building"],
                wall=payload["wall"],
                node_id=int(payload["node_id"]),
                metric=payload["metric"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed series key: {exc!r}")

    @classmethod
    def from_path_parts(cls, parts: Tuple[str, ...]) -> "SeriesKey":
        """Rebuild a key from the four segment-directory path parts."""
        if len(parts) != 4:
            raise StoreError(f"expected 4 path parts, got {parts!r}")
        building, wall, node_dir, metric = parts
        match = _NODE_DIRNAME.match(node_dir)
        if not match:
            raise StoreError(f"not a node directory name: {node_dir!r}")
        return cls(
            building=building,
            wall=wall,
            node_id=int(match.group(1)),
            metric=metric,
        )
