"""The embedded telemetry store: a directory of durable series segments.

:class:`TelemetryStore` is the subsystem's root object -- open (or
create) a store directory, obtain a batched :class:`StoreWriter`, and
every flushed batch becomes one CRC'd columnar block acknowledged by
the owning segment's manifest.  Reads go through
:meth:`TelemetryStore.read` (or the higher-level query engine in
:mod:`repro.store.query`); neither ever returns silently wrong data --
corruption surfaces as a :class:`~repro.errors.SegmentError`.

Layout::

    <root>/store.json                  # repro/store/v1 marker
    <root>/segments/<building>/<wall>/n<id>/<metric>/
        manifest.json                  # repro/store-segment/v1
        raw.seg  hourly.seg  daily.seg
    <root>/.quarantine/                # corrupt segments, moved aside

The time base is *hours* as float64 -- the campaign's native clock --
but nothing in the store interprets it beyond ordering and the rollup
bucket widths (1 h, 24 h).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import StoreError
from ..faults.io import reclaim_tmp_files
from ..obs import obs_counter, obs_event
from ..runtime.serialize import write_json_atomic
from .keys import SeriesKey
from .lock import PartitionLock
from .segment import RAW, RESOLUTIONS, SegmentDir

#: Schema tag for the store-level marker file.
STORE_SCHEMA = "repro/store/v1"

STORE_MARKER_FILENAME = "store.json"
SEGMENTS_DIRNAME = "segments"
QUARANTINE_DIRNAME = ".quarantine"


class TelemetryStore:
    """One on-disk telemetry store.

    Args:
        root: The store directory.  Created (with its ``store.json``
            marker) when absent and ``create`` is True.
        create: Refuse to create a missing store when False -- the
            read-only verbs (query, serve, stats) use this so a typo'd
            path fails loudly instead of materialising an empty store.
    """

    def __init__(self, root: Union[str, Path], create: bool = True):
        self.root = Path(root)
        self._generation_cache: Optional[Tuple[int, int]] = None
        marker = self.root / STORE_MARKER_FILENAME
        if marker.exists():
            try:
                payload = json.loads(marker.read_text())
            except (OSError, ValueError) as exc:
                raise StoreError(f"unreadable store marker {marker}: {exc}")
            if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA:
                raise StoreError(
                    f"{self.root} is not a telemetry store "
                    f"(marker schema {payload.get('schema') if isinstance(payload, dict) else None!r}, "
                    f"expected {STORE_SCHEMA!r})"
                )
        elif create:
            # A crashed earlier creation attempt may have leaked the
            # marker's temp file; only the root is swept (building
            # partitions belong to whoever holds their lock).
            reclaim_tmp_files(self.root, recursive=False, scope="store")
            write_json_atomic(
                marker,
                {"schema": STORE_SCHEMA, "time_unit": "hours", "generation": 0},
            )
        else:
            raise StoreError(
                f"no telemetry store at {self.root} (missing {marker.name})"
            )

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    @property
    def segments_dir(self) -> Path:
        return self.root / SEGMENTS_DIRNAME

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    # ------------------------------------------------------------------
    # Generation (rollup-cache invalidation)
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The store's compaction generation (0 for pre-generation stores).

        Persisted in ``store.json`` and bumped by every operation that
        rewrites rollup bytes in place (:meth:`compact`,
        :meth:`truncate_from`), so serving-tier caches keyed on it can
        never return pre-compaction data.  Cross-process visible: the
        marker is re-read whenever its mtime changes (one ``stat`` per
        access), so a ``store compact`` in another process invalidates
        a long-running server's cache too.
        """
        marker = self.root / STORE_MARKER_FILENAME
        try:
            mtime_ns = marker.stat().st_mtime_ns
        except OSError:
            return 0
        cached = self._generation_cache
        if cached is not None and cached[0] == mtime_ns:
            return cached[1]
        try:
            payload = json.loads(marker.read_text())
        except (OSError, ValueError):
            # Racing an atomic rewrite; next access re-reads.
            return 0
        value = (
            int(payload.get("generation", 0))
            if isinstance(payload, dict) else 0
        )
        self._generation_cache = (mtime_ns, value)
        return value

    def bump_generation(self) -> int:
        """Advance and persist the generation; returns the new value."""
        marker = self.root / STORE_MARKER_FILENAME
        try:
            payload = json.loads(marker.read_text())
        except (OSError, ValueError):
            payload = {"schema": STORE_SCHEMA, "time_unit": "hours"}
        if not isinstance(payload, dict):
            payload = {"schema": STORE_SCHEMA, "time_unit": "hours"}
        value = int(payload.get("generation", 0)) + 1
        payload["generation"] = value
        write_json_atomic(marker, payload)
        self._generation_cache = None
        obs_counter("store.generation_bumps").inc()
        return value

    def segment(self, key: SeriesKey) -> SegmentDir:
        return SegmentDir(
            self.segments_dir / key.relpath,
            key.to_dict(),
            self.quarantine_dir,
        )

    def keys(self) -> List[SeriesKey]:
        """Every series in the store, sorted."""
        found: List[SeriesKey] = []
        base = self.segments_dir
        if not base.is_dir():
            return found
        for manifest in sorted(base.glob("*/*/*/*/manifest.json")):
            parts = manifest.parent.relative_to(base).parts
            try:
                found.append(SeriesKey.from_path_parts(parts))
            except StoreError:
                # Not a segment directory we recognise; skip loudly.
                obs_event(
                    "warning", "store.unrecognised_segment",
                    path=str(manifest.parent),
                )
        return sorted(found)

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------

    def writer(
        self,
        flush_rows: int = 200_000,
        durable: bool = True,
        lock: bool = True,
    ) -> "StoreWriter":
        """A batched writer (use as a context manager to auto-flush).

        ``durable=False`` skips per-block fsyncs -- see
        :meth:`.segment.SegmentDir.append_block`; only loss-tolerant
        writers (the ``_obs`` telemetry pipeline) should opt in.

        ``lock=True`` (the default) takes an advisory
        :class:`~repro.store.lock.PartitionLock` per building on first
        ingest into it, so two processes cannot append to the same
        building partition concurrently -- see :mod:`repro.store.lock`.
        """
        return StoreWriter(
            self, flush_rows=flush_rows, durable=durable, lock=lock
        )

    def append(
        self,
        key: SeriesKey,
        timestamps: Sequence[float],
        values: Sequence[float],
    ) -> int:
        """One-shot append of a (timestamps, values) batch to a series."""
        with self.writer() as writer:
            writer.add(key, timestamps, values)
        return len(timestamps)

    def read(
        self,
        key: SeriesKey,
        resolution: str = RAW,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> Dict[str, np.ndarray]:
        """Column arrays for ``key`` over ``[t0, t1]`` at ``resolution``."""
        return self.segment(key).read(resolution, t0=t0, t1=t1)

    def truncate_from(
        self, t: float, keys: Optional[Iterable[SeriesKey]] = None
    ) -> int:
        """Drop every sample at hour ``t`` or later; returns rows dropped.

        The campaign resume path: epochs past the checkpoint boundary
        will be replayed and re-exported, so their earlier exports are
        cut first (rollups are cleared and left to the next compact).
        """
        dropped = 0
        for key in (self.keys() if keys is None else keys):
            dropped += self.segment(key).truncate_from(t)
        if dropped:
            # Rollups were cleared in place: stale cached blocks must die.
            self.bump_generation()
            obs_counter("store.rows_truncated").inc(dropped)
            obs_event(
                "info", "store.truncated_from", t=t, rows_dropped=dropped,
            )
        return dropped

    def compact(self) -> Dict[str, Any]:
        """Deterministic multi-resolution rollups; see :mod:`.compact`."""
        from .compact import compact_store

        return compact_store(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of what the store holds."""
        series = []
        totals = {res: {"rows": 0, "bytes": 0, "blocks": 0} for res in RESOLUTIONS}
        for key in self.keys():
            segment = self.segment(key)
            entry: Dict[str, Any] = {"key": key.to_dict()}
            for res in RESOLUTIONS:
                info = segment.file_entry(res)
                entry[res] = {
                    "rows": info["rows"],
                    "bytes": info["bytes"],
                    "blocks": len(info["blocks"]),
                }
                totals[res]["rows"] += info["rows"]
                totals[res]["bytes"] += info["bytes"]
                totals[res]["blocks"] += len(info["blocks"])
            span = segment.time_range(RAW)
            entry["t0"], entry["t1"] = (span if span else (None, None))
            series.append(entry)
        quarantined = (
            sorted(p.name for p in self.quarantine_dir.iterdir())
            if self.quarantine_dir.is_dir()
            else []
        )
        return {
            "schema": STORE_SCHEMA,
            "root": str(self.root),
            "series": series,
            "series_count": len(series),
            "totals": totals,
            "quarantined": quarantined,
        }


class StoreWriter:
    """Batched, vectorized ingestion into a :class:`TelemetryStore`.

    Samples accumulate in per-series numpy buffers; :meth:`flush` turns
    each touched series' buffer into *one* appended block (sorted key
    order, so two identical ingest sequences produce identical stores).
    Crossing ``flush_rows`` buffered rows triggers an automatic flush.

    Not thread-safe: one writer per ingesting thread.  Against other
    *processes*, the first ingest into each building takes that
    building's advisory :class:`~repro.store.lock.PartitionLock`, held
    until the writer's context exits (stale locks from dead writers are
    reclaimed loudly; a live foreign writer raises
    :class:`~repro.errors.PartitionLockError`).
    """

    def __init__(
        self,
        store: TelemetryStore,
        flush_rows: int = 200_000,
        durable: bool = True,
        lock: bool = True,
    ):
        if flush_rows < 1:
            raise StoreError(f"flush_rows must be >= 1, got {flush_rows}")
        self.store = store
        self.flush_rows = flush_rows
        self.durable = durable
        self.lock_partitions = lock
        self._locks: Dict[str, PartitionLock] = {}
        self._buffers: Dict[SeriesKey, List[Tuple[np.ndarray, np.ndarray]]] = {}
        self._buffered_rows = 0
        self.rows_written = 0

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self.flush()
        finally:
            self.close()

    def close(self) -> None:
        """Release every held partition lock (idempotent)."""
        locks, self._locks = self._locks, {}
        for held in locks.values():
            held.release()

    def _lock_building(self, building: str) -> None:
        if not self.lock_partitions or building in self._locks:
            return
        self._locks[building] = PartitionLock(
            self.store.segments_dir, building
        ).acquire()
        # Holding the lock makes the sweep race-free: any *.tmp under
        # this building was leaked by a dead writer.
        reclaim_tmp_files(
            self.store.segments_dir / building, recursive=True, scope="store"
        )

    # ------------------------------------------------------------------

    def add(
        self,
        key: SeriesKey,
        timestamps: Sequence[float],
        values: Sequence[float],
    ) -> None:
        """Buffer a batch of ``(timestamp, value)`` samples for ``key``."""
        t = np.ascontiguousarray(timestamps, dtype=np.float64)
        v = np.ascontiguousarray(values, dtype=np.float64)
        if t.ndim != 1 or t.shape != v.shape:
            raise StoreError(
                f"timestamps/values must be equal-length vectors, got "
                f"{t.shape} and {v.shape}"
            )
        if t.size == 0:
            return
        self._lock_building(key.building)
        self._buffers.setdefault(key, []).append((t, v))
        self._buffered_rows += t.size
        if self._buffered_rows >= self.flush_rows:
            self.flush()

    def add_sample(self, key: SeriesKey, t: float, value: float) -> None:
        """Buffer one sample."""
        self.add(key, np.array([t]), np.array([value]))

    def flush(self) -> int:
        """Write every buffered series as one block each; returns rows."""
        if not self._buffers:
            return 0
        flushed = 0
        for key in sorted(self._buffers):
            chunks = self._buffers[key]
            t = np.concatenate([c[0] for c in chunks])
            v = np.concatenate([c[1] for c in chunks])
            if t.size > 1 and bool(np.any(np.diff(t) < 0.0)):
                order = np.argsort(t, kind="stable")
                t, v = t[order], v[order]
            self.store.segment(key).append_block(
                RAW, [t, v], durable=self.durable
            )
            flushed += t.size
        self._buffers.clear()
        self._buffered_rows = 0
        self.rows_written += flushed
        obs_counter("store.rows_ingested").inc(flushed)
        obs_counter("store.flushes").inc()
        return flushed
