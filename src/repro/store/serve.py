"""A minimal JSON/HTTP serving layer over one telemetry store.

Stdlib-only (``http.server.ThreadingHTTPServer``) -- the point is the
smart-building integration surface from the paper's Fig. 1f (facility
dashboards polling wall health), not a production web stack.

Endpoints (all GET; JSON unless noted):

* ``/health``              -- building health view (``?building=...``
  required; optional ``stale_hours``, ``t0``, ``t1``); the
  :meth:`QueryEngine.degradation_report` payload.
* ``/series``              -- one series' samples (``building``,
  ``wall``, ``node``, ``metric`` required; optional ``t0``, ``t1``,
  ``resolution``).
* ``/aggregate``           -- :meth:`QueryEngine.aggregate`
  (``metric`` + ``agg`` required; optional filters, window,
  ``resolution``, ``group_by``).
* ``/stats``               -- :meth:`TelemetryStore.stats`.
* ``/metrics``             -- the server's metrics registry in
  Prometheus text exposition format (``text/plain``); includes the
  per-endpoint ``serve.requests``/``serve.request_s`` series the
  handler itself maintains.
* ``/healthz``             -- operational liveness: ``ok`` (200) or
  ``degraded`` (503, when the store holds quarantined segments),
  uptime, series/quarantine counts, and -- when a campaign has been
  self-recording into ``_obs/campaign`` -- the last heartbeat epoch.

Bad queries return 400 with ``{"error": ...}``; unknown paths 404;
anything else 500.

Every request is measured on the server's registry (request counters
and latency histograms labeled by path and status), so a scrape of
``/metrics`` observes the serving tier observing itself.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..errors import ReproError, StoreError
from ..obs import MetricsRegistry, obs_counter, obs_registry, render_prometheus_text
from .keys import OBS_BUILDING, STRUCTURE_NODE_ID, SeriesKey
from .query import QueryEngine
from .segment import RAW
from .store import TelemetryStore

#: Endpoints the handler reports per-path metrics for.  Unknown paths
#: collapse into one ``other`` label so a URL-scanning client cannot
#: inflate the registry with unbounded label values.
KNOWN_ENDPOINTS = (
    "/aggregate", "/health", "/healthz", "/metrics", "/series", "/stats",
)


def _opt_float(params: Dict[str, str], name: str) -> Optional[float]:
    if name not in params:
        return None
    try:
        return float(params[name])
    except ValueError:
        raise StoreError(f"query parameter {name!r} must be a number")


def _require(params: Dict[str, str], name: str) -> str:
    try:
        return params[name]
    except KeyError:
        raise StoreError(f"missing required query parameter {name!r}")


class StoreServer(ThreadingHTTPServer):
    """HTTP server bound to one store; port 0 picks an ephemeral port."""

    daemon_threads = True

    def __init__(
        self,
        store: TelemetryStore,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__((host, port), StoreRequestHandler)
        self.store = store
        self.engine = QueryEngine(store)
        # The server's own registry: an explicit one, else the live obs
        # registry, else a private one -- /metrics always has something
        # real to expose, even with observability off globally.
        self.registry = (
            registry if registry is not None
            else (obs_registry() or MetricsRegistry())
        )
        self.started_monotonic = time.monotonic()

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    def observe_request(
        self, path: str, status: int, elapsed_s: float
    ) -> None:
        """Fold one handled request into the server's registry."""
        endpoint = path if path in KNOWN_ENDPOINTS else "other"
        self.registry.counter("serve.requests").labels(
            path=endpoint, status=status
        ).inc()
        self.registry.histogram("serve.request_s").labels(
            path=endpoint
        ).observe(elapsed_s)

    # ------------------------------------------------------------------
    # Routing (shared by every handler thread; queries are read-only)
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return render_prometheus_text(self.registry.snapshot())

    def healthz(self) -> Tuple[Dict[str, Any], int]:
        """Liveness payload and its HTTP status (200 ok / 503 degraded).

        ``ok`` means the store is readable and nothing is quarantined.
        When a campaign heartbeat exists under ``_obs/campaign`` its
        last epoch/tick ride along, so one probe answers both "is the
        store serving" and "is the pilot still advancing".
        """
        quarantined = (
            sum(1 for _ in self.store.quarantine_dir.iterdir())
            if self.store.quarantine_dir.is_dir()
            else 0
        )
        payload: Dict[str, Any] = {
            "status": "ok" if quarantined == 0 else "degraded",
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "series_count": len(self.store.keys()),
            "quarantined_segments": quarantined,
        }
        heartbeat = SeriesKey(
            building=OBS_BUILDING, wall="campaign",
            node_id=STRUCTURE_NODE_ID, metric="campaign.epoch",
        )
        try:
            latest = self.engine.latest(heartbeat)
        except (StoreError, ReproError):
            latest = None
        if latest is not None:
            payload["campaign"] = {
                "last_epoch": latest["value"],
                "last_tick_hours": latest["t"],
            }
        return payload, (200 if payload["status"] == "ok" else 503)

    def route(self, path: str, params: Dict[str, str]) -> Dict[str, Any]:
        if path == "/stats":
            return self.store.stats()
        if path == "/health":
            return self.engine.degradation_report(
                _require(params, "building"),
                t0=_opt_float(params, "t0"),
                t1=_opt_float(params, "t1"),
                strain_metric=params.get("metric", "strain"),
                stale_hours=_opt_float(params, "stale_hours"),
            )
        if path == "/series":
            key = SeriesKey(
                building=_require(params, "building"),
                wall=_require(params, "wall"),
                node_id=self._int(params, "node"),
                metric=_require(params, "metric"),
            )
            data = self.engine.series(
                key,
                t0=_opt_float(params, "t0"),
                t1=_opt_float(params, "t1"),
                resolution=params.get("resolution", RAW),
            )
            return {
                "key": key.to_dict(),
                "resolution": params.get("resolution", RAW),
                "rows": int(data["t"].size),
                "columns": {
                    name: column.tolist() for name, column in data.items()
                },
            }
        if path == "/aggregate":
            node = params.get("node")
            return self.engine.aggregate(
                metric=_require(params, "metric"),
                agg=params.get("agg", "mean"),
                building=params.get("building"),
                wall=params.get("wall"),
                node_id=None if node is None else self._int(params, "node"),
                t0=_opt_float(params, "t0"),
                t1=_opt_float(params, "t1"),
                resolution=params.get("resolution", RAW),
                group_by=params.get("group_by"),
            )
        raise LookupError(path)

    @staticmethod
    def _int(params: Dict[str, str], name: str) -> int:
        raw = _require(params, name)
        try:
            return int(raw)
        except ValueError:
            raise StoreError(f"query parameter {name!r} must be an integer")


class StoreRequestHandler(BaseHTTPRequestHandler):
    server: StoreServer

    def do_GET(self) -> None:  # noqa: N802  (http.server's casing)
        obs_counter("store.http_requests").inc()
        started = time.perf_counter()
        parsed = urlsplit(self.path)
        params = dict(parse_qsl(parsed.query))
        content_type = "application/json"
        try:
            if parsed.path == "/metrics":
                # Rendered before observe_request, so the scrape a
                # client reads never includes the scrape itself --
                # each sample shows up from the *next* scrape on.
                text, status = self.server.metrics_text(), 200
                body = text.encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif parsed.path == "/healthz":
                payload, status = self.server.healthz()
                body = json.dumps(payload).encode("utf-8")
            else:
                payload, status = self.server.route(parsed.path, params), 200
                body = json.dumps(payload).encode("utf-8")
        except LookupError:
            payload, status = {"error": f"no such endpoint {parsed.path!r}"}, 404
            body = json.dumps(payload).encode("utf-8")
        except (StoreError, ReproError) as exc:
            payload, status = {"error": str(exc)}, 400
            body = json.dumps(payload).encode("utf-8")
        except Exception as exc:  # pragma: no cover - defensive
            payload, status = {"error": f"internal error: {exc!r}"}, 500
            body = json.dumps(payload).encode("utf-8")
        if status not in (200, 503):
            obs_counter("store.http_errors").inc()
        self.server.observe_request(
            parsed.path, status, time.perf_counter() - started
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silenced: request logging goes through obs counters instead."""


def serve_background(
    store: TelemetryStore,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> Tuple[StoreServer, threading.Thread]:
    """Start a server on a daemon thread; caller owns ``.shutdown()``."""
    server = StoreServer(store, host=host, port=port, registry=registry)
    thread = threading.Thread(
        target=server.serve_forever, name="store-serve", daemon=True
    )
    thread.start()
    return server, thread
