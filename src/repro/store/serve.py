"""The legacy JSON/HTTP serving layer over one telemetry store.

Stdlib-only (``http.server.ThreadingHTTPServer``) -- the *reference*
implementation of the store's HTTP contract: one thread per
connection, no caching, no pagination shortcuts.  All endpoint logic
(routing, validation, error payloads, ETags, pagination) lives in the
shared :class:`repro.serve.api.EndpointCore`, which the asyncio
gateway (:mod:`repro.serve.gateway`) also fronts -- so the two servers
provably serve byte-identical response bodies; the parity matrix in
``tests/test_serve_gateway.py`` and CI stage 12 enforce it.

Endpoints and the error contract are documented on
:mod:`repro.serve.api`.  This server answers GET and HEAD; any other
method gets the shared 405 JSON payload with an ``Allow: GET, HEAD``
header (not stdlib's HTML 501 page).

Every request is measured on the server's registry (request counters
and latency histograms labeled by path and status), so a scrape of
``/metrics`` observes the serving tier observing itself.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..obs import MetricsRegistry, obs_counter
from ..serve.api import KNOWN_ENDPOINTS, EndpointCore
from ..serve.cache import RollupCache
from .query import QueryEngine
from .store import TelemetryStore

__all__ = [
    "KNOWN_ENDPOINTS",
    "StoreRequestHandler",
    "StoreServer",
    "serve_background",
]


class StoreServer(ThreadingHTTPServer):
    """HTTP server bound to one store; port 0 picks an ephemeral port.

    ``cache=None`` (the default) keeps this the uncached reference
    implementation; pass a :class:`~repro.serve.cache.RollupCache` to
    serve from hot rollup blocks like the gateway does.
    """

    daemon_threads = True

    def __init__(
        self,
        store: TelemetryStore,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[RollupCache] = None,
    ):
        super().__init__((host, port), StoreRequestHandler)
        self.core = EndpointCore(store, registry=registry, cache=cache)

    # -- compatibility accessors (pre-extraction public surface) -------

    @property
    def store(self) -> TelemetryStore:
        return self.core.store

    @property
    def engine(self) -> QueryEngine:
        return self.core.engine

    @property
    def registry(self) -> MetricsRegistry:
        return self.core.registry

    @property
    def started_monotonic(self) -> float:
        return self.core.started_monotonic

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    def observe_request(
        self, path: str, status: int, elapsed_s: float
    ) -> None:
        self.core.observe_request(path, status, elapsed_s)

    def metrics_text(self) -> str:
        return self.core.metrics_text()

    def healthz(self) -> Tuple[Dict[str, Any], int]:
        return self.core.healthz()

    def route(self, path: str, params: Dict[str, str]) -> Dict[str, Any]:
        return self.core.route(path, params)


class StoreRequestHandler(BaseHTTPRequestHandler):
    server: StoreServer

    def _handle(self, method: str) -> None:
        obs_counter("store.http_requests").inc()
        started = time.perf_counter()
        parsed = urlsplit(self.path)
        params = dict(parse_qsl(parsed.query))
        response = self.server.core.handle(
            method, parsed.path, params, self.headers.get("If-None-Match")
        )
        if response.status not in (200, 304, 503):
            obs_counter("store.http_errors").inc()
        self.server.observe_request(
            parsed.path, response.status, time.perf_counter() - started
        )
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        # HEAD advertises the GET body's length with an empty body.
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        if method != "HEAD":
            self.wfile.write(response.body)

    def do_GET(self) -> None:  # noqa: N802  (http.server's casing)
        self._handle("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._handle("HEAD")

    def __getattr__(self, name: str) -> Callable[[], None]:
        # http.server dispatches on ``do_<VERB>`` and answers a missing
        # handler with its HTML 501 page.  Synthesising a handler for
        # *every* verb routes POST/PUT/DELETE/BREW/... through the
        # shared core, which answers with the JSON 405 + Allow contract.
        if name.startswith("do_"):
            verb = name[3:]
            return lambda: self._handle(verb)
        raise AttributeError(name)

    def log_message(self, format: str, *args: Any) -> None:
        """Silenced: request logging goes through obs counters instead."""


def serve_background(
    store: TelemetryStore,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    cache: Optional[RollupCache] = None,
) -> Tuple[StoreServer, threading.Thread]:
    """Start a server on a daemon thread; caller owns ``.shutdown()``."""
    server = StoreServer(
        store, host=host, port=port, registry=registry, cache=cache
    )
    thread = threading.Thread(
        target=server.serve_forever, name="store-serve", daemon=True
    )
    thread.start()
    return server, thread
