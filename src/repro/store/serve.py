"""A minimal JSON/HTTP serving layer over one telemetry store.

Stdlib-only (``http.server.ThreadingHTTPServer``) -- the point is the
smart-building integration surface from the paper's Fig. 1f (facility
dashboards polling wall health), not a production web stack.

Endpoints (all GET, all JSON):

* ``/health``              -- building health view (``?building=...``
  required; optional ``stale_hours``, ``t0``, ``t1``); the
  :meth:`QueryEngine.degradation_report` payload.
* ``/series``              -- one series' samples (``building``,
  ``wall``, ``node``, ``metric`` required; optional ``t0``, ``t1``,
  ``resolution``).
* ``/aggregate``           -- :meth:`QueryEngine.aggregate`
  (``metric`` + ``agg`` required; optional filters, window,
  ``resolution``, ``group_by``).
* ``/stats``               -- :meth:`TelemetryStore.stats`.

Bad queries return 400 with ``{"error": ...}``; unknown paths 404;
anything else 500.  Every response carries ``Content-Type:
application/json``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..errors import ReproError, StoreError
from ..obs import obs_counter
from .keys import SeriesKey
from .query import QueryEngine
from .segment import RAW
from .store import TelemetryStore


def _opt_float(params: Dict[str, str], name: str) -> Optional[float]:
    if name not in params:
        return None
    try:
        return float(params[name])
    except ValueError:
        raise StoreError(f"query parameter {name!r} must be a number")


def _require(params: Dict[str, str], name: str) -> str:
    try:
        return params[name]
    except KeyError:
        raise StoreError(f"missing required query parameter {name!r}")


class StoreServer(ThreadingHTTPServer):
    """HTTP server bound to one store; port 0 picks an ephemeral port."""

    daemon_threads = True

    def __init__(
        self,
        store: TelemetryStore,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__((host, port), StoreRequestHandler)
        self.store = store
        self.engine = QueryEngine(store)

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    # ------------------------------------------------------------------
    # Routing (shared by every handler thread; queries are read-only)
    # ------------------------------------------------------------------

    def route(self, path: str, params: Dict[str, str]) -> Dict[str, Any]:
        if path == "/stats":
            return self.store.stats()
        if path == "/health":
            return self.engine.degradation_report(
                _require(params, "building"),
                t0=_opt_float(params, "t0"),
                t1=_opt_float(params, "t1"),
                strain_metric=params.get("metric", "strain"),
                stale_hours=_opt_float(params, "stale_hours"),
            )
        if path == "/series":
            key = SeriesKey(
                building=_require(params, "building"),
                wall=_require(params, "wall"),
                node_id=self._int(params, "node"),
                metric=_require(params, "metric"),
            )
            data = self.engine.series(
                key,
                t0=_opt_float(params, "t0"),
                t1=_opt_float(params, "t1"),
                resolution=params.get("resolution", RAW),
            )
            return {
                "key": key.to_dict(),
                "resolution": params.get("resolution", RAW),
                "rows": int(data["t"].size),
                "columns": {
                    name: column.tolist() for name, column in data.items()
                },
            }
        if path == "/aggregate":
            node = params.get("node")
            return self.engine.aggregate(
                metric=_require(params, "metric"),
                agg=params.get("agg", "mean"),
                building=params.get("building"),
                wall=params.get("wall"),
                node_id=None if node is None else self._int(params, "node"),
                t0=_opt_float(params, "t0"),
                t1=_opt_float(params, "t1"),
                resolution=params.get("resolution", RAW),
                group_by=params.get("group_by"),
            )
        raise LookupError(path)

    @staticmethod
    def _int(params: Dict[str, str], name: str) -> int:
        raw = _require(params, name)
        try:
            return int(raw)
        except ValueError:
            raise StoreError(f"query parameter {name!r} must be an integer")


class StoreRequestHandler(BaseHTTPRequestHandler):
    server: StoreServer

    def do_GET(self) -> None:  # noqa: N802  (http.server's casing)
        obs_counter("store.http_requests").inc()
        parsed = urlsplit(self.path)
        params = dict(parse_qsl(parsed.query))
        try:
            payload, status = self.server.route(parsed.path, params), 200
        except LookupError:
            payload, status = {"error": f"no such endpoint {parsed.path!r}"}, 404
        except (StoreError, ReproError) as exc:
            payload, status = {"error": str(exc)}, 400
        except Exception as exc:  # pragma: no cover - defensive
            payload, status = {"error": f"internal error: {exc!r}"}, 500
        if status != 200:
            obs_counter("store.http_errors").inc()
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silenced: request logging goes through obs counters instead."""


def serve_background(
    store: TelemetryStore, host: str = "127.0.0.1", port: int = 0
) -> Tuple[StoreServer, threading.Thread]:
    """Start a server on a daemon thread; caller owns ``.shutdown()``."""
    server = StoreServer(store, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="store-serve", daemon=True
    )
    thread.start()
    return server, thread
