"""The store's query engine: range scans, aggregation, damage queries.

Everything here is read-only and vectorized: range scans ride the
segment manifests' block index (blocks wholly outside the range are
never read), aggregates over rollup resolutions combine the stored
``(min, mean, max, count)`` statistics instead of re-reading raw
samples, and the building-health queries reuse the SHM analytics
(:mod:`repro.shm.damage` drift detection, :mod:`repro.shm.building`
aggregation) so "which walls degraded this month" is answered straight
from stored telemetry with the same detectors the pilot uses.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from ..errors import StoreError
from ..obs import obs_counter, obs_span
from ..shm.building import BuildingMonitor, CapsuleStatus
from ..shm.damage import DamageAlarm, DamageDetector, StrainHistory
from .compact import ROLLUP_WIDTHS, rollup
from .keys import STRUCTURE_NODE_ID, SeriesKey
from .segment import DAILY, RAW, RESOLUTIONS
from .store import TelemetryStore

#: Aggregations the engine understands.
AGGREGATIONS = ("count", "min", "max", "mean", "sum")

#: Group-by dimensions for :meth:`QueryEngine.aggregate`.
GROUP_BY = ("node", "wall")


class QueryEngine:
    """Read-only queries over one :class:`TelemetryStore`."""

    def __init__(self, store: TelemetryStore):
        self.store = store

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select(
        self,
        building: Optional[str] = None,
        wall: Optional[str] = None,
        node_id: Optional[int] = None,
        metric: Optional[str] = None,
    ) -> List[SeriesKey]:
        """Every series matching the given (None = any) components."""
        return [
            key
            for key in self.store.keys()
            if (building is None or key.building == building)
            and (wall is None or key.wall == wall)
            and (node_id is None or key.node_id == node_id)
            and (metric is None or key.metric == metric)
        ]

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------

    def series(
        self,
        key: SeriesKey,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        resolution: str = RAW,
    ) -> Dict[str, np.ndarray]:
        """Column arrays for one series over ``[t0, t1]``.

        Requesting a rollup resolution whose segment has never been
        compacted falls back to rolling the raw range up on the fly --
        identical numbers (compaction is a pure function of raw), just
        without the precomputed speed.
        """
        if resolution not in RESOLUTIONS:
            raise StoreError(
                f"unknown resolution {resolution!r}; options: {RESOLUTIONS}"
            )
        with obs_span("store.query", key=key.label(), resolution=resolution):
            obs_counter("store.queries").inc()
            segment = self.store.segment(key)
            if resolution == RAW:
                data = segment.read(RAW, t0=t0, t1=t1)
            elif segment.rows(resolution):
                data = segment.read(resolution, t0=t0, t1=t1)
            else:
                raw = segment.read(RAW, t0=t0, t1=t1)
                t, mins, means, maxs, counts = rollup(
                    raw["t"], raw["value"], ROLLUP_WIDTHS[resolution]
                )
                data = {
                    "t": t, "min": mins, "mean": means,
                    "max": maxs, "count": counts,
                }
            obs_counter("store.query_rows").inc(int(data["t"].size))
            return data

    def latest(self, key: SeriesKey) -> Optional[Dict[str, float]]:
        """The newest raw sample of a series, or None when empty."""
        segment = self.store.segment(key)
        blocks = segment.file_entry(RAW)["blocks"]
        if not blocks:
            return None
        tail = segment.read(RAW, t0=blocks[-1]["t0"])
        return {"t": float(tail["t"][-1]), "value": float(tail["value"][-1])}

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def aggregate(
        self,
        metric: str,
        agg: str = "mean",
        building: Optional[str] = None,
        wall: Optional[str] = None,
        node_id: Optional[int] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        resolution: str = RAW,
        group_by: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Aggregate one metric over every matching series.

        Raw aggregation touches the samples; rollup aggregation combines
        the stored bucket statistics (count-weighted for ``mean``), so
        the answers match raw exactly for ``count``/``min``/``max``/
        ``sum`` and match raw's mean because buckets partition samples.
        """
        if agg not in AGGREGATIONS:
            raise StoreError(f"unknown agg {agg!r}; options: {AGGREGATIONS}")
        if group_by is not None and group_by not in GROUP_BY:
            raise StoreError(
                f"unknown group_by {group_by!r}; options: {GROUP_BY}"
            )
        keys = self.select(
            building=building, wall=wall, node_id=node_id, metric=metric
        )
        groups: Dict[str, List[SeriesKey]] = {}
        for key in keys:
            if group_by == "node":
                label = f"{key.building}/{key.wall}/{key.node_id}"
            elif group_by == "wall":
                label = f"{key.building}/{key.wall}"
            else:
                label = ""
            groups.setdefault(label, []).append(key)
        values = {
            label: self._aggregate_keys(members, agg, t0, t1, resolution)
            for label, members in sorted(groups.items())
        }
        result: Dict[str, Any] = {
            "metric": metric,
            "agg": agg,
            "resolution": resolution,
            "series": len(keys),
        }
        if group_by is None:
            result["value"] = values.get("")
        else:
            result["group_by"] = group_by
            result["groups"] = values
        return result

    def _aggregate_keys(
        self,
        keys: Iterable[SeriesKey],
        agg: str,
        t0: Optional[float],
        t1: Optional[float],
        resolution: str,
    ) -> Optional[float]:
        count = 0.0
        total = 0.0
        low = np.inf
        high = -np.inf
        for key in keys:
            data = self.series(key, t0=t0, t1=t1, resolution=resolution)
            if data["t"].size == 0:
                continue
            if resolution == RAW:
                v = data["value"]
                count += v.size
                total += float(v.sum())
                low = min(low, float(v.min()))
                high = max(high, float(v.max()))
            else:
                n = data["count"]
                count += float(n.sum())
                total += float((data["mean"] * n).sum())
                low = min(low, float(data["min"].min()))
                high = max(high, float(data["max"].max()))
        if agg == "count":
            return count
        if count == 0.0:
            return None
        if agg == "sum":
            return total
        if agg == "mean":
            return total / count
        return low if agg == "min" else high

    # ------------------------------------------------------------------
    # Damage / health queries (reusing the SHM analytics)
    # ------------------------------------------------------------------

    def strain_alarm(
        self,
        key: SeriesKey,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> Optional[DamageAlarm]:
        """Drift alarm for one capsule's stored strain series.

        Long histories (a full seasonal cycle of daily means) go through
        the real :class:`~repro.shm.damage.DamageDetector` CUSUM;
        shorter ones fall back to a least-squares drift slope graded
        against the same ``warning_drift``/``critical_drift``
        thresholds, so a fresh deployment still gets an early-warning
        answer instead of "come back in a year".
        """
        daily = self.series(key, t0=t0, t1=t1, resolution=DAILY)
        if daily["t"].size < 2:
            return None
        days = daily["t"] / ROLLUP_WIDTHS[DAILY]
        strain = daily["mean"]
        if days.size > DamageDetector.training_days:
            try:
                return DamageDetector().detect(
                    StrainHistory(days=days, strain=strain)
                )
            except Exception:
                # Irregular cadence can starve the seasonal fit; the
                # slope fallback below still answers.
                pass
        slope = float(np.polyfit(days, strain, 1)[0])
        if slope < DamageDetector.warning_drift:
            return None
        severity = (
            "critical" if slope >= DamageDetector.critical_drift else "warning"
        )
        return DamageAlarm(
            day=float(days[-1]), cusum=0.0,
            drift_estimate=slope, severity=severity,
        )

    def building_view(
        self,
        building: str,
        strain_metric: str = "strain",
        stale_hours: Optional[float] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> BuildingMonitor:
        """A :class:`BuildingMonitor` built from stored telemetry.

        Capsules are the non-structure nodes with a strain series; a
        capsule whose newest sample is older than ``stale_hours``
        behind the store's newest sample is reported unreachable (it
        has stopped answering surveys).
        """
        keys = [
            key
            for key in self.select(building=building, metric=strain_metric)
            if key.node_id != STRUCTURE_NODE_ID
        ]
        if not keys:
            raise StoreError(
                f"no {strain_metric!r} series stored for building "
                f"{building!r}"
            )
        monitor = BuildingMonitor(name=building)
        newest = max(
            (entry["t"] for entry in map(self.latest, keys) if entry),
            default=None,
        )
        for key in keys:
            last = self.latest(key)
            reachable = last is not None and (
                stale_hours is None
                or newest is None
                or newest - last["t"] <= stale_hours
            )
            monitor.record(
                CapsuleStatus(
                    node_id=key.node_id,
                    wall=key.wall,
                    reachable=reachable,
                    last_strain=last["value"] if last else None,
                    alarm=(
                        self.strain_alarm(key, t0=t0, t1=t1)
                        if reachable
                        else None
                    ),
                )
            )
        return monitor

    def degradation_report(
        self,
        building: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        strain_metric: str = "strain",
        stale_hours: Optional[float] = None,
    ) -> Dict[str, Any]:
        """"Which walls degraded?" -- JSON-ready, worst walls first."""
        monitor = self.building_view(
            building, strain_metric=strain_metric,
            stale_hours=stale_hours, t0=t0, t1=t1,
        )
        payload = monitor.to_dict()
        payload["degraded_walls"] = [
            wall["wall"]
            for wall in payload["walls"]
            if wall["grade"] != "healthy"
        ]
        payload["window"] = {"t0": t0, "t1": t1}
        return payload
