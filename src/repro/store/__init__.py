"""repro.store: embedded telemetry time-series store.

The persistence layer under the smart-building vision: surveys and
campaign epochs are ingested into durable columnar segments, compacted
into multi-resolution rollups, and served back through a vectorized
query engine plus a small JSON/HTTP API.

Durability follows the campaign subsystem's rules: a sample is either
acknowledged by a manifest (fsynced before the manifest was), or it
does not exist; torn tails truncate loss-bounded; corruption is
quarantined and raised as :class:`~repro.errors.SegmentError` -- never
silently wrong data.
"""

from .compact import ROLLUP_WIDTHS, compact_store, rollup
from .ingest import (
    ingest_campaign_result,
    ingest_inventory,
    ingest_reports,
    ingest_series,
    ingest_session,
)
from .keys import (
    MAX_NODE_ID,
    OBS_BUILDING,
    STRUCTURE_NODE_ID,
    SeriesKey,
    validate_component,
)
from .lock import LOCK_FILENAME, PartitionLock, pid_alive
from .query import AGGREGATIONS, QueryEngine
from .segment import (
    DAILY,
    HOURLY,
    RAW,
    RESOLUTIONS,
    SEGMENT_SCHEMA,
    SegmentDir,
)
from .serve import StoreRequestHandler, StoreServer, serve_background
from .store import STORE_SCHEMA, StoreWriter, TelemetryStore

__all__ = [
    "AGGREGATIONS",
    "DAILY",
    "HOURLY",
    "LOCK_FILENAME",
    "MAX_NODE_ID",
    "OBS_BUILDING",
    "PartitionLock",
    "QueryEngine",
    "RAW",
    "RESOLUTIONS",
    "ROLLUP_WIDTHS",
    "SEGMENT_SCHEMA",
    "STORE_SCHEMA",
    "STRUCTURE_NODE_ID",
    "SegmentDir",
    "SeriesKey",
    "StoreRequestHandler",
    "StoreServer",
    "StoreWriter",
    "TelemetryStore",
    "compact_store",
    "ingest_campaign_result",
    "ingest_inventory",
    "ingest_reports",
    "ingest_series",
    "ingest_session",
    "pid_alive",
    "rollup",
    "serve_background",
    "validate_component",
]
