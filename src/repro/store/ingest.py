"""Adapters: protocol/link/campaign outputs into store samples.

The stack already produces telemetry in three shapes -- per-wall
:class:`~repro.link.session.SessionResult` surveys, raw TDMA
:class:`~repro.protocol.tdma.InventoryResult` inventories, and the
campaign's structure-level epoch series.  Each adapter here flattens
one of those into ``writer.add(key, t, values)`` calls, so ingestion
is a thin mapping layer and everything durable lives in the segment
code.

All adapters take an explicit timestamp (hours): the protocol layers
deliberately have no wall clock, so time is owned by whoever ran the
survey (the campaign's epoch clock, or an operator's choice).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Sequence, Union

import numpy as np

from ..errors import StoreError
from ..obs import obs_counter
from .keys import STRUCTURE_NODE_ID, SeriesKey
from .store import StoreWriter

#: Metric names for the campaign's structure-level epoch series.
CAMPAIGN_SERIES_METRICS = ("acceleration", "stress_mpa")


def ingest_reports(
    writer: StoreWriter,
    reports: Mapping[int, Sequence[Any]],
    building: str,
    wall: str,
    t: float,
) -> int:
    """Ingest a ``node_id -> [SensorReport]`` mapping at hour ``t``.

    Each report becomes one sample on the
    ``(building, wall, node_id, channel)`` series.  Multiple reports of
    the same channel by the same node land as multiple samples at the
    same timestamp (the store permits ties).
    """
    rows = 0
    for node_id in sorted(reports):
        for report in reports[node_id]:
            writer.add_sample(
                SeriesKey(
                    building=building,
                    wall=wall,
                    node_id=int(node_id),
                    metric=report.channel,
                ),
                t,
                report.value,
            )
            rows += 1
    obs_counter("store.ingested_reports").inc(rows)
    return rows


def ingest_session(
    writer: StoreWriter,
    result: Any,
    building: str,
    wall: str,
    t: float,
) -> int:
    """Ingest one :class:`~repro.link.session.SessionResult` survey."""
    return ingest_reports(writer, result.reports, building, wall, t)


def ingest_inventory(
    writer: StoreWriter,
    result: Mapping[int, Sequence[Any]],
    building: str,
    wall: str,
    t: float,
) -> int:
    """Ingest one TDMA :class:`~repro.protocol.tdma.InventoryResult`.

    ``InventoryResult`` behaves as a mapping of ``node_id -> reports``,
    which is exactly what :func:`ingest_reports` eats.
    """
    return ingest_reports(writer, result, building, wall, t)


def ingest_series(
    writer: StoreWriter,
    building: str,
    wall: str,
    metric: str,
    timestamps: Sequence[float],
    values: Sequence[float],
    node_id: int = STRUCTURE_NODE_ID,
) -> int:
    """Ingest a dense structure-level series (one vectorized add)."""
    writer.add(
        SeriesKey(
            building=building, wall=wall, node_id=node_id, metric=metric
        ),
        timestamps,
        values,
    )
    return len(timestamps)


def ingest_campaign_result(
    writer: StoreWriter,
    payload: Union[Mapping[str, Any], str, Path],
    building: str = "campaign",
    wall: str = "pilot",
) -> int:
    """Ingest a campaign ``result.json`` (path or parsed payload).

    The campaign result carries the structure-level ``hours`` /
    ``acceleration`` / ``stress_mpa`` vectors; they become two
    ``node_id`` 0 series.  This is the offline path (``store ingest``)
    for campaigns that ran without ``--store``.
    """
    if isinstance(payload, (str, Path)):
        path = Path(payload)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreError(f"unreadable campaign result {path}: {exc}")
    if not isinstance(payload, Mapping):
        raise StoreError("campaign result must be an object")
    body = payload.get("result", payload)
    if not isinstance(body, Mapping) or "hours" not in body:
        raise StoreError(
            "campaign result carries no 'hours' series; is this a "
            "campaign result.json?"
        )
    hours = np.asarray(body["hours"], dtype=np.float64)
    rows = 0
    for metric in CAMPAIGN_SERIES_METRICS:
        if metric not in body:
            continue
        values = np.asarray(body[metric], dtype=np.float64)
        if values.shape != hours.shape:
            raise StoreError(
                f"campaign series {metric!r} has {values.size} samples "
                f"but 'hours' has {hours.size}"
            )
        rows += ingest_series(writer, building, wall, metric, hours, values)
    if rows == 0:
        raise StoreError(
            f"campaign result carries none of {CAMPAIGN_SERIES_METRICS}"
        )
    return rows
