"""Deterministic compaction: raw samples into multi-resolution rollups.

Long campaigns accumulate millions of raw samples per series; the
queries operators actually run ("mean strain per day this month") do
not need them.  :func:`compact_store` downsamples every series into
hourly and daily ``(t, min, mean, max, count)`` rollup segments.

Compaction is *background-free and deterministic*: it is an explicit
verb (``store compact`` / :meth:`TelemetryStore.compact`), a pure
function of the raw data, and rewrites each rollup file atomically in
full -- so compacting twice, or compacting a store rebuilt from the
same ingest sequence, produces byte-identical rollup segments.  Rollup
buckets are aligned to the epoch of the time base (``floor(t /
width)``), not to the first sample, so later appends never shift
existing bucket boundaries.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

from ..errors import StoreError
from ..obs import obs_counter, obs_event, obs_span
from .keys import SeriesKey
from .segment import DAILY, HOURLY, RAW

#: Rollup bucket widths, in the store's time unit (hours).
ROLLUP_WIDTHS: Dict[str, float] = {HOURLY: 1.0, DAILY: 24.0}


def rollup(
    t: np.ndarray, values: np.ndarray, width: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized downsample: ``(t_bucket, min, mean, max, count)``.

    ``t`` must be non-decreasing (the segment append invariant), which
    makes the bucket index non-decreasing too -- ``reduceat`` over the
    bucket starts aggregates every bucket in one pass, no python loop.
    """
    if width <= 0.0:
        raise StoreError(f"rollup width must be positive, got {width}")
    if t.size == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy(), empty.copy(), empty.copy(), empty.copy()
    buckets = np.floor(t / width)
    uniq, starts, counts = np.unique(
        buckets, return_index=True, return_counts=True
    )
    mins = np.minimum.reduceat(values, starts)
    maxs = np.maximum.reduceat(values, starts)
    means = np.add.reduceat(values, starts) / counts
    return (
        uniq * width,
        mins,
        means,
        maxs,
        counts.astype(np.float64),
    )


def compact_store(
    store: Any, keys: Optional[Iterable[SeriesKey]] = None
) -> Dict[str, Any]:
    """Regenerate every rollup segment from raw; returns a summary.

    The summary is JSON-ready: per-resolution rollup row totals plus
    the number of series compacted -- what the CLI verb prints.
    """
    selected = list(store.keys() if keys is None else keys)
    summary: Dict[str, Any] = {
        "series": len(selected),
        "raw_rows": 0,
        "rollup_rows": {HOURLY: 0, DAILY: 0},
    }
    with obs_span("store.compact", series=len(selected)):
        for key in selected:
            segment = store.segment(key)
            data = segment.read(RAW)
            summary["raw_rows"] += int(data["t"].size)
            for resolution, width in ROLLUP_WIDTHS.items():
                cols = rollup(data["t"], data["value"], width)
                segment.replace(
                    resolution, None if cols[0].size == 0 else list(cols)
                )
                summary["rollup_rows"][resolution] += int(cols[0].size)
                obs_counter("store.rollup_rows").inc(int(cols[0].size))
    # Rollup bytes changed in place: bump the store generation so the
    # serving tier's rollup caches drop their now-stale entries (the
    # duck-typed guard keeps test doubles without markers working).
    if hasattr(store, "bump_generation"):
        summary["generation"] = store.bump_generation()
    obs_counter("store.compactions").inc()
    obs_event(
        "info", "store.compacted",
        series=summary["series"], raw_rows=summary["raw_rows"],
    )
    return summary
