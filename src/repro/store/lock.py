"""Advisory per-building writer locks for the telemetry store.

Two processes appending to the same building partition can interleave
manifest rewrites and corrupt each other's acknowledged state, so every
:class:`~repro.store.store.StoreWriter` takes a :class:`PartitionLock`
on each building it touches before its first flush into it.

The lock is a JSON lockfile at ``segments/<building>/.writer.lock``
created with ``O_CREAT | O_EXCL`` -- atomic on every filesystem the
store targets.  It records the owning pid; a lock whose pid is no
longer alive (its owner crashed or was SIGKILLed before releasing) is
*stale* and gets reclaimed loudly -- an ``obs`` warning event plus the
``store.locks_reclaimed`` counter -- rather than wedging the partition
forever.  A lock held by a live foreign process raises
:class:`~repro.errors.PartitionLockError`: the fleet supervisor treats
that as the bug it is (two workers assigned one shard) instead of
letting the writers race.

Advisory means exactly that: readers, ``truncate_from`` and the repair
verbs do not consult the lock -- only concurrent *writers* are the
hazard this guards against.
"""

from __future__ import annotations

import errno
import json
import os
from pathlib import Path
from typing import Optional

from ..errors import PartitionLockError, StoreError
from ..obs import obs_counter, obs_event

#: Lockfile name inside a building's segment directory.  Dot-prefixed
#: so the segment-manifest glob in :meth:`TelemetryStore.keys` and the
#: stats walk never mistake it for series data.
LOCK_FILENAME = ".writer.lock"

LOCK_SCHEMA = "repro/store-lock/v1"


def pid_alive(pid: int) -> bool:
    """True when ``pid`` is a live process we could signal.

    ``EPERM`` counts as alive (the process exists under another uid);
    only ``ESRCH`` -- no such process -- marks a lock stale.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except OSError as exc:
        return exc.errno != errno.ESRCH
    return True


class PartitionLock:
    """One advisory lock over one building's segment subtree."""

    def __init__(self, segments_dir: Path, building: str):
        self.building = building
        self.path = Path(segments_dir) / building / LOCK_FILENAME
        self._held = False

    # ------------------------------------------------------------------

    def acquire(self) -> "PartitionLock":
        """Take the lock, reclaiming a stale one; raises
        :class:`~repro.errors.PartitionLockError` on a live owner."""
        if self._held:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(
            {"schema": LOCK_SCHEMA, "building": self.building, "pid": os.getpid()}
        )
        # Bounded retry: losing an O_EXCL race to another reclaimer is
        # the only loop-back, and it resolves in one extra pass.
        for _ in range(8):
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._break_stale():
                    continue
                raise PartitionLockError(
                    self.building, self.path, self._owner_pid()
                )
            try:
                os.write(fd, body.encode("utf-8"))
            finally:
                os.close(fd)
            self._held = True
            return self
        raise StoreError(
            f"could not acquire partition lock {self.path} "
            f"(lost the creation race repeatedly)"
        )

    def release(self) -> None:
        """Drop the lock; idempotent, tolerates an already-removed file."""
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------

    def _owner_pid(self) -> Optional[int]:
        try:
            payload = json.loads(self.path.read_text())
            return int(payload.get("pid"))
        except (OSError, ValueError, TypeError):
            return None

    def _break_stale(self) -> bool:
        """Remove the existing lockfile when its owner is dead (or the
        file is unreadable garbage from a crashed half-write).  Returns
        True when the caller should retry the exclusive create."""
        pid = self._owner_pid()
        if pid is not None and pid_alive(pid):
            return False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass  # someone else broke it first; retry the create
        obs_counter("store.locks_reclaimed").inc()
        obs_event(
            "warning", "store.lock_reclaimed",
            building=self.building, path=str(self.path),
            stale_pid=pid,
        )
        return True

    # ------------------------------------------------------------------

    def __enter__(self) -> "PartitionLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()
