"""Exception hierarchy for the EcoCapsule reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every library-specific error."""


class MaterialError(ReproError):
    """Unknown material, or a property combination that is unphysical."""


class AcousticsError(ReproError):
    """A propagation/boundary computation received invalid geometry."""


class TotalReflectionError(AcousticsError):
    """Snell refraction requested beyond the critical angle.

    Carries the critical angle so callers can report or clamp it.
    """

    def __init__(self, incident_deg: float, critical_deg: float, mode: str):
        self.incident_deg = incident_deg
        self.critical_deg = critical_deg
        self.mode = mode
        super().__init__(
            f"{mode}-wave is evanescent: incident angle {incident_deg:.1f} deg "
            f"exceeds the critical angle {critical_deg:.1f} deg"
        )


class EncodingError(ReproError):
    """A PHY encoder/decoder was given malformed symbols or bits."""


class DecodingError(ReproError):
    """The decoder could not recover data from the waveform."""


class ProtocolError(ReproError):
    """A reader/node state machine received an out-of-order event."""


class CrcError(ProtocolError):
    """Packet failed its CRC check."""


class PowerError(ReproError):
    """A node attempted to operate without sufficient harvested energy."""


class DesignError(ReproError):
    """A mechanical/acoustic design request is infeasible (shell, prism, HRA)."""


class RuntimeSubsystemError(ReproError):
    """Base class for the experiment-runtime layer (registry/cache/runner)."""


class RegistryError(RuntimeSubsystemError):
    """An experiment name or module does not match the registry contract."""


class SerializationError(RuntimeSubsystemError):
    """A result object contains something the JSON serializer cannot encode."""


class ManifestError(RuntimeSubsystemError):
    """A run manifest is missing or violates the manifest schema."""


class ObsError(ReproError):
    """Misuse of the observability layer (metrics, tracing, profiling)."""


class FaultConfigError(ReproError):
    """A fault plan is malformed (bad rate, unknown field, broken file)."""


class FaultPlanError(FaultConfigError):
    """A fault-plan rate or scaling factor is out of the [0, 1] domain.

    Subclasses :class:`FaultConfigError` so existing handlers keep
    working; raised for NaN, negative, infinite or >1 rate values and
    for invalid ``scaled()`` intensities.
    """


class ChaosError(ReproError):
    """A chaos drill is misconfigured or its state directory is unusable."""


class CampaignError(ReproError):
    """The campaign runtime hit an unrecoverable configuration/state error."""


class CheckpointError(CampaignError):
    """No usable campaign checkpoint (all corrupt/quarantined or absent)."""


class StoreError(ReproError):
    """The telemetry store hit invalid data, a bad key or a broken layout."""


class PartitionLockError(StoreError):
    """A building partition is already locked by another live writer.

    Subclasses :class:`StoreError` so store callers need no new handler;
    carries the owning pid so supervisors can report who holds it.
    """

    def __init__(self, building: str, path, pid):
        self.building = building
        self.path = path
        self.pid = pid
        super().__init__(
            f"building partition {building!r} is locked by live pid {pid} "
            f"({path})"
        )


class FleetError(ReproError):
    """The fleet supervisor hit an unrecoverable configuration/state error."""


class SegmentError(StoreError):
    """A store segment failed integrity verification (CRC/manifest/frame).

    Subclasses :class:`StoreError` so callers can treat "this segment is
    corrupt" and "this store request is invalid" uniformly; raised when
    a block's CRC32 does not match, a frame is malformed, or a segment
    file disagrees with its manifest.
    """
