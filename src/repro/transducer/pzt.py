"""Piezoelectric transducer (PZT) behavioural model.

A disc PZT converts terminal volts to longitudinal surface vibration and
back.  The behaviours the paper's evaluation depends on are:

* a resonant band (second-order response around the disc's thickness
  resonance) -- the reader's discs are cut for ~230 kHz;
* the ring-down (inertia) tail when the drive stops (Sec. 3.3);
* the piston beam geometry (half-beam angle, Sec. 3.2);
* a maximum drive voltage (the reader's 40 mm disc survives 250 V, the
  node's 10 mm disc is smaller and driven only by the harvested field).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import DesignError
from ..units import TWO_PI
from ..acoustics.ringdown import RingdownModel
from ..acoustics.waves import half_beam_angle


@dataclass(frozen=True)
class PztDisc:
    """A circular piezoelectric disc.

    Attributes:
        diameter: Disc diameter (m).
        thickness: Disc thickness (m).
        resonant_frequency: Thickness-mode resonance (Hz).
        quality_factor: Mechanical Q (sets bandwidth and ring-down).
        max_voltage: Highest safe drive voltage (V peak).
        conversion: Electromechanical conversion efficiency at resonance
            (fraction of electrical power converted to acoustic power).
    """

    diameter: float
    thickness: float
    resonant_frequency: float
    quality_factor: float = 85.0
    max_voltage: float = 250.0
    conversion: float = 0.45

    def __post_init__(self) -> None:
        for label, value in (
            ("diameter", self.diameter),
            ("thickness", self.thickness),
            ("resonant_frequency", self.resonant_frequency),
            ("quality_factor", self.quality_factor),
            ("max_voltage", self.max_voltage),
        ):
            if value <= 0.0:
                raise DesignError(f"{label} must be positive, got {value}")
        if not 0.0 < self.conversion <= 1.0:
            raise DesignError("conversion efficiency must be in (0, 1]")

    @property
    def ringdown(self) -> RingdownModel:
        """Ring-down model at the disc's resonance."""
        return RingdownModel(
            frequency=self.resonant_frequency, quality_factor=self.quality_factor
        )

    def frequency_response(self, frequency: float) -> float:
        """Relative conversion gain at ``frequency`` (1.0 at resonance)."""
        if frequency <= 0.0:
            raise DesignError("frequency must be positive")
        x = frequency / self.resonant_frequency
        q = self.quality_factor
        # Band-pass magnitude with Q limited to keep a usable FSK band:
        # the mechanical Q is high but the matched electrical load damps
        # the operating response (loaded Q ~ 6).
        loaded_q = min(q, 6.0)
        return 1.0 / math.sqrt(1.0 + loaded_q * loaded_q * (x - 1.0 / x) ** 2)

    def beam_half_angle(self, velocity: float, frequency: float = None) -> float:
        """Piston half-beam angle (rad) in a medium with ``velocity``."""
        f = self.resonant_frequency if frequency is None else frequency
        return half_beam_angle(self.diameter, f, velocity)

    def transmit(
        self,
        baseband: np.ndarray,
        carrier_frequency: np.ndarray,
        sample_rate: float,
        drive_voltage: float,
    ) -> np.ndarray:
        """Convert a drive specification into an emitted waveform.

        Args:
            baseband: Per-sample drive envelope in [0, 1].
            carrier_frequency: Per-sample carrier frequency (Hz) -- a
                constant array for OOK, switching for the FSK downlink.
            sample_rate: Sampling rate (Hz).
            drive_voltage: Peak drive voltage (V).

        Returns:
            Emitted waveform (acoustic amplitude in equivalent volts),
            including resonance shaping per frequency and the ring-down
            tail wherever the envelope drops to zero.
        """
        if drive_voltage <= 0.0:
            raise DesignError("drive voltage must be positive")
        if drive_voltage > self.max_voltage:
            raise DesignError(
                f"drive voltage {drive_voltage} V exceeds the disc limit "
                f"{self.max_voltage} V"
            )
        baseband = np.asarray(baseband, dtype=float)
        carrier_frequency = np.asarray(carrier_frequency, dtype=float)
        if baseband.shape != carrier_frequency.shape:
            raise DesignError("baseband and carrier arrays must have equal shape")

        gains = np.array([self.frequency_response(f) for f in np.unique(carrier_frequency)])
        gain_map = dict(zip(np.unique(carrier_frequency), gains))
        per_sample_gain = np.vectorize(gain_map.get)(carrier_frequency)

        phase = TWO_PI * np.cumsum(carrier_frequency) / sample_rate
        driven = baseband * per_sample_gain

        # Ring-down: wherever the envelope drops, decay exponentially
        # instead of stopping -- a single-pole release filter whose time
        # constant is the mechanical ring-down tau.
        tau = self.ringdown.time_constant
        release = math.exp(-1.0 / (tau * sample_rate))
        emitted = np.empty_like(driven)
        state = 0.0
        for i, target in enumerate(driven):
            if target >= state:
                state = target  # attack is fast (driven directly)
            else:
                state = max(target, state * release)
            emitted[i] = state
        return drive_voltage * self.conversion * emitted * np.sin(phase)


def reader_tx_disc() -> PztDisc:
    """The reader's transmitting disc: 40 mm x 2 mm, 230 kHz, 250 V."""
    return PztDisc(
        diameter=0.040,
        thickness=0.002,
        resonant_frequency=230e3,
        max_voltage=250.0,
    )


def reader_rx_disc() -> PztDisc:
    """The reader's receiving disc (same part, used passively)."""
    return reader_tx_disc()


def node_disc() -> PztDisc:
    """The EcoCapsule's 10 mm disc behind the capsule mouth."""
    return PztDisc(
        diameter=0.010,
        thickness=0.001,
        resonant_frequency=230e3,
        max_voltage=50.0,
        conversion=0.35,
    )
