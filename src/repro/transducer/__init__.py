"""Transducer substrate: PZT discs and the reader's analog drive chain."""

from .frontend import MatchingNetwork, PowerAmplifier, TransmitChain
from .pzt import PztDisc, node_disc, reader_rx_disc, reader_tx_disc

__all__ = [
    "MatchingNetwork",
    "PowerAmplifier",
    "TransmitChain",
    "PztDisc",
    "node_disc",
    "reader_rx_disc",
    "reader_tx_disc",
]
