"""Reader analog frontend: signal generator, power amplifier, matching.

Models the reader's drive chain from Sec. 5.1: a Rigol-class signal
generator feeding a Ciprian-class high-voltage amplifier through an L-C
matching network into the transmitting PZT.  The behaviours that matter
to the experiments are the voltage ceiling (250 V), the matching
network's power-transfer efficiency, and baseband waveform synthesis
for the PIE/FSK downlink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import DesignError
from .pzt import PztDisc


@dataclass(frozen=True)
class MatchingNetwork:
    """L-section impedance match between the amplifier and the PZT.

    ``efficiency(f)`` is the fraction of amplifier power delivered to the
    PZT; it is maximal at the tuned frequency and degrades quadratically
    with fractional detuning (narrowband L-match behaviour).
    """

    tuned_frequency: float = 230e3
    peak_efficiency: float = 0.85
    fractional_bandwidth: float = 0.35

    def __post_init__(self) -> None:
        if self.tuned_frequency <= 0.0:
            raise DesignError("tuned frequency must be positive")
        if not 0.0 < self.peak_efficiency <= 1.0:
            raise DesignError("peak efficiency must be in (0, 1]")
        if self.fractional_bandwidth <= 0.0:
            raise DesignError("fractional bandwidth must be positive")

    def efficiency(self, frequency: float) -> float:
        """Power-transfer efficiency at ``frequency``."""
        if frequency <= 0.0:
            raise DesignError("frequency must be positive")
        detune = (frequency - self.tuned_frequency) / (
            self.tuned_frequency * self.fractional_bandwidth
        )
        return self.peak_efficiency / (1.0 + detune * detune)


@dataclass(frozen=True)
class PowerAmplifier:
    """High-voltage amplifier with a hard output ceiling."""

    max_output_voltage: float = 250.0
    gain_db: float = 50.0

    def __post_init__(self) -> None:
        if self.max_output_voltage <= 0.0:
            raise DesignError("max output voltage must be positive")

    def amplify(self, waveform: np.ndarray, target_peak: float) -> np.ndarray:
        """Scale ``waveform`` to ``target_peak`` volts, clipping at the rail."""
        if target_peak <= 0.0:
            raise DesignError("target peak must be positive")
        if target_peak > self.max_output_voltage:
            raise DesignError(
                f"requested {target_peak} V exceeds the amplifier ceiling "
                f"{self.max_output_voltage} V"
            )
        waveform = np.asarray(waveform, dtype=float)
        peak = float(np.max(np.abs(waveform)))
        if peak == 0.0:
            return waveform.copy()
        scaled = waveform * (target_peak / peak)
        return np.clip(scaled, -self.max_output_voltage, self.max_output_voltage)


@dataclass
class TransmitChain:
    """Generator -> amplifier -> matching network -> PZT disc."""

    disc: PztDisc
    amplifier: PowerAmplifier = None
    matching: MatchingNetwork = None

    def __post_init__(self) -> None:
        if self.amplifier is None:
            self.amplifier = PowerAmplifier(max_output_voltage=self.disc.max_voltage)
        if self.matching is None:
            self.matching = MatchingNetwork(
                tuned_frequency=self.disc.resonant_frequency
            )

    def effective_drive_voltage(self, requested: float, frequency: float) -> float:
        """Drive voltage actually reaching the disc at ``frequency``.

        Power efficiency maps to an amplitude factor of sqrt(efficiency).
        """
        if requested <= 0.0:
            raise DesignError("requested voltage must be positive")
        capped = min(requested, self.amplifier.max_output_voltage)
        return capped * math.sqrt(self.matching.efficiency(frequency))

    def transmit(
        self,
        baseband: np.ndarray,
        carrier_frequency: np.ndarray,
        sample_rate: float,
        requested_voltage: float,
    ) -> np.ndarray:
        """Synthesize the emitted waveform for a baseband/carrier plan."""
        carrier_frequency = np.asarray(carrier_frequency, dtype=float)
        dominant = float(np.median(carrier_frequency))
        drive = self.effective_drive_voltage(requested_voltage, dominant)
        return self.disc.transmit(baseband, carrier_frequency, sample_rate, drive)
