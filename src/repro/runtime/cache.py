"""Content-addressed result cache for experiment runs.

A cache entry is keyed by the SHA-256 of the canonical JSON of
``{module source digest, parameters, seed, library versions}``, so a
re-run with identical inputs is a file read, while *any* change to the
experiment's source, its parameters, its seed, or the numeric stack
(python/numpy/scipy/repro versions) misses and recomputes.

Entries are plain JSON files named ``<key>.json`` inside the cache
directory.  Corrupted or truncated entries are treated as misses and
deleted -- a damaged cache can cost a recompute but never a crash and
never a stale result.  Each discard increments the
``cache.corrupt_discarded`` counter and emits a ``cache.corrupt_entry``
warning event (mirrored to the ``repro.obs`` logger), so a poisoned
cache shows up as telemetry instead of an invisible slow-down.
"""

from __future__ import annotations

import hashlib
import json
import platform
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from ..obs import obs_counter, obs_event
from .serialize import canonical_json, write_json_atomic

#: Schema tag stamped into every cache entry (bumping it invalidates
#: all existing entries, exactly like a source change would).
CACHE_ENTRY_SCHEMA = "repro/cache-entry/v1"


def library_versions() -> Dict[str, str]:
    """The version pins folded into every cache key."""
    import numpy
    import scipy

    import repro

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "repro": repro.__version__,
    }


def cache_key(
    source: str,
    params: Mapping[str, Any],
    seed: int,
    versions: Optional[Mapping[str, str]] = None,
) -> str:
    """SHA-256 key for one (source, params, seed, versions) combination."""
    if versions is None:
        versions = library_versions()
    source_digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    material = canonical_json(
        {
            "schema": CACHE_ENTRY_SCHEMA,
            "source_sha256": source_digest,
            "params": params,
            "seed": seed,
            "versions": dict(versions),
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem cache mapping keys to serialized experiment payloads."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        """Entry location for ``key`` (exists only after a store)."""
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload, or None on miss *or* corrupted entry.

        A corrupt entry (unreadable JSON, wrong schema tag, missing
        result) is deleted so the slot heals itself on the next store.
        """
        path = self.path_for(key)
        try:
            with path.open() as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            obs_counter("cache.misses").inc()
            return None
        except (OSError, ValueError) as exc:
            self._discard_corrupt(key, path, f"unreadable JSON: {exc}")
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_ENTRY_SCHEMA
            or "result" not in entry
        ):
            self._discard_corrupt(
                key, path, "wrong schema tag or missing result"
            )
            return None
        obs_counter("cache.hits").inc()
        return entry

    def store(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Persist ``payload`` (must contain 'result') under ``key``.

        Safe against a concurrent writer on the same key: both writers
        go through an atomic same-directory rename, so the entry is
        always one writer's complete file (last writer wins -- both
        computed the same deterministic result, so which one lands is
        irrelevant).  If the race still surfaces as an ``OSError`` (some
        filesystems refuse cross-writer renames) and the other writer's
        entry is in place, that entry is accepted instead of erroring,
        counted as ``cache.write_race``.
        """
        entry = {"schema": CACHE_ENTRY_SCHEMA, "key": key, **payload}
        obs_counter("cache.stores").inc()
        path = self.path_for(key)
        try:
            return write_json_atomic(path, entry)
        except OSError as exc:
            if not path.exists():
                raise  # not a race -- the directory itself is unwritable
            obs_counter("cache.write_race").inc()
            obs_event(
                "warning", "cache.write_race",
                key=key, path=str(path), error=str(exc),
            )
            return path

    def _discard_corrupt(self, key: str, path: Path, reason: str) -> None:
        """Delete a poisoned entry, leaving a visible telemetry trail."""
        self._discard(path)
        obs_counter("cache.corrupt_discarded").inc()
        obs_counter("cache.misses").inc()
        obs_event(
            "warning", "cache.corrupt_entry",
            key=key, path=str(path), reason=reason,
        )

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
