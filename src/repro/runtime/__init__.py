"""Experiment runtime: registry, parallel runner, cache, manifests.

The subsystem that turns the 18 per-figure experiment modules into a
managed sweep::

    from repro.runtime import run_experiments

    report = run_experiments(jobs=4, out_dir="results")
    print(report.run_dir / "manifest.json")

or, from a shell::

    python -m repro.cli experiments run --all --jobs 4 --out results

Layers (see DESIGN.md "Experiment runtime"):

* :mod:`~repro.runtime.registry` -- auto-discovers every
  ``experiments.*.run(...)`` with its defaults and declared seed;
* :mod:`~repro.runtime.runner` -- ``ProcessPoolExecutor`` sweep with
  crash isolation, per-experiment timeouts and ordered collection;
* :mod:`~repro.runtime.cache` -- content-addressed result cache keyed
  on (module source, parameters, seed, library versions);
* :mod:`~repro.runtime.manifest` -- run-manifest schema + validator;
* :mod:`~repro.runtime.serialize` -- canonical dataclass-to-JSON;
* :mod:`~repro.runtime.goldens` -- scalar snapshots for the
  golden-regression test layer.
"""

from .cache import CACHE_ENTRY_SCHEMA, ResultCache, cache_key, library_versions
from .goldens import compare_snapshots, flatten_scalars, golden_snapshot
from .manifest import (
    MANIFEST_SCHEMA,
    RESULT_SCHEMA,
    SUPPORTED_MANIFEST_SCHEMAS,
    git_revision,
    load_manifest,
    validate_manifest,
)
from .registry import (
    ExperimentSpec,
    experiment_names,
    experiment_registry,
    get_spec,
)
from .runner import (
    DEFAULT_TIMEOUT_S,
    ExperimentOutcome,
    METRICS_FILENAME,
    RunReport,
    TRACE_FILENAME,
    run_experiments,
)
from .serialize import canonical_json, read_json, to_jsonable, write_json_atomic

__all__ = [
    "CACHE_ENTRY_SCHEMA",
    "DEFAULT_TIMEOUT_S",
    "ExperimentOutcome",
    "ExperimentSpec",
    "MANIFEST_SCHEMA",
    "METRICS_FILENAME",
    "RESULT_SCHEMA",
    "ResultCache",
    "RunReport",
    "SUPPORTED_MANIFEST_SCHEMAS",
    "TRACE_FILENAME",
    "cache_key",
    "canonical_json",
    "compare_snapshots",
    "experiment_names",
    "experiment_registry",
    "flatten_scalars",
    "get_spec",
    "git_revision",
    "golden_snapshot",
    "library_versions",
    "load_manifest",
    "read_json",
    "run_experiments",
    "to_jsonable",
    "validate_manifest",
    "write_json_atomic",
]
