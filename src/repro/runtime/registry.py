"""Auto-discovered registry of every paper experiment.

Walks ``repro.experiments.__all__`` and records, per module, the
``run(...)`` entrypoint, its default parameters (from the signature),
the declared RNG seed, and a one-line title (the module docstring's
first line).  The registry is what the parallel runner, the CLI, the
result cache and the golden-regression tests all key off, so experiment
modules stay plain "``run()`` returning a dataclass" with zero runtime
imports of their own.

Registry names are the short figure/table ids the paper uses: module
``fig15_ber_vs_snr`` registers as ``fig15``; non-figure modules
(``tables``, ``appendix_sensors``, ``downlink_reliability``) register
under their full module name.
"""

from __future__ import annotations

import inspect
import re
import types
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import RegistryError

#: Per-experiment parameter overrides giving a fast-but-still-seeded
#: run for CI, golden tests and ``--quick`` sweeps.  Only the two
#: Monte-Carlo-heavy experiments need trimming; everything else runs in
#: milliseconds at its paper defaults.
QUICK_PARAMS: Dict[str, Dict[str, Any]] = {
    "campaign_pilot": {
        "epochs": 6,
        "nodes": 4,
        "hours_per_epoch": 48,
        "storm_period_epochs": 3,
        "storm_duration_epochs": 1,
    },
    "fig15": {"total_bits": 4_000},
    "fig17": {"measure_bits": 1_000},
    "downlink_reliability": {"packets_per_point": 12},
    "fault_sweep": {"intensities": [0.0, 1.0, 2.0], "nodes": 5, "max_rounds": 8},
    "fig18": {"trials": 80},
    "fig24": {"n_bits": 32},
}

_FIG_PREFIX = re.compile(r"^(fig\d+)_")


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: where it lives and how to run it.

    Attributes:
        name: Short registry id (``fig15``, ``tables``, ...).
        module_name: Dotted import path of the experiment module.
        title: First line of the module docstring.
        default_params: ``run``'s keyword defaults, in signature order.
        seed: The declared default seed (every experiment has one).
        quick_params: Overrides for a fast seeded run (may be empty).
    """

    name: str
    module_name: str
    title: str
    default_params: Mapping[str, Any]
    seed: int
    quick_params: Mapping[str, Any] = field(default_factory=dict)

    def module(self) -> types.ModuleType:
        """Import (or fetch the cached) experiment module."""
        import importlib

        return importlib.import_module(self.module_name)

    def source(self) -> str:
        """The module's source text (the cache-key ingredient)."""
        return inspect.getsource(self.module())

    def params(self, overrides: Optional[Mapping[str, Any]] = None,
               quick: bool = False) -> Dict[str, Any]:
        """Effective parameters: defaults, then quick, then overrides."""
        merged = dict(self.default_params)
        if quick:
            merged.update(self.quick_params)
        if overrides:
            unknown = sorted(set(overrides) - set(merged))
            if unknown:
                raise RegistryError(
                    f"{self.name}: unknown parameter(s) {unknown}; "
                    f"run() accepts {sorted(merged)}"
                )
            merged.update(overrides)
        return merged

    def execute(self, overrides: Optional[Mapping[str, Any]] = None,
                quick: bool = False) -> Any:
        """Run the experiment with the resolved parameters."""
        return self.module().run(**self.params(overrides, quick=quick))


def registry_name(module_short_name: str) -> str:
    """Map a module name to its registry id (``fig15_...`` -> ``fig15``)."""
    match = _FIG_PREFIX.match(module_short_name)
    return match.group(1) if match else module_short_name


def _spec_for(module_short_name: str) -> ExperimentSpec:
    import importlib

    module_name = f"repro.experiments.{module_short_name}"
    module = importlib.import_module(module_name)
    run = getattr(module, "run", None)
    if not callable(run):
        raise RegistryError(f"{module_name} has no callable run()")
    defaults: Dict[str, Any] = {}
    for param in inspect.signature(run).parameters.values():
        if param.default is inspect.Parameter.empty:
            raise RegistryError(
                f"{module_name}.run parameter {param.name!r} has no default"
            )
        defaults[param.name] = param.default
    if "seed" not in defaults or not isinstance(defaults["seed"], int):
        raise RegistryError(
            f"{module_name}.run must declare an integer 'seed' default"
        )
    title = (module.__doc__ or module_short_name).strip().splitlines()[0]
    name = registry_name(module_short_name)
    return ExperimentSpec(
        name=name,
        module_name=module_name,
        title=title,
        default_params=defaults,
        seed=defaults["seed"],
        quick_params=dict(QUICK_PARAMS.get(name, {})),
    )


@lru_cache(maxsize=1)
def _registry() -> Tuple[Tuple[str, ExperimentSpec], ...]:
    from .. import experiments

    specs = []
    for short_name in experiments.__all__:
        spec = _spec_for(short_name)
        specs.append((spec.name, spec))
    names = [name for name, _ in specs]
    if len(set(names)) != len(names):
        raise RegistryError(f"duplicate registry names in {names}")
    return tuple(specs)


def experiment_registry() -> Dict[str, ExperimentSpec]:
    """All registered experiments, in ``experiments.__all__`` order."""
    return dict(_registry())


def experiment_names() -> List[str]:
    """Registry ids in canonical (definition) order."""
    return [name for name, _ in _registry()]


def get_spec(name: str) -> ExperimentSpec:
    """Look up one experiment; raises RegistryError for unknown names."""
    for known, spec in _registry():
        if known == name:
            return spec
    raise RegistryError(
        f"unknown experiment {name!r}; registered: {experiment_names()}"
    )
