"""Dataclass-to-JSON serialization for experiment results.

Every ``experiments.*.run(...)`` returns a (frozen) dataclass tree mixing
plain scalars, dicts, tuples and numpy arrays.  This module flattens that
tree into pure-JSON values so results can be written to disk, diffed,
cached content-addressed, and re-read without importing the library.

Two invariants matter for the determinism test-layer:

* **canonical form** -- ``canonical_json`` sorts keys and uses fixed
  separators, so the same result object always produces the same bytes;
* **lossless floats** -- non-finite floats (which JSON cannot express)
  are encoded as ``{"__nonfinite__": "inf" | "-inf" | "nan"}`` markers
  instead of being silently dropped or emitted as invalid JSON.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import math
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from ..errors import SerializationError
from ..faults.io import io_fsync, io_read_text, io_replace, io_write, retry_io

#: Marker key used to round-trip non-finite floats through JSON.
NONFINITE_KEY = "__nonfinite__"

#: Marker key carrying the originating dataclass name, so serialized
#: results stay self-describing without a pickle-style type registry.
TYPE_KEY = "__type__"


def _encode_float(value: float) -> Union[float, Dict[str, str]]:
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return {NONFINITE_KEY: "nan"}
    return {NONFINITE_KEY: "inf" if value > 0 else "-inf"}


def to_jsonable(obj: Any) -> Any:
    """Convert a result object into JSON-encodable python values.

    Handles dataclasses (tagged with :data:`TYPE_KEY`), dicts, lists,
    tuples, numpy arrays/scalars and plain scalars.  Raises
    :class:`~repro.errors.SerializationError` for anything else, so a
    new result field that cannot be persisted fails loudly.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return _encode_float(obj)
    if isinstance(obj, np.generic):
        return to_jsonable(obj.item())
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind == "f" and bool(np.isfinite(obj).all()):
            return obj.tolist()
        return [to_jsonable(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded: Dict[str, Any] = {TYPE_KEY: type(obj).__name__}
        for field in dataclasses.fields(obj):
            encoded[field.name] = to_jsonable(getattr(obj, field.name))
        return encoded
    if isinstance(obj, dict):
        out: Dict[str, Any] = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                key = str(key)
            out[key] = to_jsonable(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    raise SerializationError(
        f"cannot serialize {type(obj).__name__!r} "
        f"(value {obj!r}); add a handler in runtime.serialize"
    )


def canonical_json(obj: Any) -> str:
    """The canonical (sorted-key, fixed-separator) JSON text for ``obj``.

    Bit-identical for equal inputs -- the backbone of the determinism
    tests and of content-addressed cache keys.
    """
    return json.dumps(
        to_jsonable(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def write_json_atomic(
    path: Union[str, Path], payload: Any, fsync: bool = True
) -> Path:
    """Write ``payload`` as indented JSON via a same-directory temp file.

    The fsync-then-rename keeps readers (and the result cache) from
    ever observing a half-written file, and -- because the data hits
    the platters before the rename -- a power cut leaves either the old
    file or the complete new one, never a truncated hybrid.

    When ``fsync=True`` the parent directory is fsynced after the
    rename as well: the rename itself is a directory mutation, and
    without the directory fsync a power cut can durably keep the data
    blocks yet lose the name pointing at them.

    ``fsync=False`` keeps the rename atomicity (readers still never see
    a partial file) but lets the page cache decide when bytes reach the
    platters -- a power cut may then roll the file back to its previous
    content, and the directory entry is likewise left to the cache.
    Only loss-tolerant writers (the ``_obs`` telemetry pipeline, fleet
    heartbeats) opt into this.

    Transient write/fsync errors (EIO) are retried with bounded
    backoff; each attempt starts from a fresh temp file, so a torn
    first attempt can never leak into the final rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(to_jsonable(payload), indent=2, sort_keys=True, allow_nan=False)

    def attempt() -> None:
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                io_write(tmp, text + "\n")
                tmp.flush()
                if fsync:
                    io_fsync(tmp.fileno(), tmp_name)
            io_replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        if fsync:
            _fsync_dir(path.parent)

    retry_io(attempt, f"write_json_atomic:{path.name}")
    return path


def _fsync_dir(directory: Path) -> None:
    """Make a directory mutation (a rename) durable."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        io_fsync(fd, directory)
    finally:
        os.close(fd)


def write_json_atomic_verified(path: Union[str, Path], payload: Any) -> Path:
    """:func:`write_json_atomic`, then read the file back and compare.

    Used for terminal result files, where a silently dropped rename
    would leave a stale (or absent) result that nothing downstream
    could distinguish from a real one.  A missing or mismatching
    read-back is converted to ``EIO`` so the outer retry rewrites the
    file; if the budget runs out the error propagates loudly.
    """
    path = Path(path)
    expected = json.dumps(
        to_jsonable(payload), indent=2, sort_keys=True, allow_nan=False
    )

    def attempt() -> None:
        write_json_atomic(path, payload, fsync=True)
        try:
            found = io_read_text(path)
        except OSError as exc:
            raise OSError(
                errno.EIO, f"result read-back failed: {exc}", str(path)
            )
        if found != expected + "\n":
            raise OSError(
                errno.EIO, "result read-back mismatch", str(path)
            )

    retry_io(attempt, f"write_json_verified:{path.name}")
    return path


def read_json(path: Union[str, Path]) -> Any:
    """Load a JSON file written by :func:`write_json_atomic`."""
    return json.loads(io_read_text(path))
