"""Golden-snapshot extraction for the regression test layer.

A golden is a flat ``{path: scalar}`` dict distilled from one
experiment's result: every scalar leaf of the serialized result tree,
with long numeric arrays summarized (length / first / last / mean) so
goldens stay reviewable, plus a handful of named headline metrics
(``extra.*``) computed through the result objects' own methods --
Fig. 15's ``floor_snr``, Fig. 17's throughput advantage, and so on.

``tests/test_experiment_goldens.py`` compares freshly-computed
snapshots against the checked-in ``tests/goldens/*.json``;
``scripts/regen_goldens.py`` rewrites them after an intentional change.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Union

from .serialize import NONFINITE_KEY, TYPE_KEY, to_jsonable

Scalar = Union[bool, int, float, str, None]

#: Numeric lists longer than this are summarized instead of inlined.
SUMMARIZE_OVER = 16


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _decode_nonfinite(value: Dict[str, Any]) -> float:
    tag = value[NONFINITE_KEY]
    return {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}[tag]


def flatten_scalars(jsonable: Any, prefix: str = "") -> Dict[str, Scalar]:
    """Flatten a serialized result into dotted-path scalar entries."""
    out: Dict[str, Scalar] = {}

    def visit(node: Any, path: str) -> None:
        if isinstance(node, dict):
            if set(node) == {NONFINITE_KEY}:
                out[path] = repr(_decode_nonfinite(node))
                return
            for key in sorted(node):
                if key == TYPE_KEY:
                    continue
                visit(node[key], f"{path}.{key}" if path else key)
            return
        if isinstance(node, list):
            numeric = all(_is_number(v) for v in node)
            if numeric and len(node) > SUMMARIZE_OVER:
                out[f"{path}.len"] = len(node)
                out[f"{path}.first"] = node[0]
                out[f"{path}.last"] = node[-1]
                out[f"{path}.mean"] = math.fsum(node) / len(node)
                return
            for index, item in enumerate(node):
                visit(item, f"{path}[{index}]")
            return
        out[path] = node

    visit(jsonable, prefix)
    return out


def _fig15_extras(result: Any) -> Dict[str, Scalar]:
    return {
        "floor_snr_eco_1e4_db": result.floor_snr("ecocapsule", 1e-4),
        "floor_snr_pab_1e4_db": result.floor_snr("pab", 1e-4),
    }


def _fig17_extras(result: Any) -> Dict[str, Scalar]:
    return {
        "uhpc_advantage_bps": result.advantage_over_nc("UHPC"),
        "uhpfrc_advantage_bps": result.advantage_over_nc("UHPFRC"),
        "nc_throughput_bps": result.rows["NC"].measured_throughput,
    }


def _fig18_extras(result: Any) -> Dict[str, Scalar]:
    return {f"median_{pos}_db": result.median(pos)
            for pos in result.snr_samples_db}


def _fig20_extras(result: Any) -> Dict[str, Scalar]:
    low, high = result.gain_range
    return {"gain_low": low, "gain_high": high}


def _campaign_extras(result: Any) -> Dict[str, Scalar]:
    from ..campaign import result_hash

    return {
        "result_sha256": result_hash(result),
        "storm_detected_in_both": result.storm_detected_in_both,
        "sensors_mutually_verified": result.sensors_mutually_verified,
        "health_at_or_above_b": result.health_at_or_above_b,
        "degraded_epochs": result.degraded_epochs,
        "mean_coverage": result.mean_coverage,
    }


def _fig21_extras(result: Any) -> Dict[str, Scalar]:
    return {
        "storm_detected_in_both": result.storm_detected_in_both,
        "sensors_mutually_verified": result.sensors_mutually_verified,
        "health_at_or_above_b": result.health_at_or_above_b,
    }


def _fig22_extras(result: Any) -> Dict[str, Scalar]:
    return {"modulation_depth": result.modulation_depth}


def _fig24_extras(result: Any) -> Dict[str, Scalar]:
    return {"guard_band_depth_db": result.guard_band_depth_db()}


def _downlink_extras(result: Any) -> Dict[str, Scalar]:
    return {"working_snr_db": result.working_snr()}


def _fig07_extras(result: Any) -> Dict[str, Scalar]:
    return {"suppression_ratio": result.suppression_ratio}


#: Named headline metrics per experiment (all optional).
EXTRA_METRICS: Dict[str, Callable[[Any], Dict[str, Scalar]]] = {
    "campaign_pilot": _campaign_extras,
    "fig07": _fig07_extras,
    "fig15": _fig15_extras,
    "fig17": _fig17_extras,
    "fig18": _fig18_extras,
    "fig20": _fig20_extras,
    "fig21": _fig21_extras,
    "fig22": _fig22_extras,
    "fig24": _fig24_extras,
    "downlink_reliability": _downlink_extras,
}


def golden_snapshot(name: str, result: Any) -> Dict[str, Scalar]:
    """The full golden dict for one experiment's in-memory result."""
    snapshot = flatten_scalars(to_jsonable(result))
    extras = EXTRA_METRICS.get(name)
    if extras is not None:
        for key, value in extras(result).items():
            encoded = to_jsonable(value)
            if isinstance(encoded, dict):  # non-finite float marker
                encoded = repr(_decode_nonfinite(encoded))
            snapshot[f"extra.{key}"] = encoded
    return snapshot


def compare_snapshots(
    expected: Dict[str, Scalar],
    actual: Dict[str, Scalar],
    rel_tol: float = 1e-7,
    abs_tol: float = 1e-12,
) -> Dict[str, str]:
    """Differences keyed by path (empty == within tolerance)."""
    problems: Dict[str, str] = {}
    for path in sorted(set(expected) | set(actual)):
        if path not in actual:
            problems[path] = "missing from the fresh run"
            continue
        if path not in expected:
            problems[path] = "not present in the golden"
            continue
        want, got = expected[path], actual[path]
        if _is_number(want) and _is_number(got):
            if not math.isclose(want, got, rel_tol=rel_tol, abs_tol=abs_tol):
                problems[path] = f"expected {want!r}, got {got!r}"
        elif want != got:
            problems[path] = f"expected {want!r}, got {got!r}"
    return problems
