"""Run-manifest schema and validation.

Every sweep writes ``<out>/<run_id>/manifest.json`` describing exactly
what ran: seeds, parameters, git revision, library versions, per-
experiment timings, cache hits and failure records.  The manifest is
the audit artifact -- two runs are comparable iff their manifests say
they executed the same inputs.

``validate_manifest`` is a dependency-free structural validator (no
jsonschema in the container); it returns a list of human-readable
problems, empty when the manifest conforms.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

from ..errors import ManifestError
from ..obs import validate_profile
from .serialize import read_json

#: Manifest schema identifier; bump on breaking layout changes.
#: v2 adds the optional per-experiment ``profile`` section (wall/CPU/
#: peak-RSS collected under ``--obs``) and the optional top-level
#: ``obs`` block pointing at the run's metrics/trace exports.
MANIFEST_SCHEMA = "repro/run-manifest/v2"

#: Schemas ``validate_manifest`` accepts: v1 manifests (pre-obs, no
#: profile section) remain readable forever.
SUPPORTED_MANIFEST_SCHEMAS = ("repro/run-manifest/v1", MANIFEST_SCHEMA)

#: Per-experiment result file schema identifier.
RESULT_SCHEMA = "repro/experiment-result/v1"

#: Allowed per-experiment terminal states.  ``interrupted`` marks
#: experiments a SIGINT/SIGTERM stopped before they produced a record;
#: the manifest then also carries a top-level ``interrupted: true``.
EXPERIMENT_STATUSES = ("ok", "failed", "timeout", "interrupted")

#: Allowed cache dispositions.
CACHE_STATES = ("hit", "miss", "bypass")

_TOP_LEVEL_FIELDS: Dict[str, type] = {
    "schema": str,
    "run_id": str,
    "created_utc": str,
    "git_sha": str,
    "jobs": int,
    "forced": bool,
    "versions": dict,
    "experiments": list,
    "totals": dict,
}

_EXPERIMENT_FIELDS: Dict[str, type] = {
    "name": str,
    "module": str,
    "params": dict,
    "seed": int,
    "status": str,
    "cache": str,
    "cache_key": str,
    "elapsed_s": (int, float),  # type: ignore[dict-item]
}

_TOTALS_FIELDS: Dict[str, type] = {
    "experiments": int,
    "ok": int,
    "failed": int,
    "cache_hits": int,
    "elapsed_s": (int, float),  # type: ignore[dict-item]
}


def git_revision(default: str = "unknown") -> str:
    """The repository HEAD SHA, or ``default`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


def validate_manifest(manifest: Mapping[str, Any]) -> List[str]:
    """Structural problems in ``manifest`` (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(manifest, Mapping):
        return ["manifest is not a JSON object"]
    for name, kind in _TOP_LEVEL_FIELDS.items():
        if name not in manifest:
            problems.append(f"missing top-level field {name!r}")
        elif not isinstance(manifest[name], kind):
            problems.append(
                f"field {name!r} should be {getattr(kind, '__name__', kind)}"
            )
    if manifest.get("schema") not in (None,) + SUPPORTED_MANIFEST_SCHEMAS:
        problems.append(
            f"schema is {manifest['schema']!r}, expected one of "
            f"{SUPPORTED_MANIFEST_SCHEMAS!r}"
        )
    obs_block = manifest.get("obs")
    if obs_block is not None and not isinstance(obs_block, Mapping):
        problems.append("field 'obs' should be an object when present")
    interrupted = manifest.get("interrupted")
    if interrupted is not None and not isinstance(interrupted, bool):
        problems.append("field 'interrupted' should be a bool when present")
    entries = manifest.get("experiments")
    if isinstance(entries, list):
        seen = set()
        for index, entry in enumerate(entries):
            if not isinstance(entry, Mapping):
                problems.append(f"experiments[{index}] is not an object")
                continue
            label = entry.get("name", f"#{index}")
            for name, kind in _EXPERIMENT_FIELDS.items():
                if name not in entry:
                    problems.append(f"{label}: missing field {name!r}")
                elif not isinstance(entry[name], kind):
                    problems.append(f"{label}: field {name!r} has wrong type")
            if entry.get("status") not in (None,) + EXPERIMENT_STATUSES:
                problems.append(f"{label}: bad status {entry['status']!r}")
            if entry.get("cache") not in (None,) + CACHE_STATES:
                problems.append(f"{label}: bad cache state {entry['cache']!r}")
            if entry.get("status") == "ok" and not entry.get("result_file"):
                problems.append(f"{label}: ok entry has no result_file")
            if entry.get("status") != "ok" and not entry.get("error"):
                problems.append(f"{label}: non-ok entry has no error record")
            profile = entry.get("profile")
            if profile is not None and not validate_profile(profile):
                problems.append(
                    f"{label}: profile section is malformed "
                    "(needs numeric wall_s and cpu_s)"
                )
            if entry.get("name") in seen:
                problems.append(f"{label}: duplicate experiment entry")
            seen.add(entry.get("name"))
        if not manifest.get("interrupted") and any(
            isinstance(e, Mapping) and e.get("status") == "interrupted"
            for e in entries
        ):
            problems.append(
                "entries marked interrupted but the manifest lacks a "
                "top-level 'interrupted: true'"
            )
    totals = manifest.get("totals")
    if isinstance(totals, Mapping):
        for name, kind in _TOTALS_FIELDS.items():
            if name not in totals:
                problems.append(f"totals: missing field {name!r}")
            elif not isinstance(totals[name], kind):
                problems.append(f"totals: field {name!r} has wrong type")
        if isinstance(entries, list) and isinstance(totals.get("experiments"), int):
            if totals["experiments"] != len(entries):
                problems.append("totals.experiments does not match entry count")
            ok = sum(1 for e in entries
                     if isinstance(e, Mapping) and e.get("status") == "ok")
            if isinstance(totals.get("ok"), int) and totals["ok"] != ok:
                problems.append("totals.ok does not match entry statuses")
            hits = sum(1 for e in entries
                       if isinstance(e, Mapping) and e.get("cache") == "hit")
            if isinstance(totals.get("cache_hits"), int) and totals["cache_hits"] != hits:
                problems.append("totals.cache_hits does not match entries")
    return problems


def load_manifest(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate ``<run_dir>/manifest.json``.

    Raises :class:`~repro.errors.ManifestError` when the file is absent,
    unreadable, or fails :func:`validate_manifest`.
    """
    path = Path(run_dir) / "manifest.json"
    try:
        manifest = read_json(path)
    except FileNotFoundError:
        raise ManifestError(f"no manifest at {path}") from None
    except (OSError, ValueError) as exc:
        raise ManifestError(f"unreadable manifest at {path}: {exc}") from None
    problems = validate_manifest(manifest)
    if problems:
        raise ManifestError(
            f"invalid manifest at {path}: " + "; ".join(problems)
        )
    return manifest
