"""Parallel experiment runner: process pool, cache, manifests.

``run_experiments`` executes any subset of the registry across a
``ProcessPoolExecutor`` with per-experiment crash isolation and
timeouts, consults the content-addressed result cache first, and writes
one JSON result file per experiment plus a ``manifest.json`` audit
record into ``<out>/<run_id>/``.

Isolation model: a python-level exception inside an experiment is
caught *inside the worker* and returned as a failure record, so it can
never take the pool down.  A hard worker death (segfault, OOM-kill)
surfaces as ``BrokenProcessPool``; the runner marks the experiment
failed, rebuilds the pool and resubmits the remaining experiments.  A
timeout marks the experiment ``timeout`` and likewise recycles the pool
so the stuck worker cannot occupy a slot for the rest of the sweep.

Results are collected in registry order regardless of completion order,
so serialized output (and therefore manifests and goldens) never depend
on scheduling.
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .cache import ResultCache, cache_key, library_versions
from .manifest import (
    MANIFEST_SCHEMA,
    RESULT_SCHEMA,
    git_revision,
    validate_manifest,
)
from .registry import ExperimentSpec, experiment_registry, get_spec
from .serialize import to_jsonable, write_json_atomic

#: Default wall-clock budget per experiment (generous: the slowest
#: paper experiment takes ~5 s at its default parameters).
DEFAULT_TIMEOUT_S = 300.0


@dataclass
class ExperimentOutcome:
    """Terminal record for one experiment in a sweep."""

    name: str
    module: str
    params: Dict[str, Any]
    seed: int
    status: str  # 'ok' | 'failed' | 'timeout'
    cache: str  # 'hit' | 'miss' | 'bypass'
    cache_key: str
    elapsed_s: float
    result: Optional[Any] = None  # jsonable result payload when ok
    result_file: Optional[str] = None
    error: Optional[str] = None


@dataclass
class RunReport:
    """Everything ``run_experiments`` produced, plus where it lives."""

    run_id: str
    run_dir: Path
    manifest: Dict[str, Any]
    outcomes: List[ExperimentOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.status == "ok" for outcome in self.outcomes)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache == "hit")


def execute_serialized(
    name: str, module_name: str, params: Mapping[str, Any]
) -> Dict[str, Any]:
    """Run one experiment and serialize it (the pool worker body).

    Resolves the experiment by importing ``module_name`` directly (not
    through the registry) so injected specs work identically.  Always
    returns a record -- exceptions are folded into ``error`` so a
    failing experiment cannot poison the pool.  Module-level so it
    pickles for ``ProcessPoolExecutor``.
    """
    import importlib

    start = time.perf_counter()
    try:
        module = importlib.import_module(module_name)
        result = module.run(**dict(params))
        return {
            "name": name,
            "elapsed_s": time.perf_counter() - start,
            "result": to_jsonable(result),
            "error": None,
        }
    except BaseException:
        return {
            "name": name,
            "elapsed_s": time.perf_counter() - start,
            "result": None,
            "error": traceback.format_exc(limit=20),
        }


def _resolve_specs(
    names: Optional[Sequence[str]],
    specs: Optional[Sequence[ExperimentSpec]],
) -> List[ExperimentSpec]:
    if specs is not None:
        return list(specs)
    if names is None:
        return list(experiment_registry().values())
    return [get_spec(name) for name in names]


def _collect_parallel(
    pending: List[ExperimentOutcome],
    jobs: int,
    timeout_s: float,
) -> None:
    """Fill in ``pending`` outcomes via a worker pool, in place.

    Rebuilds the pool after a timeout or a broken-pool event so one bad
    experiment cannot stall or kill the rest of the sweep.
    """
    remaining = list(pending)
    while remaining:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
        futures = {
            outcome.name: executor.submit(
                execute_serialized, outcome.name, outcome.module, outcome.params
            )
            for outcome in remaining
        }
        recycle = False
        still_waiting: List[ExperimentOutcome] = []
        for outcome in remaining:
            if recycle:
                still_waiting.append(outcome)
                continue
            try:
                record = futures[outcome.name].result(timeout=timeout_s)
            except concurrent.futures.TimeoutError:
                outcome.status = "timeout"
                outcome.elapsed_s = timeout_s
                outcome.error = f"timed out after {timeout_s:.1f} s"
                recycle = True
                continue
            except concurrent.futures.process.BrokenProcessPool:
                outcome.status = "failed"
                outcome.error = "worker process died (broken pool)"
                recycle = True
                continue
            outcome.elapsed_s = record["elapsed_s"]
            if record["error"] is None:
                outcome.status = "ok"
                outcome.result = record["result"]
            else:
                outcome.status = "failed"
                outcome.error = record["error"]
        if recycle:
            # A stuck or dead worker: reap the whole pool so the retry
            # pool starts from clean slots (terminate is best-effort --
            # _processes is internal but stable across 3.9..3.13).
            for process in getattr(executor, "_processes", {}).values():
                try:
                    process.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
        executor.shutdown(wait=not recycle, cancel_futures=True)
        remaining = still_waiting


def run_experiments(
    names: Optional[Sequence[str]] = None,
    jobs: int = 2,
    out_dir: Union[str, Path] = "results",
    force: bool = False,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    cache_dir: Optional[Union[str, Path]] = None,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    quick: bool = False,
    specs: Optional[Sequence[ExperimentSpec]] = None,
    run_id: Optional[str] = None,
) -> RunReport:
    """Run a sweep and persist results + manifest under ``out_dir``.

    Args:
        names: Registry ids to run; None means every experiment.
        jobs: Worker processes; 0 runs inline in this process (handy
            for debugging and coverage, identical results either way).
        out_dir: Root results directory; the sweep writes into
            ``out_dir/<run_id>/``.
        force: Bypass the cache (entries are still refreshed).
        timeout_s: Per-experiment wall-clock budget.
        cache_dir: Cache location; defaults to ``out_dir/.cache`` so a
            results tree carries its own cache.
        overrides: Per-experiment parameter overrides, keyed by name.
        quick: Apply each spec's ``quick_params`` before overrides.
        specs: Explicit spec objects (tests inject synthetic ones).
        run_id: Fixed id for the output directory; defaults to a
            UTC timestamp.

    Returns:
        A :class:`RunReport`; ``report.manifest`` is already validated.
    """
    chosen = _resolve_specs(names, specs)
    out_dir = Path(out_dir)
    if run_id is None:
        run_id = datetime.now(timezone.utc).strftime("run-%Y%m%d-%H%M%S-%f")
    run_dir = out_dir / run_id
    cache = ResultCache(Path(cache_dir) if cache_dir else out_dir / ".cache")
    versions = library_versions()
    overrides = overrides or {}
    sweep_start = time.perf_counter()

    outcomes: List[ExperimentOutcome] = []
    pending: List[ExperimentOutcome] = []
    for spec in chosen:
        params = spec.params(overrides.get(spec.name), quick=quick)
        key = cache_key(spec.source(), params, params["seed"], versions)
        outcome = ExperimentOutcome(
            name=spec.name,
            module=spec.module_name,
            params=dict(params),
            seed=params["seed"],
            status="failed",
            cache="bypass" if force else "miss",
            cache_key=key,
            elapsed_s=0.0,
        )
        outcomes.append(outcome)
        entry = None if force else cache.load(key)
        if entry is not None:
            outcome.cache = "hit"
            outcome.status = "ok"
            outcome.result = entry["result"]
            outcome.elapsed_s = 0.0
        else:
            pending.append(outcome)

    if pending:
        if jobs <= 0:
            for outcome in pending:
                record = execute_serialized(
                    outcome.name, outcome.module, outcome.params
                )
                outcome.elapsed_s = record["elapsed_s"]
                if record["error"] is None:
                    outcome.status = "ok"
                    outcome.result = record["result"]
                else:
                    outcome.status = "failed"
                    outcome.error = record["error"]
        else:
            _collect_parallel(pending, jobs, timeout_s)

    run_dir.mkdir(parents=True, exist_ok=True)
    for outcome in outcomes:
        if outcome.status != "ok":
            continue
        if outcome.cache != "hit":
            cache.store(
                outcome.cache_key,
                {
                    "experiment": outcome.name,
                    "params": outcome.params,
                    "elapsed_s": outcome.elapsed_s,
                    "result": outcome.result,
                },
            )
        outcome.result_file = f"{outcome.name}.json"
        write_json_atomic(
            run_dir / outcome.result_file,
            {
                "schema": RESULT_SCHEMA,
                "experiment": outcome.name,
                "module": outcome.module,
                "params": outcome.params,
                "seed": outcome.seed,
                "cache_key": outcome.cache_key,
                "cache": outcome.cache,
                "result": outcome.result,
            },
        )

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "git_sha": git_revision(),
        "jobs": jobs,
        "forced": bool(force),
        "versions": versions,
        "experiments": [
            {
                "name": o.name,
                "module": o.module,
                "params": to_jsonable(o.params),
                "seed": o.seed,
                "status": o.status,
                "cache": o.cache,
                "cache_key": o.cache_key,
                "elapsed_s": o.elapsed_s,
                "result_file": o.result_file,
                "error": o.error,
            }
            for o in outcomes
        ],
        "totals": {
            "experiments": len(outcomes),
            "ok": sum(1 for o in outcomes if o.status == "ok"),
            "failed": sum(1 for o in outcomes if o.status != "ok"),
            "cache_hits": sum(1 for o in outcomes if o.cache == "hit"),
            "elapsed_s": time.perf_counter() - sweep_start,
        },
    }
    problems = validate_manifest(manifest)
    if problems:  # pragma: no cover - internal consistency guard
        raise AssertionError(f"runner produced an invalid manifest: {problems}")
    write_json_atomic(run_dir / "manifest.json", manifest)
    return RunReport(
        run_id=run_id, run_dir=run_dir, manifest=manifest, outcomes=outcomes
    )
