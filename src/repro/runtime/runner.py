"""Parallel experiment runner: process pool, cache, manifests.

``run_experiments`` executes any subset of the registry across a
``ProcessPoolExecutor`` with per-experiment crash isolation and
timeouts, consults the content-addressed result cache first, and writes
one JSON result file per experiment plus a ``manifest.json`` audit
record into ``<out>/<run_id>/``.

Isolation model: a python-level exception inside an experiment is
caught *inside the worker* and returned as a failure record, so it can
never take the pool down.  A hard worker death (segfault, OOM-kill)
surfaces as ``BrokenProcessPool``; the runner marks the experiment
failed, rebuilds the pool and resubmits the remaining experiments.  A
timeout marks the experiment ``timeout`` and likewise recycles the pool
so the stuck worker cannot occupy a slot for the rest of the sweep.

Results are collected in registry order regardless of completion order,
so serialized output (and therefore manifests and goldens) never depend
on scheduling.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..obs import (
    ProfileProbe,
    activate_obs,
    obs_counter,
    obs_enabled,
    obs_event,
    obs_events,
    obs_histogram,
    obs_registry,
    obs_span,
    obs_tracer,
    restore_obs,
)
from .cache import ResultCache, cache_key, library_versions
from .manifest import (
    MANIFEST_SCHEMA,
    RESULT_SCHEMA,
    git_revision,
    validate_manifest,
)
from .registry import ExperimentSpec, experiment_registry, get_spec
from .serialize import to_jsonable, write_json_atomic

#: Default wall-clock budget per experiment (generous: the slowest
#: paper experiment takes ~5 s at its default parameters).
DEFAULT_TIMEOUT_S = 300.0

#: Filenames of the observability artifacts inside a run directory.
METRICS_FILENAME = "metrics.json"
TRACE_FILENAME = "trace.json"


@dataclass
class ExperimentOutcome:
    """Terminal record for one experiment in a sweep."""

    name: str
    module: str
    params: Dict[str, Any]
    seed: int
    status: str  # 'ok' | 'failed' | 'timeout' | 'interrupted'
    cache: str  # 'hit' | 'miss' | 'bypass'
    cache_key: str
    elapsed_s: float
    result: Optional[Any] = None  # jsonable result payload when ok
    result_file: Optional[str] = None
    error: Optional[str] = None
    profile: Optional[Dict[str, Any]] = None  # wall/CPU/RSS under --obs
    attempts: int = 1  # execution attempts incl. the first


@dataclass
class RunReport:
    """Everything ``run_experiments`` produced, plus where it lives."""

    run_id: str
    run_dir: Path
    manifest: Dict[str, Any]
    outcomes: List[ExperimentOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.status == "ok" for outcome in self.outcomes)

    @property
    def interrupted(self) -> bool:
        """True when a SIGINT/SIGTERM cut the sweep short."""
        return bool(self.manifest.get("interrupted"))

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache == "hit")

    @property
    def fresh_ok(self) -> int:
        """Experiments that succeeded by actually running (not cached)."""
        return sum(
            1 for o in self.outcomes if o.status == "ok" and o.cache != "hit"
        )

    @property
    def failures(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def timeouts(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "timeout")


def execute_serialized(
    name: str, module_name: str, params: Mapping[str, Any], obs: bool = False
) -> Dict[str, Any]:
    """Run one experiment and serialize it (the pool worker body).

    Resolves the experiment by importing ``module_name`` directly (not
    through the registry) so injected specs work identically.  Always
    returns a record -- exceptions are folded into ``error`` so a
    failing experiment cannot poison the pool.  Module-level so it
    pickles for ``ProcessPoolExecutor``.

    With ``obs=True`` the worker installs its own observability scope
    around the experiment and ships everything home in the record: a
    ``profile`` (wall/CPU/peak-RSS/python-alloc), the worker's metrics
    snapshot, and its trace spans -- the runner merges them into the
    parent scope.  A fresh scope (not the inherited one) keeps fork-
    started workers from double-counting into the parent registry.
    """
    import importlib

    scope = activate_obs(process_label=f"worker-{os.getpid()}") if obs else None
    probe = ProfileProbe() if obs else None
    start = time.perf_counter()
    try:
        try:
            module = importlib.import_module(module_name)
            with obs_span(f"experiment.{name}", module=module_name):
                if probe is not None:
                    with probe:
                        result = module.run(**dict(params))
                else:
                    result = module.run(**dict(params))
            record = {
                "name": name,
                "elapsed_s": time.perf_counter() - start,
                "result": to_jsonable(result),
                "error": None,
            }
        except (KeyboardInterrupt, SystemExit):
            # An interrupt is the *sweep* being stopped, not this
            # experiment failing -- let the runner handle it.
            raise
        except BaseException:
            record = {
                "name": name,
                "elapsed_s": time.perf_counter() - start,
                "result": None,
                "error": traceback.format_exc(limit=20),
            }
        if scope is not None:
            record["profile"] = (
                probe.as_dict() if probe.wall_s is not None else None
            )
            record["metrics"] = scope.export()
            record["spans"] = scope.tracer.records()
            record["process_label"] = scope.tracer.process_label
        return record
    finally:
        if scope is not None:
            restore_obs(scope)


def _absorb_record(outcome: ExperimentOutcome, record: Mapping[str, Any]) -> None:
    """Fold one worker record into its outcome and the live obs scope."""
    outcome.elapsed_s = record["elapsed_s"]
    if record["error"] is None:
        outcome.status = "ok"
        outcome.result = record["result"]
    else:
        outcome.status = "failed"
        outcome.error = record["error"]
    outcome.profile = record.get("profile")
    metrics = record.get("metrics")
    if metrics is not None:
        registry = obs_registry()
        if registry is not None:
            registry.merge_snapshot(metrics)
        obs_events().absorb(metrics.get("events", {}))
    spans = record.get("spans")
    if spans:
        obs_tracer().add_records(
            spans, process_label=record.get("process_label")
        )


def _resolve_specs(
    names: Optional[Sequence[str]],
    specs: Optional[Sequence[ExperimentSpec]],
) -> List[ExperimentSpec]:
    if specs is not None:
        return list(specs)
    if names is None:
        return list(experiment_registry().values())
    return [get_spec(name) for name in names]


def _collect_parallel(
    pending: List[ExperimentOutcome],
    jobs: int,
    timeout_s: float,
    obs: bool = False,
) -> None:
    """Fill in ``pending`` outcomes via a worker pool, in place.

    Rebuilds the pool after a timeout or a broken-pool event so one bad
    experiment cannot stall or kill the rest of the sweep.
    """
    remaining = list(pending)
    while remaining:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
        futures = {
            outcome.name: executor.submit(
                execute_serialized,
                outcome.name,
                outcome.module,
                outcome.params,
                obs,
            )
            for outcome in remaining
        }
        recycle = False
        still_waiting: List[ExperimentOutcome] = []
        try:
            for outcome in remaining:
                if recycle:
                    still_waiting.append(outcome)
                    continue
                try:
                    record = futures[outcome.name].result(timeout=timeout_s)
                except concurrent.futures.TimeoutError:
                    outcome.status = "timeout"
                    outcome.elapsed_s = timeout_s
                    outcome.error = f"timed out after {timeout_s:.1f} s"
                    recycle = True
                    continue
                except concurrent.futures.process.BrokenProcessPool:
                    outcome.status = "failed"
                    outcome.error = "worker process died (broken pool)"
                    recycle = True
                    continue
                _absorb_record(outcome, record)
        except KeyboardInterrupt:
            # Graceful shutdown: salvage every record that already
            # finished, then reap the pool so no orphan worker keeps
            # burning CPU after the operator asked us to stop.
            for outcome in remaining:
                if outcome.status == "ok" or outcome.error is not None:
                    continue  # already collected (or already diagnosed)
                future = futures[outcome.name]
                if future.done() and not future.cancelled():
                    with contextlib.suppress(Exception):
                        _absorb_record(outcome, future.result(timeout=0))
            for process in getattr(executor, "_processes", {}).values():
                with contextlib.suppress(OSError):
                    process.terminate()
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        if recycle:
            # A stuck or dead worker: reap the whole pool so the retry
            # pool starts from clean slots (terminate is best-effort --
            # _processes is internal but stable across 3.9..3.13).
            for process in getattr(executor, "_processes", {}).values():
                try:
                    process.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
        executor.shutdown(wait=not recycle, cancel_futures=True)
        remaining = still_waiting


def run_experiments(
    names: Optional[Sequence[str]] = None,
    jobs: int = 2,
    out_dir: Union[str, Path] = "results",
    force: bool = False,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    cache_dir: Optional[Union[str, Path]] = None,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    quick: bool = False,
    specs: Optional[Sequence[ExperimentSpec]] = None,
    run_id: Optional[str] = None,
    obs: bool = False,
    retries: int = 0,
    retry_backoff_s: float = 0.25,
) -> RunReport:
    """Run a sweep and persist results + manifest under ``out_dir``.

    Args:
        names: Registry ids to run; None means every experiment.
        jobs: Worker processes; 0 runs inline in this process (handy
            for debugging and coverage, identical results either way).
        out_dir: Root results directory; the sweep writes into
            ``out_dir/<run_id>/``.
        force: Bypass the cache (entries are still refreshed).
        timeout_s: Per-experiment wall-clock budget.
        cache_dir: Cache location; defaults to ``out_dir/.cache`` so a
            results tree carries its own cache.
        overrides: Per-experiment parameter overrides, keyed by name.
        quick: Apply each spec's ``quick_params`` before overrides.
        specs: Explicit spec objects (tests inject synthetic ones).
        run_id: Fixed id for the output directory; defaults to a
            UTC timestamp.
        obs: Collect observability for this run -- metrics, trace
            spans and per-experiment profiles.  The run directory gains
            ``metrics.json`` + ``trace.json`` and every manifest entry
            a ``profile`` section.  Off by default: the disabled path
            is no-op instrumentation (see :mod:`repro.obs`).
        retries: Re-execute failed/timed-out experiments up to this
            many extra times (crash-only recovery: a deterministic
            failure fails every attempt, but a transient one -- OOM
            kill, machine hiccup -- gets another chance).
        retry_backoff_s: First inter-attempt backoff; doubles per
            retry round, capped at 30 s.

    Returns:
        A :class:`RunReport`; ``report.manifest`` is already validated.
    """
    if retries < 0:
        raise ValueError(f"retries cannot be negative: {retries}")
    scope = activate_obs(process_label="runner") if obs else None
    try:
        return _run_experiments_body(
            names=names, jobs=jobs, out_dir=out_dir, force=force,
            timeout_s=timeout_s, cache_dir=cache_dir, overrides=overrides,
            quick=quick, specs=specs, run_id=run_id, scope=scope,
            retries=retries, retry_backoff_s=retry_backoff_s,
        )
    finally:
        if scope is not None:
            restore_obs(scope)


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Convert SIGTERM into ``KeyboardInterrupt`` for the sweep's scope.

    Orchestrators (and CI) stop runs with SIGTERM; without this, a
    TERM kills the process mid-manifest and the run directory is left
    with no audit record at all.  Off the main thread, handlers cannot
    be installed and the platform default stays in force.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _execute_pending(
    pending: List[ExperimentOutcome],
    jobs: int,
    timeout_s: float,
    obs: bool,
) -> None:
    """One execution pass over ``pending`` (inline or pooled)."""
    if jobs <= 0:
        for outcome in pending:
            record = execute_serialized(
                outcome.name, outcome.module, outcome.params, obs
            )
            _absorb_record(outcome, record)
    else:
        _collect_parallel(pending, jobs, timeout_s, obs=obs)


def _run_experiments_body(
    names, jobs, out_dir, force, timeout_s, cache_dir, overrides,
    quick, specs, run_id, scope, retries, retry_backoff_s,
) -> RunReport:
    obs = scope is not None
    chosen = _resolve_specs(names, specs)
    out_dir = Path(out_dir)
    if run_id is None:
        run_id = datetime.now(timezone.utc).strftime("run-%Y%m%d-%H%M%S-%f")
    run_dir = out_dir / run_id
    cache = ResultCache(Path(cache_dir) if cache_dir else out_dir / ".cache")
    versions = library_versions()
    overrides = overrides or {}
    sweep_start = time.perf_counter()

    outcomes: List[ExperimentOutcome] = []
    pending: List[ExperimentOutcome] = []
    with obs_span("runner.cache_lookup", experiments=len(chosen)):
        for spec in chosen:
            params = spec.params(overrides.get(spec.name), quick=quick)
            key = cache_key(spec.source(), params, params["seed"], versions)
            outcome = ExperimentOutcome(
                name=spec.name,
                module=spec.module_name,
                params=dict(params),
                seed=params["seed"],
                status="failed",
                cache="bypass" if force else "miss",
                cache_key=key,
                elapsed_s=0.0,
            )
            outcomes.append(outcome)
            if force:
                obs_counter("runner.cache.bypass").inc()
                pending.append(outcome)
                continue
            lookup_probe = ProfileProbe(trace_allocations=False) if obs else None
            if lookup_probe is not None:
                with lookup_probe:
                    entry = cache.load(key)
            else:
                entry = cache.load(key)
            if entry is not None:
                outcome.cache = "hit"
                outcome.status = "ok"
                outcome.result = entry["result"]
                outcome.elapsed_s = 0.0
                obs_counter("runner.cache.hits").inc()
                if lookup_probe is not None:
                    # A hit's cost is the lookup itself; record it so
                    # every manifest entry carries a profile.
                    outcome.profile = lookup_probe.as_dict()
            else:
                obs_counter("runner.cache.misses").inc()
                pending.append(outcome)

    interrupted = False
    if pending:
        try:
            with _sigterm_as_interrupt():
                with obs_span("runner.execute", pending=len(pending), jobs=jobs):
                    _execute_pending(pending, jobs, timeout_s, obs)
                # Retry pass: anything that failed or timed out gets up
                # to ``retries`` fresh attempts with doubling backoff.
                for attempt in range(1, retries + 1):
                    unlucky = [o for o in pending if o.status != "ok"]
                    if not unlucky:
                        break
                    time.sleep(min(retry_backoff_s * 2 ** (attempt - 1), 30.0))
                    obs_counter("runner.retries").inc(len(unlucky))
                    for outcome in unlucky:
                        outcome.attempts += 1
                        outcome.status = "failed"
                        outcome.error = None
                        outcome.result = None
                    with obs_span(
                        "runner.retry", attempt=attempt, experiments=len(unlucky)
                    ):
                        _execute_pending(unlucky, jobs, timeout_s, obs)
        except KeyboardInterrupt:
            # Stopped by SIGINT/SIGTERM: keep everything that finished,
            # mark the rest interrupted, and still write a valid
            # (partial) manifest -- a stopped sweep must leave an audit
            # record, not a half-written directory.
            interrupted = True
            for outcome in pending:
                if outcome.status == "ok" or outcome.error is not None:
                    continue
                outcome.status = "interrupted"
                outcome.error = (
                    "sweep interrupted (SIGINT/SIGTERM) before this "
                    "experiment completed"
                )
            obs_counter("runner.interrupted").inc()
            obs_event(
                "warning", "runner.interrupted",
                unfinished=sum(
                    1 for o in pending if o.status == "interrupted"
                ),
            )

    if obs_enabled():
        elapsed_hist = obs_histogram("runner.experiment.elapsed_s")
        for outcome in outcomes:
            obs_counter(f"runner.experiments.{outcome.status}").inc()
            if outcome.cache != "hit":
                elapsed_hist.observe(outcome.elapsed_s)

    run_dir.mkdir(parents=True, exist_ok=True)
    with obs_span("runner.persist", run_id=run_id):
        for outcome in outcomes:
            if outcome.status != "ok":
                continue
            if outcome.cache != "hit":
                cache.store(
                    outcome.cache_key,
                    {
                        "experiment": outcome.name,
                        "params": outcome.params,
                        "elapsed_s": outcome.elapsed_s,
                        "result": outcome.result,
                    },
                )
            outcome.result_file = f"{outcome.name}.json"
            write_json_atomic(
                run_dir / outcome.result_file,
                {
                    "schema": RESULT_SCHEMA,
                    "experiment": outcome.name,
                    "module": outcome.module,
                    "params": outcome.params,
                    "seed": outcome.seed,
                    "cache_key": outcome.cache_key,
                    "cache": outcome.cache,
                    "result": outcome.result,
                },
            )

    entries: List[Dict[str, Any]] = []
    for o in outcomes:
        entry = {
            "name": o.name,
            "module": o.module,
            "params": to_jsonable(o.params),
            "seed": o.seed,
            "status": o.status,
            "cache": o.cache,
            "cache_key": o.cache_key,
            "elapsed_s": o.elapsed_s,
            "result_file": o.result_file,
            "error": o.error,
        }
        if o.profile is not None:
            entry["profile"] = o.profile
        if o.attempts > 1:
            entry["attempts"] = o.attempts
        entries.append(entry)

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "git_sha": git_revision(),
        "jobs": jobs,
        "forced": bool(force),
        "versions": versions,
        "experiments": entries,
        "totals": {
            "experiments": len(outcomes),
            "ok": sum(1 for o in outcomes if o.status == "ok"),
            "failed": sum(1 for o in outcomes if o.status != "ok"),
            "cache_hits": sum(1 for o in outcomes if o.cache == "hit"),
            "elapsed_s": time.perf_counter() - sweep_start,
        },
    }
    if interrupted:
        manifest["interrupted"] = True

    if scope is not None:
        # Export the collected telemetry next to the results; the
        # manifest's obs block is the discovery pointer for
        # ``experiments stats`` / ``experiments trace``.
        metrics_payload = scope.export()
        metrics_payload["run_id"] = run_id
        write_json_atomic(run_dir / METRICS_FILENAME, metrics_payload)
        write_json_atomic(run_dir / TRACE_FILENAME, scope.tracer.to_chrome_trace())
        manifest["obs"] = {
            "metrics_file": METRICS_FILENAME,
            "trace_file": TRACE_FILENAME,
            "spans": len(scope.tracer.records()),
            "events": scope.events.count(),
            "warnings": scope.events.count("warning"),
        }

    problems = validate_manifest(manifest)
    if problems:  # pragma: no cover - internal consistency guard
        raise AssertionError(f"runner produced an invalid manifest: {problems}")
    write_json_atomic(run_dir / "manifest.json", manifest)
    return RunReport(
        run_id=run_id, run_dir=run_dir, manifest=manifest, outcomes=outcomes
    )
