"""Downlink and uplink modulators/demodulators.

Downlink (reader -> node): PIE symbols carried either by plain OOK
(drive on/off, suffers the ring tail) or by the paper's dual-frequency
FSK (high edge at the resonant frequency, low edge at an off-resonant
frequency that the concrete suppresses).  The node always *receives*
OOK: its envelope detector only sees amplitude.

Uplink (node -> reader): the node toggles its impedance switch at the
backscatter link frequency (BLF), amplitude-modulating the reflected
CBW.  FM0 data rides on the switch waveform; the reader downconverts at
``carrier +/- BLF`` to dodge the self-interference of the CBW and the
surface leakage (Sec. 3.4, Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import EncodingError
from ..units import TWO_PI
from .fm0 import encode_baseband as fm0_encode_baseband
from .pie import PieTiming, encode as pie_encode


@dataclass(frozen=True)
class DownlinkModulator:
    """PIE-over-FSK (or OOK) downlink waveform synthesis.

    Attributes:
        resonant_frequency: Carrier for high edges (Hz), e.g. 230 kHz.
        off_frequency: Carrier for low edges in FSK mode (Hz), e.g. 180 kHz.
        timing: PIE timing parameters.
        scheme: 'fsk' (the paper's anti-ring trick) or 'ook'.
        low_level: Drive level during low edges: FSK keeps full drive at
            the off frequency; OOK drops to zero.
    """

    resonant_frequency: float = 230e3
    off_frequency: float = 180e3
    timing: PieTiming = PieTiming()
    scheme: str = "fsk"

    def __post_init__(self) -> None:
        if self.scheme not in ("fsk", "ook"):
            raise EncodingError(f"unknown downlink scheme {self.scheme!r}")
        if self.resonant_frequency <= 0.0 or self.off_frequency <= 0.0:
            raise EncodingError("carrier frequencies must be positive")
        if self.scheme == "fsk" and self.off_frequency == self.resonant_frequency:
            raise EncodingError("FSK needs distinct high/low frequencies")

    def drive_plan(
        self, bits: Sequence[int], sample_rate: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(baseband envelope, per-sample carrier frequency) for ``bits``.

        In FSK mode the envelope never drops: the information is in the
        frequency track, and the concrete's response converts it to an
        amplitude pattern at the node.
        """
        if sample_rate <= 0.0:
            raise EncodingError("sample rate must be positive")
        envelopes: List[np.ndarray] = []
        carriers: List[np.ndarray] = []
        for duration, level in pie_encode(bits, self.timing):
            n = int(round(duration * sample_rate))
            if n == 0:
                raise EncodingError("sample rate too low for the PIE timing")
            if level == 1:
                envelopes.append(np.ones(n))
                carriers.append(np.full(n, self.resonant_frequency))
            elif self.scheme == "fsk":
                envelopes.append(np.ones(n))
                carriers.append(np.full(n, self.off_frequency))
            else:
                envelopes.append(np.zeros(n))
                carriers.append(np.full(n, self.resonant_frequency))
        return np.concatenate(envelopes), np.concatenate(carriers)


@dataclass(frozen=True)
class BackscatterModulator:
    """Node-side uplink: FM0 bits -> impedance-switch waveform -> reflection.

    Attributes:
        blf: Backscatter link frequency (Hz) -- the square-wave subcarrier
            the switch toggles at; sets the spectral offset from the CBW.
        bitrate: Uplink data rate (bit/s).
        reflective_gain: Reflection amplitude in the reflective state
            relative to the incident wave at the node (absorptive ~ 0).
    """

    blf: float = 10e3
    bitrate: float = 1e3
    reflective_gain: float = 0.6

    def __post_init__(self) -> None:
        if self.blf <= 0.0 or self.bitrate <= 0.0:
            raise EncodingError("BLF and bitrate must be positive")
        if self.blf < self.bitrate:
            raise EncodingError(
                f"BLF {self.blf} must be at least the bitrate {self.bitrate}"
            )
        if not 0.0 < self.reflective_gain <= 1.0:
            raise EncodingError("reflective gain must be in (0, 1]")

    def samples_per_symbol(self, sample_rate: float) -> int:
        n = int(round(sample_rate / self.bitrate))
        if n % 2 != 0:
            n += 1
        if n < 2:
            raise EncodingError("sample rate too low for the bitrate")
        return n

    def switch_waveform(
        self, bits: Sequence[int], sample_rate: float
    ) -> np.ndarray:
        """Impedance-switch state (0/1 per sample) for the FM0 payload.

        The FM0 baseband gates a BLF square subcarrier: level 1 toggles
        the switch at the BLF, level 0 holds it absorptive.  This is the
        shifted-BLF scheme of Appendix C -- the reflected energy appears
        at carrier +/- BLF instead of on top of the CBW.
        """
        n = self.samples_per_symbol(sample_rate)
        baseband = fm0_encode_baseband(bits, n)
        t = np.arange(baseband.size) / sample_rate
        subcarrier = (np.sin(TWO_PI * self.blf * t) > 0.0).astype(float)
        return baseband * subcarrier

    def reflect(
        self,
        incident: np.ndarray,
        bits: Sequence[int],
        sample_rate: float,
    ) -> np.ndarray:
        """Backscattered waveform: incident CBW gated by the switch."""
        incident = np.asarray(incident, dtype=float)
        switch = self.switch_waveform(bits, sample_rate)
        if switch.size > incident.size:
            raise EncodingError(
                f"payload needs {switch.size} samples but the incident "
                f"waveform has {incident.size}"
            )
        out = np.zeros_like(incident)
        out[: switch.size] = incident[: switch.size] * switch * self.reflective_gain
        return out

    def sideband_frequencies(self, carrier: float) -> Tuple[float, float]:
        """The two AM sidebands (Hz) the reader sees (Fig. 24)."""
        if carrier <= self.blf:
            raise EncodingError("carrier must exceed the BLF")
        return carrier - self.blf, carrier + self.blf
