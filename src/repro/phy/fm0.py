"""FM0 (bi-phase space) coding for the uplink (paper Sec. 3.4).

FM0 inverts the baseband level at every symbol boundary; a bit 0 adds an
extra mid-symbol inversion, a bit 1 has none.  The information lives in
the *presence or absence of a mid-symbol transition*, not in durations,
which makes it robust against the timing jitter of a passively clocked
backscatter node.

The decoder is a maximum-likelihood correlator over the four basis
waveforms per symbol (bit 0 / bit 1, starting level high / low),
tracking the phase state between symbols -- the same structure as the
paper's "maximum likelihood decoder ... to decode the FM0 data".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import DecodingError, EncodingError


def encode_levels(bits: Sequence[int], initial_level: int = 1) -> List[Tuple[int, int]]:
    """FM0-encode bits into (first_half_level, second_half_level) pairs.

    The encoding state (current level) flips at every symbol boundary;
    bit 0 also flips mid-symbol.

    >>> encode_levels([1, 0], initial_level=1)
    [(0, 0), (1, 0)]
    """
    if initial_level not in (0, 1):
        raise EncodingError("initial level must be 0 or 1")
    level = initial_level
    pairs: List[Tuple[int, int]] = []
    for bit in bits:
        if bit not in (0, 1):
            raise EncodingError(f"bits must be 0/1, got {bit!r}")
        level = 1 - level  # boundary inversion
        first = level
        if bit == 0:
            level = 1 - level  # mid-symbol inversion
        second = level
        pairs.append((first, second))
    return pairs


def encode_baseband(
    bits: Sequence[int],
    samples_per_symbol: int,
    initial_level: int = 1,
) -> np.ndarray:
    """Sampled FM0 baseband (levels 0/1) at ``samples_per_symbol``.

    ``samples_per_symbol`` must be even so both halves are equal length.
    """
    if samples_per_symbol < 2 or samples_per_symbol % 2 != 0:
        raise EncodingError(
            f"samples_per_symbol must be an even integer >= 2, got {samples_per_symbol}"
        )
    half = samples_per_symbol // 2
    chunks: List[np.ndarray] = []
    for first, second in encode_levels(bits, initial_level):
        chunks.append(np.full(half, float(first)))
        chunks.append(np.full(half, float(second)))
    if not chunks:
        return np.zeros(0)
    return np.concatenate(chunks)


def _symbol_bases(samples_per_symbol: int) -> np.ndarray:
    """The four +/-1 basis waveforms: [bit][starting level] -> waveform."""
    half = samples_per_symbol // 2
    bases = np.empty((2, 2, samples_per_symbol))
    for start_level, sign in ((0, -1.0), (1, 1.0)):
        # bit 1: constant level across the symbol
        bases[1][start_level] = sign * np.ones(samples_per_symbol)
        # bit 0: mid-symbol inversion
        bases[0][start_level] = np.concatenate(
            [sign * np.ones(half), -sign * np.ones(half)]
        )
    return bases


@dataclass
class Fm0Decoder:
    """Maximum-likelihood FM0 symbol decoder with phase tracking.

    Args:
        samples_per_symbol: Even number of samples per bit.
        initial_level: The encoder's starting level (known preamble
            convention); the decoder tracks the level thereafter but
            re-estimates it per symbol, so a slip self-corrects.
    """

    samples_per_symbol: int
    initial_level: int = 1

    def __post_init__(self) -> None:
        if self.samples_per_symbol < 2 or self.samples_per_symbol % 2 != 0:
            raise DecodingError(
                "samples_per_symbol must be an even integer >= 2, got "
                f"{self.samples_per_symbol}"
            )
        if self.initial_level not in (0, 1):
            raise DecodingError("initial level must be 0 or 1")
        self._bases = _symbol_bases(self.samples_per_symbol)

    def decode(self, waveform: np.ndarray) -> List[int]:
        """Decode a +/- baseband waveform into bits.

        The waveform should be zero-mean (use ``2*level - 1`` scaling or
        the DSP chain's DC removal).  Length must be a whole number of
        symbols.
        """
        waveform = np.asarray(waveform, dtype=float)
        n = self.samples_per_symbol
        if waveform.size == 0 or waveform.size % n != 0:
            raise DecodingError(
                f"waveform length {waveform.size} is not a multiple of the "
                f"symbol length {n}"
            )
        # Correlate every symbol against the four bases in one matrix
        # product; only the per-symbol decision loop stays in Python.
        symbols = waveform.reshape(-1, n)
        basis_matrix = np.stack(
            [
                self._bases[0][0],
                self._bases[0][1],
                self._bases[1][0],
                self._bases[1][1],
            ]
        )
        all_scores = symbols @ basis_matrix.T  # shape: (n_symbols, 4)

        bits: List[int] = []
        level = self.initial_level
        for row in all_scores:
            expected_start = 1 - level  # boundary inversion precedes the symbol
            scores = np.array([[row[0], row[1]], [row[2], row[3]]])
            # Prefer the phase-consistent hypotheses; fall back to the raw
            # maximum when the consistent pair is clearly worse (phase slip).
            consistent = scores[:, expected_start]
            best_bit = int(np.argmax(consistent))
            best_score = consistent[best_bit]
            alt_bit, alt_start = np.unravel_index(np.argmax(scores), scores.shape)
            if scores[alt_bit][alt_start] > 2.0 * abs(best_score):
                best_bit = int(alt_bit)
                expected_start = int(alt_start)
            bits.append(best_bit)
            # Update the tracked level from the decided hypothesis.
            ending = expected_start if best_bit == 1 else 1 - expected_start
            level = ending
        return bits


def bipolar(levels: np.ndarray) -> np.ndarray:
    """Map 0/1 levels to -1/+1 for correlation decoding."""
    return 2.0 * np.asarray(levels, dtype=float) - 1.0
