"""Link-quality metrics: BER, throughput, SNR bookkeeping."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ReproError


class MetricsError(ReproError):
    """Metric computation received inconsistent inputs."""


def bit_errors(sent: Sequence[int], received: Sequence[int]) -> int:
    """Number of differing bits; lengths must match.

    Accepts lists or numpy arrays (any mix) and always returns a
    built-in ``int`` -- batched callers used to leak ``np.int64`` into
    result dataclasses and JSON manifests.
    """
    sent_arr = np.asarray(sent)
    received_arr = np.asarray(received)
    if sent_arr.shape != received_arr.shape:
        raise MetricsError(
            f"length mismatch: sent {len(sent)} bits, received {len(received)}"
        )
    return int(np.count_nonzero(sent_arr != received_arr))


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of bits received incorrectly (always a built-in float)."""
    total = int(np.asarray(sent).size)
    if total == 0:
        raise MetricsError("cannot compute BER over zero bits")
    return bit_errors(sent, received) / total


def throughput(correct_bits: int, duration: float) -> float:
    """Correctly decoded bits per second (the paper's Fig. 17 definition)."""
    if duration <= 0.0:
        raise MetricsError(f"duration must be positive, got {duration}")
    if correct_bits < 0:
        raise MetricsError("correct bit count cannot be negative")
    return correct_bits / duration


def fm0_ber_theoretical(snr_db: float) -> float:
    """Theoretical BER of coherent FM0/bi-phase over AWGN.

    FM0 is an orthogonal bi-phase code; per-bit error probability is
    ``Q(sqrt(Eb/N0))``.  Used as the reference curve for Fig. 15.
    """
    ebn0 = 10.0 ** (snr_db / 10.0)
    return q_function(math.sqrt(max(ebn0, 0.0)))


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


@dataclass
class LinkStatistics:
    """Accumulates per-trial decode results into summary metrics."""

    bits_sent: int = 0
    bits_correct: int = 0
    trials: int = 0
    elapsed: float = 0.0

    def record(self, sent: Sequence[int], received: Sequence[int], duration: float) -> None:
        """Fold one trial into the running totals."""
        errors = bit_errors(sent, received)
        self.bits_sent += len(sent)
        self.bits_correct += len(sent) - errors
        self.trials += 1
        if duration < 0.0:
            raise MetricsError("duration cannot be negative")
        self.elapsed += duration

    @property
    def ber(self) -> float:
        if self.bits_sent == 0:
            raise MetricsError("no bits recorded")
        return 1.0 - self.bits_correct / self.bits_sent

    @property
    def throughput(self) -> float:
        return throughput(self.bits_correct, self.elapsed)
