"""Batched FM0 PHY kernels + the scalar/batch engine dispatch.

The scalar functions in :mod:`repro.phy.fm0` are the *reference
implementation*: one frame at a time, per-symbol Python loops, trivially
auditable against the paper.  Every BER sweep, fault sweep and campaign
epoch funnels through them, which made them the cost ceiling on the
uplink experiments.  This module re-implements the hot path as batched
numpy kernels operating on ``(trials, symbols, samples)`` tensors:

* :func:`encode_levels_batch` / :func:`encode_baseband_batch` -- FM0
  encoding of a whole ``(trials, bits)`` matrix in closed form (the
  level of any half-symbol is a parity, not a running state);
* :func:`matched_filter_bank` -- the shared, precomputed correlator
  bank (one per ``samples_per_symbol``, cached);
* :class:`Fm0BatchDecoder` -- maximum-likelihood decoding of a whole
  trial batch with one matched-filter matmul and a vectorized
  phase-tracking state machine (the per-symbol loop runs over the
  symbol axis only; every step operates on all trials at once).

Equivalence contract (enforced by ``tests/test_phy_batch_equivalence``):
the float64 batch kernels produce **bit-identical** levels, waveforms
and decoded bits to the scalar reference -- the matched-filter scores
are per-element dot products over the same samples in the same order,
so even the floats match exactly.  The optional float32 fast path
(``dtype=np.float32``) trades that guarantee for throughput: scores
carry ~1e-7 relative error, so bit decisions may differ on razor-thin
score ties (documented in ``docs/PERFORMANCE.md``).

Engine dispatch
---------------

Consumers that offer both implementations (``UplinkBasebandSimulator``,
``WallSession``) resolve their engine through :func:`resolve_engine`:
an explicit argument wins, then a :func:`use_engine` context override,
then the ``REPRO_PHY_ENGINE`` environment variable, then the default
(``"batch"``).  ``"scalar"`` forces the reference path everywhere --
CI's cross-check stage runs the whole suite that way.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional, Sequence

import numpy as np

from ..errors import DecodingError, EncodingError, ReproError

#: Engine names understood by :func:`resolve_engine`.  ``batch-float32``
#: is the tolerance-checked fast path: float64 everywhere except the
#: matched-filter scores.
ENGINES = ("batch", "scalar", "batch-float32")

#: Environment variable consulted by :func:`default_engine`.
ENGINE_ENV_VAR = "REPRO_PHY_ENGINE"

#: Module default when neither an override nor the env var is set.
DEFAULT_ENGINE = "batch"

_engine_override: Optional[str] = None


class EngineError(ReproError):
    """An unknown scalar/batch engine name was requested."""


def _validate_engine(name: str) -> str:
    if name not in ENGINES:
        raise EngineError(
            f"unknown PHY engine {name!r}; expected one of {ENGINES}"
        )
    return name


def default_engine() -> str:
    """The ambient engine: ``use_engine`` override > env var > default."""
    if _engine_override is not None:
        return _engine_override
    env = os.environ.get(ENGINE_ENV_VAR)
    if env:
        return _validate_engine(env)
    return DEFAULT_ENGINE


def resolve_engine(explicit: Optional[str] = None) -> str:
    """Resolve an optional per-call engine request against the ambient one."""
    if explicit is not None:
        return _validate_engine(explicit)
    return default_engine()


@contextmanager
def use_engine(name: str) -> Iterator[str]:
    """Temporarily force the ambient engine (tests, CI cross-checks).

    >>> with use_engine("scalar"):
    ...     default_engine()
    'scalar'
    """
    global _engine_override
    _validate_engine(name)
    previous = _engine_override
    _engine_override = name
    try:
        yield name
    finally:
        _engine_override = previous


# ----------------------------------------------------------------------
# Batched FM0 encoding
# ----------------------------------------------------------------------

def _as_bit_matrix(bits) -> "tuple[np.ndarray, np.ndarray]":
    """Coerce to a (trials, symbols) int matrix; returns (matrix, zeros mask)."""
    matrix = np.asarray(bits)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2:
        raise EncodingError(
            f"bits must be a 1-D frame or a (trials, bits) matrix, got "
            f"shape {matrix.shape}"
        )
    matrix = matrix.astype(np.int64, copy=False)
    zeros = matrix == 0
    if matrix.size and not (zeros | (matrix == 1)).all():
        bad = matrix[~(zeros | (matrix == 1))].flat[0]
        raise EncodingError(f"bits must be 0/1, got {bad!r}")
    return matrix, zeros


def encode_levels_batch(bits, initial_level: int = 1) -> np.ndarray:
    """FM0 levels for a ``(trials, symbols)`` bit matrix, in closed form.

    Returns a ``(trials, symbols, 2)`` int array of (first-half,
    second-half) levels, bit-identical to running the scalar
    :func:`repro.phy.fm0.encode_levels` on every row.

    The scalar encoder carries a running level that flips at every
    symbol boundary and again mid-symbol for bit 0.  The level of
    symbol ``i``'s first half is therefore just a parity::

        first[i] = initial ^ parity(i + 1 + zeros_among(bits[:i]))
        second[i] = first[i] ^ (bits[i] == 0)

    which vectorizes over both axes with one cumulative sum.
    """
    if initial_level not in (0, 1):
        raise EncodingError("initial level must be 0 or 1")
    matrix, zeros = _as_bit_matrix(bits)
    trials, symbols = matrix.shape
    # zeros among bits[:, :i]  (exclusive prefix count per row)
    zeros_before = np.cumsum(zeros, axis=1) - zeros
    boundary_flips = np.arange(1, symbols + 1, dtype=np.int64)[None, :]
    first = int(initial_level) ^ ((boundary_flips + zeros_before) & 1)
    levels = np.empty((trials, symbols, 2), dtype=np.int64)
    levels[:, :, 0] = first
    levels[:, :, 1] = first ^ zeros
    return levels


def encode_baseband_batch(
    bits,
    samples_per_symbol: int,
    initial_level: int = 1,
) -> np.ndarray:
    """Sampled FM0 baseband for a whole trial batch.

    Returns a ``(trials, symbols * samples_per_symbol)`` float64 array
    whose rows are bit-identical to the scalar
    :func:`repro.phy.fm0.encode_baseband` of each frame.
    """
    if samples_per_symbol < 2 or samples_per_symbol % 2 != 0:
        raise EncodingError(
            f"samples_per_symbol must be an even integer >= 2, got "
            f"{samples_per_symbol}"
        )
    levels = encode_levels_batch(bits, initial_level)
    trials, symbols = levels.shape[:2]
    half = samples_per_symbol // 2
    # (trials, symbols, 2) -> (trials, symbols * sps): each half-level
    # repeated `half` times (one broadcast copy), exactly the scalar
    # np.full + concatenate values.
    waveform = np.empty((trials, symbols * 2, half))
    waveform[:] = levels.reshape(trials, symbols * 2, 1)
    return waveform.reshape(trials, symbols * samples_per_symbol)


# ----------------------------------------------------------------------
# The shared matched-filter bank
# ----------------------------------------------------------------------

@lru_cache(maxsize=32)
def matched_filter_bank(samples_per_symbol: int) -> np.ndarray:
    """The four +/-1 FM0 correlator rows, precomputed once per symbol size.

    Row order is ``[bit0/start0, bit0/start1, bit1/start0, bit1/start1]``
    -- the exact stacking the scalar decoder builds per call, so batch
    and scalar matched-filter scores are the same dot products.  The
    array is cached and frozen (read-only).
    """
    if samples_per_symbol < 2 or samples_per_symbol % 2 != 0:
        raise DecodingError(
            "samples_per_symbol must be an even integer >= 2, got "
            f"{samples_per_symbol}"
        )
    half = samples_per_symbol // 2
    bank = np.empty((4, samples_per_symbol))
    for start_level, sign in ((0, -1.0), (1, 1.0)):
        # bit 0: mid-symbol inversion; bit 1: constant level.
        bank[start_level] = np.concatenate(
            [sign * np.ones(half), -sign * np.ones(half)]
        )
        bank[2 + start_level] = sign * np.ones(samples_per_symbol)
    bank.setflags(write=False)
    return bank


# ----------------------------------------------------------------------
# Batched maximum-likelihood decoding
# ----------------------------------------------------------------------

@dataclass
class Fm0BatchDecoder:
    """Vectorized ML FM0 decoder for a ``(trials, samples)`` waveform batch.

    Mirrors :class:`repro.phy.fm0.Fm0Decoder` decision-for-decision:
    the same correlator bank, the same phase-consistent preference, the
    same ``2x``-score phase-slip fallback, the same tie-breaking
    (``argmax`` keeps the first maximum).  The per-symbol loop runs over
    the symbol axis only; each step is a handful of O(trials) numpy ops.

    Args:
        samples_per_symbol: Even number of samples per bit.
        initial_level: The encoder's starting level.
        dtype: ``np.float64`` (default; bit-identical to the scalar
            reference) or ``np.float32`` (fast path; scores carry ~1e-7
            relative error so decisions may differ on exact ties).
    """

    samples_per_symbol: int
    initial_level: int = 1
    dtype: type = np.float64

    def __post_init__(self) -> None:
        if self.samples_per_symbol < 2 or self.samples_per_symbol % 2 != 0:
            raise DecodingError(
                "samples_per_symbol must be an even integer >= 2, got "
                f"{self.samples_per_symbol}"
            )
        if self.initial_level not in (0, 1):
            raise DecodingError("initial level must be 0 or 1")
        if self.dtype not in (np.float64, np.float32):
            raise DecodingError("dtype must be np.float64 or np.float32")
        self._bank = matched_filter_bank(self.samples_per_symbol).astype(
            self.dtype, copy=False
        )

    def decode(self, waveforms: np.ndarray) -> np.ndarray:
        """Decode a ``(trials, symbols * sps)`` batch into (trials, symbols) bits.

        A 1-D waveform is treated as a single trial.  Zero-trial and
        zero-symbol batches decode to correspondingly empty bit arrays.
        """
        waveforms = np.asarray(waveforms, dtype=self.dtype)
        if waveforms.ndim == 1:
            waveforms = waveforms[None, :]
        if waveforms.ndim != 2:
            raise DecodingError(
                f"expected a (trials, samples) batch, got shape "
                f"{waveforms.shape}"
            )
        trials, length = waveforms.shape
        n = self.samples_per_symbol
        if length % n != 0:
            raise DecodingError(
                f"waveform length {length} is not a multiple of the "
                f"symbol length {n}"
            )
        symbols = length // n
        if trials == 0 or symbols == 0:
            return np.zeros((trials, symbols), dtype=np.int64)

        # One matmul scores every (trial, symbol) against all four
        # bases: (trials*symbols, sps) @ (sps, 4).  Each output element
        # is the same dot product the scalar decoder computes.
        scores = (
            waveforms.reshape(trials * symbols, n) @ self._bank.T
        ).reshape(trials, symbols, 4)

        bits = np.empty((trials, symbols), dtype=np.int64)
        level = np.full(trials, self.initial_level, dtype=np.int64)
        rows = np.arange(trials)
        for s in range(symbols):
            step = scores[:, s, :]  # (trials, 4)
            expected_start = 1 - level
            # Phase-consistent hypotheses: column index = bit*2 + start.
            consistent0 = step[rows, expected_start]
            consistent1 = step[rows, 2 + expected_start]
            best_bit = (consistent1 > consistent0).astype(np.int64)
            best_score = np.where(best_bit == 1, consistent1, consistent0)
            # Phase-slip fallback: the raw maximum, when clearly better.
            alt_flat = np.argmax(step, axis=1)
            slip = step[rows, alt_flat] > 2.0 * np.abs(best_score)
            bit = np.where(slip, alt_flat // 2, best_bit)
            start = np.where(slip, alt_flat % 2, expected_start)
            bits[:, s] = bit
            level = np.where(bit == 1, start, 1 - start)
        return bits


def decode_frames(
    waveforms: np.ndarray,
    samples_per_symbol: int,
    initial_level: int = 1,
    dtype: type = np.float64,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`Fm0BatchDecoder`."""
    return Fm0BatchDecoder(
        samples_per_symbol=samples_per_symbol,
        initial_level=initial_level,
        dtype=dtype,
    ).decode(waveforms)


def count_bit_errors(decoded: np.ndarray, sent: np.ndarray) -> int:
    """Element-wise bit-error count between two equal-shape bit arrays."""
    decoded = np.asarray(decoded)
    sent = np.asarray(sent)
    if decoded.shape != sent.shape:
        raise DecodingError(
            f"shape mismatch: decoded {decoded.shape}, sent {sent.shape}"
        )
    return int(np.count_nonzero(decoded != sent))


__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "EngineError",
    "Fm0BatchDecoder",
    "count_bit_errors",
    "decode_frames",
    "default_engine",
    "encode_baseband_batch",
    "encode_levels_batch",
    "matched_filter_bank",
    "resolve_engine",
    "use_engine",
]
