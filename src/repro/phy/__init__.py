"""PHY layer: PIE downlink coding, FM0 uplink coding, modems, DSP, metrics.

The scalar codecs here are the reference implementations; their batched
counterparts (and the scalar/batch engine dispatch) live in
:mod:`repro.phy.batch`.
"""

from . import dsp
from .batch import (
    Fm0BatchDecoder,
    default_engine,
    encode_baseband_batch,
    encode_levels_batch,
    matched_filter_bank,
    resolve_engine,
    use_engine,
)
from .fdma import FdmaPlan, FdmaReceiver, composite_waveform
from .fm0 import Fm0Decoder, bipolar
from .fm0 import encode_baseband as fm0_encode_baseband
from .fm0 import encode_levels as fm0_encode_levels
from .metrics import (
    LinkStatistics,
    MetricsError,
    bit_error_rate,
    bit_errors,
    fm0_ber_theoretical,
    q_function,
    throughput,
)
from .modem import BackscatterModulator, DownlinkModulator
from .pie import (
    PieTiming,
    decode_edge_durations,
    decode_intervals,
    duty_cycle,
)
from .pie import encode as pie_encode
from .pie import encode_baseband as pie_encode_baseband

__all__ = [
    "dsp",
    "Fm0BatchDecoder",
    "default_engine",
    "encode_baseband_batch",
    "encode_levels_batch",
    "matched_filter_bank",
    "resolve_engine",
    "use_engine",
    "FdmaPlan",
    "FdmaReceiver",
    "composite_waveform",
    "Fm0Decoder",
    "bipolar",
    "fm0_encode_baseband",
    "fm0_encode_levels",
    "LinkStatistics",
    "MetricsError",
    "bit_error_rate",
    "bit_errors",
    "fm0_ber_theoretical",
    "q_function",
    "throughput",
    "BackscatterModulator",
    "DownlinkModulator",
    "PieTiming",
    "decode_edge_durations",
    "decode_intervals",
    "duty_cycle",
    "pie_encode",
    "pie_encode_baseband",
]
