"""Receiver DSP: carrier estimation, downconversion, filtering, envelopes.

Re-implements the reader's MATLAB post-processing pipeline (Sec. 5.1):
the decoder "first takes a carrier frequency estimation by analyzing the
power carrier and then performs a digital downconversion to extract the
baseband backscatter signal", before ML FM0 decoding.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import signal as sp_signal

from ..errors import DecodingError


def estimate_carrier(waveform: np.ndarray, sample_rate: float) -> float:
    """Estimate the dominant carrier frequency (Hz) via an FFT peak.

    Uses parabolic interpolation around the peak bin for sub-bin accuracy.
    """
    waveform = np.asarray(waveform, dtype=float)
    if waveform.size < 16:
        raise DecodingError("waveform too short for carrier estimation")
    if sample_rate <= 0.0:
        raise DecodingError("sample rate must be positive")
    # Remove the mean first: a strong DC term leaks through the window
    # into the lowest bins and would shadow the carrier peak.
    waveform = waveform - np.mean(waveform)
    spectrum = np.abs(np.fft.rfft(waveform * np.hanning(waveform.size)))
    spectrum[0] = 0.0  # ignore residual DC
    peak = int(np.argmax(spectrum))
    if peak == 0 or peak >= spectrum.size - 1:
        return peak * sample_rate / waveform.size
    # Parabolic interpolation on log magnitude.
    with np.errstate(divide="ignore"):
        a, b, c = np.log(spectrum[peak - 1 : peak + 2] + 1e-30)
    denom = a - 2.0 * b + c
    offset = 0.0 if denom == 0.0 else 0.5 * (a - c) / denom
    return (peak + offset) * sample_rate / waveform.size


def downconvert(
    waveform: np.ndarray,
    sample_rate: float,
    carrier: float,
    bandwidth: float,
) -> np.ndarray:
    """Complex baseband: mix by ``carrier`` and low-pass to ``bandwidth``.

    Returns the analytic baseband signal whose magnitude is the envelope
    of the band around the carrier and whose phase carries the
    backscatter modulation.
    """
    waveform = np.asarray(waveform, dtype=float)
    if not 0.0 < carrier < sample_rate / 2.0:
        raise DecodingError(
            f"carrier {carrier} outside (0, Nyquist={sample_rate / 2.0})"
        )
    if not 0.0 < bandwidth < sample_rate / 2.0:
        raise DecodingError("bandwidth must be in (0, Nyquist)")
    t = np.arange(waveform.size) / sample_rate
    mixed = waveform * np.exp(-2j * math.pi * carrier * t)
    return _lowpass_complex(mixed, sample_rate, bandwidth)


def _lowpass_complex(
    x: np.ndarray, sample_rate: float, cutoff: float, order: int = 5
) -> np.ndarray:
    nyquist = sample_rate / 2.0
    normalised = min(cutoff / nyquist, 0.99)
    b, a = sp_signal.butter(order, normalised)
    return sp_signal.filtfilt(b, a, x.real) + 1j * sp_signal.filtfilt(b, a, x.imag)


def lowpass(x: np.ndarray, sample_rate: float, cutoff: float, order: int = 5) -> np.ndarray:
    """Zero-phase Butterworth low-pass of a real signal."""
    if not 0.0 < cutoff < sample_rate / 2.0:
        raise DecodingError("cutoff must be in (0, Nyquist)")
    nyquist = sample_rate / 2.0
    b, a = sp_signal.butter(order, cutoff / nyquist)
    return sp_signal.filtfilt(b, a, np.asarray(x, dtype=float))


def bandpass(
    x: np.ndarray,
    sample_rate: float,
    low: float,
    high: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth band-pass of a real signal."""
    nyquist = sample_rate / 2.0
    if not 0.0 < low < high < nyquist:
        raise DecodingError(f"band ({low}, {high}) invalid for Nyquist {nyquist}")
    b, a = sp_signal.butter(order, [low / nyquist, high / nyquist], btype="band")
    return sp_signal.filtfilt(b, a, np.asarray(x, dtype=float))


def envelope(waveform: np.ndarray) -> np.ndarray:
    """Amplitude envelope via the Hilbert transform."""
    waveform = np.asarray(waveform, dtype=float)
    if waveform.size == 0:
        raise DecodingError("cannot compute the envelope of an empty waveform")
    return np.abs(sp_signal.hilbert(waveform))


def remove_dc(x: np.ndarray) -> np.ndarray:
    """Subtract the mean (the backscatter DC term after downconversion)."""
    x = np.asarray(x)
    return x - np.mean(x)


def power_spectrum(
    waveform: np.ndarray, sample_rate: float
) -> Tuple[np.ndarray, np.ndarray]:
    """(frequencies, power) one-sided spectrum for plots like Fig. 24."""
    waveform = np.asarray(waveform, dtype=float)
    if waveform.size < 2:
        raise DecodingError("waveform too short for a spectrum")
    freqs, psd = sp_signal.periodogram(waveform, fs=sample_rate, window="hann")
    return freqs, psd


def measure_snr_db(
    waveform: np.ndarray,
    sample_rate: float,
    signal_band: Tuple[float, float],
    noise_band: Tuple[float, float],
) -> float:
    """In-band SNR (dB): signal-band power over noise-band power density.

    Both bands are integrated from the periodogram; the noise band's
    density is scaled to the signal bandwidth before the ratio, so the
    measurement matches the classic spectrum-analyzer procedure.
    """
    freqs, psd = power_spectrum(waveform, sample_rate)

    def band_power(band: Tuple[float, float]) -> float:
        low, high = band
        mask = (freqs >= low) & (freqs <= high)
        if not np.any(mask):
            raise DecodingError(f"band {band} contains no spectral bins")
        # np.trapz was removed in NumPy 2; integrate manually.
        return float(np.sum(0.5 * (psd[mask][1:] + psd[mask][:-1])
                            * np.diff(freqs[mask])))

    sig = band_power(signal_band)
    sig_width = signal_band[1] - signal_band[0]
    noise_width = noise_band[1] - noise_band[0]
    noise = band_power(noise_band) * (sig_width / noise_width)
    if noise <= 0.0:
        raise DecodingError("noise band has no power; SNR undefined")
    if sig <= 0.0:
        return -math.inf
    return 10.0 * math.log10(sig / noise)
