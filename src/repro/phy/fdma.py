"""Frequency-division uplink: simultaneous nodes on distinct BLFs.

Sec. 3.4 assigns each EcoCapsule a shifted backscatter link frequency
so its sidebands dodge the CBW; once every node owns a distinct BLF
with guard bands between them, the reader can decode *several nodes at
once* by downconverting at each node's sideband independently -- a
frequency-division overlay on the slotted TDMA (the reader's SetBlf
plan in :class:`~repro.protocol.TdmaInventory` already spaces the BLFs
for exactly this).

This module provides the composite-waveform synthesis (many switch
waveforms sharing one CBW) and the bank-of-downconverters receiver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import DecodingError, EncodingError
from .fm0 import Fm0Decoder
from .modem import BackscatterModulator
from . import dsp


@dataclass(frozen=True)
class FdmaPlan:
    """BLF assignment for a set of simultaneously replying nodes.

    Attributes:
        carrier: The shared CBW frequency (Hz).
        bitrate: Shared uplink bitrate (bit/s).
        blf_by_node: node id -> BLF (Hz).  Adjacent BLFs need a guard of
            at least ~3x the bitrate for the downconverters to separate
            them.
    """

    carrier: float
    bitrate: float
    blf_by_node: Dict[int, float]
    #: Carrier-only symbols preceding the payload: lets the receiver's
    #: zero-phase filters settle before the first data symbol (the role
    #: Gen2's preamble plays).
    settle_symbols: int = 1

    def __post_init__(self) -> None:
        if self.carrier <= 0.0 or self.bitrate <= 0.0:
            raise EncodingError("carrier and bitrate must be positive")
        if not self.blf_by_node:
            raise EncodingError("plan needs at least one node")
        blfs = sorted(self.blf_by_node.values())
        for a, b in zip(blfs, blfs[1:]):
            if b - a < 3.0 * self.bitrate:
                raise EncodingError(
                    f"BLFs {a} and {b} too close for bitrate {self.bitrate}; "
                    "need >= 3x bitrate of guard"
                )
        for node_id, blf in self.blf_by_node.items():
            if blf <= 0.0:
                raise EncodingError(f"node {node_id} has a non-positive BLF")
            if blf >= self.carrier:
                raise EncodingError(f"node {node_id} BLF exceeds the carrier")

    def modulator_for(self, node_id: int) -> BackscatterModulator:
        return BackscatterModulator(
            blf=self.blf_by_node[node_id], bitrate=self.bitrate
        )


def composite_waveform(
    plan: FdmaPlan,
    payloads: Dict[int, Sequence[int]],
    sample_rate: float,
    channel_gain: float = 0.05,
    leakage: float = 10.0,
    noise_floor: float = 2e-3,
    seed: Optional[int] = None,
) -> np.ndarray:
    """The reader's capture with every planned node backscattering at once.

    All payloads must have equal length (they share the slot).
    """
    if set(payloads) != set(plan.blf_by_node):
        raise EncodingError("payloads must cover exactly the planned nodes")
    lengths = {len(bits) for bits in payloads.values()}
    if len(lengths) != 1:
        raise EncodingError("all payloads must have equal length")
    n_bits = lengths.pop()
    if n_bits == 0:
        raise EncodingError("payloads cannot be empty")

    reference = plan.modulator_for(next(iter(payloads)))
    n = reference.samples_per_symbol(sample_rate)
    settle = plan.settle_symbols * n
    total = settle + n * n_bits
    t = np.arange(total) / sample_rate
    cbw = np.sin(2.0 * math.pi * plan.carrier * t)

    capture = leakage * channel_gain * cbw.copy()
    for node_id, bits in payloads.items():
        modulator = plan.modulator_for(node_id)
        reflected = modulator.reflect(cbw[settle:], list(bits), sample_rate)
        capture[settle:] = capture[settle:] + channel_gain * reflected
    rng = np.random.default_rng(seed)
    return capture + rng.normal(0.0, noise_floor, size=capture.size)


@dataclass
class FdmaReceiver:
    """Bank of sideband downconverters, one per planned node."""

    plan: FdmaPlan
    sample_rate: float = 1e6

    def __post_init__(self) -> None:
        if self.sample_rate <= 0.0:
            raise DecodingError("sample rate must be positive")
        nyquist = self.sample_rate / 2.0
        worst = self.plan.carrier + max(self.plan.blf_by_node.values())
        if worst >= nyquist:
            raise DecodingError(
                f"highest sideband {worst} Hz exceeds Nyquist {nyquist} Hz"
            )

    def _bandwidth(self) -> float:
        """Per-branch low-pass: inside half the closest BLF spacing."""
        blfs = sorted(self.plan.blf_by_node.values())
        spacings = [b - a for a, b in zip(blfs, blfs[1:])]
        # The CBW itself sits one BLF from the lowest sideband.
        spacings.append(min(blfs))
        guard = min(spacings)
        return min(0.4 * guard, 3.0 * self.plan.bitrate)

    def decode_node(self, waveform: np.ndarray, node_id: int, n_bits: int) -> List[int]:
        """Decode one node's payload from the composite capture."""
        if node_id not in self.plan.blf_by_node:
            raise DecodingError(f"node {node_id} is not in the plan")
        blf = self.plan.blf_by_node[node_id]
        sideband = self.plan.carrier + blf
        baseband = np.abs(
            dsp.downconvert(waveform, self.sample_rate, sideband, self._bandwidth())
        )
        modulator = self.plan.modulator_for(node_id)
        n = modulator.samples_per_symbol(self.sample_rate)
        settle = self.plan.settle_symbols * n
        needed = settle + n * n_bits
        if baseband.size < needed:
            raise DecodingError(
                f"capture holds {baseband.size} samples; node {node_id} "
                f"needs {needed}"
            )
        payload = dsp.remove_dc(baseband[settle:needed])
        return Fm0Decoder(samples_per_symbol=n).decode(payload)

    def decode_all(
        self, waveform: np.ndarray, n_bits: int
    ) -> Dict[int, List[int]]:
        """Decode every planned node from one capture."""
        return {
            node_id: self.decode_node(waveform, node_id, n_bits)
            for node_id in self.plan.blf_by_node
        }
