"""Pulse Interval Encoding (PIE) for the downlink (paper Sec. 3.3, Fig. 6).

A bit 0 is a high-voltage interval followed by an equal low-voltage
interval; a bit 1 is a longer high interval followed by the same low
interval.  Equal high/low for bit 0 guarantees >= 50 % of peak power
delivery even for all-zero payloads; with the high interval of bit 0
stretched to 3x the low interval, a balanced random stream delivers
~63 % of peak power (both facts quoted by the paper and verified by
``duty_cycle``).

The decoder consumes *edge intervals* -- exactly what the node MCU's
timer-interrupt demodulator produces -- and classifies each symbol by
its high-interval duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import DecodingError, EncodingError


@dataclass(frozen=True)
class PieTiming:
    """PIE symbol timing.

    Attributes:
        tari: Reference interval (s) = duration of bit 0's high edge.
        low: Low-edge duration (s), shared by both symbols.
        one_high_factor: Bit 1's high edge as a multiple of ``tari``.
    """

    tari: float = 250e-6
    low: float = 250e-6
    one_high_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.tari <= 0.0 or self.low <= 0.0:
            raise EncodingError("PIE intervals must be positive")
        if self.one_high_factor <= 1.0:
            raise EncodingError("bit 1 must have a longer high edge than bit 0")

    @property
    def zero_duration(self) -> float:
        """Total duration of a bit-0 symbol (s)."""
        return self.tari + self.low

    @property
    def one_duration(self) -> float:
        """Total duration of a bit-1 symbol (s)."""
        return self.one_high_factor * self.tari + self.low

    @property
    def decision_threshold(self) -> float:
        """High-interval threshold (s) separating bit 0 from bit 1."""
        return 0.5 * (self.tari + self.one_high_factor * self.tari)

    def mean_bitrate(self) -> float:
        """Bit/s for a balanced random stream."""
        return 2.0 / (self.zero_duration + self.one_duration)


def encode(bits: Sequence[int], timing: PieTiming = PieTiming()) -> List[Tuple[float, int]]:
    """Encode bits as (duration, level) segments: level 1 = high edge.

    >>> encode([0], PieTiming(tari=1.0, low=1.0))
    [(1.0, 1), (1.0, 0)]
    """
    segments: List[Tuple[float, int]] = []
    for bit in bits:
        if bit not in (0, 1):
            raise EncodingError(f"bits must be 0/1, got {bit!r}")
        high = timing.tari if bit == 0 else timing.one_high_factor * timing.tari
        segments.append((high, 1))
        segments.append((timing.low, 0))
    return segments


def encode_baseband(
    bits: Sequence[int],
    sample_rate: float,
    timing: PieTiming = PieTiming(),
) -> np.ndarray:
    """Sampled 0/1 baseband waveform of the PIE stream."""
    if sample_rate <= 0.0:
        raise EncodingError("sample rate must be positive")
    samples: List[np.ndarray] = []
    for duration, level in encode(bits, timing):
        n = int(round(duration * sample_rate))
        if n == 0:
            raise EncodingError(
                f"sample rate {sample_rate} too low to represent a "
                f"{duration * 1e6:.1f} us interval"
            )
        samples.append(np.full(n, float(level)))
    if not samples:
        return np.zeros(0)
    return np.concatenate(samples)


def decode_intervals(
    intervals: Iterable[Tuple[float, int]],
    timing: PieTiming = PieTiming(),
    tolerance: float = 0.45,
) -> List[int]:
    """Decode (duration, level) interval pairs back into bits.

    Mirrors the MCU decoder: every high interval is classified against
    the bit-0/bit-1 threshold; low intervals are validated against the
    expected low duration.

    Raises:
        DecodingError: on malformed interval structure or out-of-spec
            durations.
    """
    bits: List[int] = []
    expecting_high = True
    for duration, level in intervals:
        if duration <= 0.0:
            raise DecodingError(f"non-positive interval {duration}")
        if expecting_high:
            if level != 1:
                raise DecodingError("PIE symbol must start with a high edge")
            bits.append(0 if duration < timing.decision_threshold else 1)
        else:
            if level != 0:
                raise DecodingError("PIE high edge must be followed by a low edge")
            if abs(duration - timing.low) > tolerance * timing.low:
                raise DecodingError(
                    f"low edge {duration * 1e6:.1f} us deviates from the "
                    f"expected {timing.low * 1e6:.1f} us"
                )
        expecting_high = not expecting_high
    if not expecting_high:
        raise DecodingError("truncated PIE stream: missing final low edge")
    return bits


def decode_edge_durations(
    durations: Sequence[float],
    first_level: int,
    timing: PieTiming = PieTiming(),
    tolerance: float = 0.45,
) -> List[int]:
    """Decode from raw edge-to-edge durations (the demodulator output)."""
    if first_level not in (0, 1):
        raise DecodingError("first level must be 0 or 1")
    level = first_level
    pairs = []
    for duration in durations:
        pairs.append((duration, level))
        level = 1 - level
    if pairs and pairs[0][1] == 0:
        pairs = pairs[1:]  # leading idle-low before the first symbol
    return decode_intervals(pairs, timing, tolerance)


def duty_cycle(bits: Sequence[int], timing: PieTiming = PieTiming()) -> float:
    """Fraction of time the carrier is at high voltage for ``bits``.

    The paper's power-delivery claims: all-zero payloads give exactly
    0.5 with equal edges; balanced random data with a 3x bit-1 high edge
    gives ~0.63 (the paper says "approximately 63 % of peak power").
    """
    total = 0.0
    high = 0.0
    for bit in bits:
        if bit not in (0, 1):
            raise EncodingError(f"bits must be 0/1, got {bit!r}")
        if bit == 0:
            high += timing.tari
            total += timing.zero_duration
        else:
            high += timing.one_high_factor * timing.tari
            total += timing.one_duration
    if total == 0.0:
        raise EncodingError("cannot compute duty cycle of an empty stream")
    return high / total
